//! Quickstart: build a CAMEO memory system, push a few requests through it,
//! and watch lines migrate into stacked DRAM.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cameo_repro::cameo::{Cameo, CameoConfig, LltDesign, PredictorKind};
use cameo_repro::types::{Access, ByteSize, CoreId, Cycle, LineAddr, MemKind};

fn main() {
    // A miniature system with the paper's 1:3 stacked:off-chip ratio.
    let mut cameo = Cameo::new(CameoConfig {
        stacked: ByteSize::from_mib(1),
        off_chip: ByteSize::from_mib(3),
        llt: LltDesign::CoLocated,
        predictor: PredictorKind::Llp,
        cores: 1,
        llp_entries: 256,
    });
    println!(
        "visible memory: {} (stacked contributes capacity, minus the LLT reserve)",
        cameo.visible_capacity()
    );

    // This line's requested address places it in off-chip memory (way 2 of
    // its congruence group).
    let line = LineAddr::new(2 * ByteSize::from_mib(1).lines() + 1234);
    let pc = 0x0040_1000;
    let mut now = Cycle::ZERO;

    for attempt in 1..=3 {
        let r = cameo.access(now, &Access::read(CoreId(0), line, pc));
        println!(
            "access {attempt}: serviced by {} in {} cycles (prediction case: {:?})",
            match r.serviced_by {
                MemKind::Stacked => "stacked DRAM",
                MemKind::OffChip => "off-chip DRAM",
            },
            (r.completion - now).raw(),
            r.case,
        );
        now = r.completion + Cycle::new(100);
    }

    let stats = cameo.stats();
    println!(
        "\nafter {} reads: {} from stacked, {} from off-chip, {} swaps",
        stats.demand_reads,
        stats.serviced_stacked,
        stats.serviced_off_chip,
        cameo.llt().swaps(),
    );
    println!(
        "LLP accuracy so far: {:.0}%",
        stats.cases.accuracy().unwrap_or(0.0) * 100.0
    );
    println!(
        "bandwidth: stacked {}B, off-chip {}B",
        cameo.stacked().stats().bytes_total(),
        cameo.off_chip().stats().bytes_total(),
    );
}
