//! The L3 substrate in isolation: stream addresses through the paper's
//! 32 MB 16-way shared cache (scaled) and watch it filter the access stream
//! that the memory organizations then see.
//!
//! ```text
//! cargo run --release --example l3_filtering
//! ```

use cameo_repro::cachesim::{L3Config, SetAssocCache};
use cameo_repro::types::LineAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut l3 = SetAssocCache::new(L3Config::scaled(128));
    println!(
        "L3: {} / {}-way / {} sets\n",
        l3.config().capacity,
        l3.config().ways,
        l3.config().sets(),
    );

    let mut rng = SmallRng::seed_from_u64(11);
    // A loop with a hot working set (fits in L3) plus a cold stream
    // (doesn't): the classic pattern the memory system sees filtered.
    let hot_lines = l3.config().capacity.lines() / 2;
    let mut stream_pos = 1 << 24;
    let mut writebacks = 0u64;
    for _ in 0..500_000 {
        let line = if rng.gen_bool(0.7) {
            LineAddr::new(rng.gen_range(0..hot_lines))
        } else {
            stream_pos += 1;
            LineAddr::new(stream_pos)
        };
        let out = l3.access(line, rng.gen_bool(0.3));
        if out.evicted.is_some_and(|e| e.dirty) {
            writebacks += 1;
        }
    }

    let stats = l3.stats();
    println!(
        "accesses {}  hits {}  misses {}  (miss rate {:.1}%)",
        stats.accesses(),
        stats.hits,
        stats.misses,
        stats.miss_rate().unwrap_or(0.0) * 100.0,
    );
    println!("dirty writebacks to memory: {writebacks}");
    println!(
        "\nOnly the ~{:.0}% misses (plus writebacks) reach the DRAM system — \
         that is the stream the workload generators model directly, at each \
         benchmark's Table II MPKI.\n",
        stats.miss_rate().unwrap_or(0.0) * 100.0,
    );

    // Part two: the explicit-L3 pipeline end-to-end — the post-L3 stream
    // *emerges* from the cache model and drives a full CAMEO system.
    use cameo_repro::sim::experiments::{build_org, OrgKind};
    use cameo_repro::sim::l3_stream::L3FilteredStream;
    use cameo_repro::sim::runner::Runner;
    use cameo_repro::sim::SystemConfig;
    use cameo_repro::workloads::{by_name, MissStream, TraceConfig};

    let spec = by_name("omnetpp").expect("suite benchmark");
    let config = SystemConfig {
        cores: 2,
        scale: 512,
        instructions_per_core: 500_000,
        ..SystemConfig::default()
    };
    let streams: Vec<Box<dyn MissStream>> = (0..config.cores)
        .map(|core| {
            Box::new(L3FilteredStream::new(
                spec,
                TraceConfig {
                    scale: config.scale,
                    seed: config.seed + u64::from(core),
                    core_offset_pages: u64::from(core) * 10_000,
                },
                4,
                SetAssocCache::new(L3Config::scaled(config.scale)),
            )) as Box<dyn MissStream>
        })
        .collect();
    let mut org = build_org(&spec, OrgKind::cameo_default(), &config);
    let run = Runner::new(spec, &config)
        .expect("example config is valid")
        .run_with_streams(org.as_mut(), streams);
    println!(
        "explicit-L3 pipeline, omnetpp through CAMEO: CPI {:.2}, {} reads, \
         {:.0}% serviced by stacked DRAM",
        run.cpi(),
        run.demand_reads,
        run.stacked_service_rate().unwrap_or(0.0) * 100.0,
    );
}
