//! Record a workload's miss stream to a `.cameotrace` file, inspect it,
//! and replay it through a CAMEO system — the library side of the
//! `trace_tools` binary.
//!
//! ```text
//! cargo run --release --example trace_record_replay
//! ```

use cameo_repro::sim::experiments::{build_org, OrgKind};
use cameo_repro::sim::runner::Runner;
use cameo_repro::sim::SystemConfig;
use cameo_repro::trace::{TraceFile, TraceWriter};
use cameo_repro::workloads::{by_name, MissStream, TraceConfig, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = by_name("xalancbmk").expect("suite benchmark");
    let config = SystemConfig {
        cores: 1,
        instructions_per_core: 1_000_000,
        ..SystemConfig::default()
    };

    // Record 50k events into an in-memory buffer (a file works the same).
    let mut generator = TraceGenerator::new(
        spec,
        TraceConfig {
            scale: config.scale,
            seed: config.seed,
            core_offset_pages: 0,
        },
    );
    let bytes = TraceWriter::record(Vec::new(), spec.name, &mut generator, 50_000)?;
    println!(
        "recorded {} events of {} into {} bytes ({} bytes/event incl. header)",
        50_000,
        spec.name,
        bytes.len(),
        bytes.len() / 50_000,
    );

    // Inspect.
    let trace = TraceFile::parse(&bytes)?;
    let reads = trace.events.iter().filter(|e| !e.is_write).count();
    println!(
        "{}: {} reads / {} writes over {} footprint pages",
        trace.name,
        reads,
        trace.events.len() - reads,
        trace.footprint_pages,
    );

    // Replay through CAMEO and through the baseline; identical inputs make
    // the comparison exact.
    for kind in [OrgKind::Baseline, OrgKind::cameo_default()] {
        let replay: Box<dyn MissStream> = Box::new(TraceFile::parse(&bytes)?.into_replay());
        let mut org = build_org(&spec, kind, &config);
        let stats = Runner::new(spec, &config)
            .expect("example config is valid")
            .run_with_streams(org.as_mut(), vec![replay]);
        println!(
            "{:<10} CPI {:.2}, avg read latency {:.0} cycles, {:.0}% stacked",
            kind.label(),
            stats.cpi(),
            stats.avg_read_latency().unwrap_or(0.0),
            stats.stacked_service_rate().unwrap_or(0.0) * 100.0,
        );
    }
    println!("\nThe same recorded stream drives every design — byte-for-byte.");
    Ok(())
}
