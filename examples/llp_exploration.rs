//! Line Location Predictor exploration: sweep the LLP table size and watch
//! the accuracy/storage trade-off the paper settles at 256 entries × 2 bits
//! per core.
//!
//! ```text
//! cargo run --release --example llp_exploration
//! ```

use cameo_repro::cameo::{Cameo, CameoConfig, LltDesign, PredictorKind};
use cameo_repro::types::{Access, AccessKind, ByteSize, Cycle};
use cameo_repro::workloads::{by_name, TraceConfig, TraceGenerator};

fn accuracy_with_table(entries: usize) -> (f64, usize) {
    let mut cameo = Cameo::new(CameoConfig {
        stacked: ByteSize::from_mib(4),
        off_chip: ByteSize::from_mib(12),
        llt: LltDesign::CoLocated,
        predictor: PredictorKind::Llp,
        cores: 1,
        llp_entries: entries,
    });
    let spec = by_name("omnetpp").expect("suite benchmark");
    let mut generator = TraceGenerator::new(
        spec,
        TraceConfig {
            scale: 512,
            seed: 7,
            core_offset_pages: 0,
        },
    );
    let mut now = Cycle::ZERO;
    for _ in 0..200_000 {
        let e = generator.next_event();
        let access = Access {
            core: cameo_repro::types::CoreId(0),
            line: e.line,
            pc: e.pc,
            kind: if e.is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        };
        let r = cameo.access(now, &access);
        now = r.completion;
    }
    let accuracy = cameo.stats().cases.accuracy().unwrap_or(0.0);
    // 2 bits per entry, one table per core.
    (accuracy, entries * 2 / 8)
}

fn main() {
    println!("LLP table-size sweep (omnetpp-like stream, one core):\n");
    println!("{:>8} {:>10} {:>14}", "entries", "accuracy", "bytes/core");
    for entries in [1usize, 16, 64, 256, 1024, 4096] {
        let (acc, bytes) = accuracy_with_table(entries);
        println!("{entries:>8} {:>9.1}% {bytes:>14}", acc * 100.0);
    }
    println!(
        "\nThe paper picks 256 entries (64 bytes/core): nearly all the \
         accuracy of a huge table at negligible storage."
    );
}
