//! Define a workload that is not in the SPEC suite and run it through the
//! full system — the `BenchSpec`/`Behavior` types are public exactly so
//! downstream users can model their own applications.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use cameo_repro::sim::experiments::{run_benchmark, OrgKind};
use cameo_repro::sim::SystemConfig;
use cameo_repro::types::ByteSize;
use cameo_repro::workloads::{Behavior, BenchSpec, Category};

fn main() {
    // A key-value store: a large, mostly cold keyspace with a skewed hot
    // set (the classic 90/10 rule), sparse page usage (values are small),
    // and write-heavy traffic.
    let kv_store = BenchSpec {
        name: "kvstore",
        category: Category::CapacityLimited,
        mpki: 22.0,
        footprint: ByteSize::from_gib(20),
        behavior: Behavior {
            hot_fraction: 0.10,
            hot_access_prob: 0.90,
            stream_prob: 0.05,
            page_density: 0.25,
            write_fraction: 0.40,
            pc_pool: 96,
        },
    };
    kv_store.behavior.validate();

    let config = SystemConfig {
        cores: 8,
        instructions_per_core: 4_000_000,
        ..SystemConfig::default()
    };
    println!(
        "kvstore: {:.0} GB keyspace (scaled to {:.0} MiB), 90/10 hot set, 40% writes\n",
        kv_store.footprint.as_gib(),
        kv_store.footprint.scale_down(config.scale).as_mib(),
    );

    let baseline = run_benchmark(&kv_store, OrgKind::Baseline, &config);
    println!(
        "{:<12} {:>8} {:>9} {:>8}",
        "design", "speedup", "stacked%", "faults"
    );
    for kind in [
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::cameo_default(),
    ] {
        let run = run_benchmark(&kv_store, kind, &config);
        println!(
            "{:<12} {:>7.2}x {:>8.0}% {:>8}",
            kind.label(),
            run.speedup_over(&baseline),
            run.stacked_service_rate().unwrap_or(0.0) * 100.0,
            run.faults,
        );
    }
    println!(
        "\nThe skewed hot set is exactly CAMEO's case: line-granularity \
         swapping captures the hot keys in stacked DRAM while the cold \
         keyspace still counts toward memory capacity."
    );
}
