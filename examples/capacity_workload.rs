//! Capacity-limited scenario: a workload whose footprint exceeds off-chip
//! memory (the paper's lbm). Using stacked DRAM as a cache wastes its
//! capacity; CAMEO counts it toward main memory and eliminates the paging.
//!
//! ```text
//! cargo run --release --example capacity_workload
//! ```

use cameo_repro::sim::experiments::{run_benchmark, OrgKind};
use cameo_repro::sim::SystemConfig;

fn main() {
    let config = SystemConfig {
        instructions_per_core: 4_000_000,
        cores: 8,
        ..SystemConfig::default()
    };
    let bench = cameo_repro::workloads::by_name("lbm").expect("lbm is in the suite");
    println!(
        "lbm: footprint {:.0} MiB vs {} off-chip — the working set only fits \
         when stacked DRAM counts toward capacity\n",
        bench.scaled_footprint(config.scale).as_mib(),
        config.off_chip(),
    );

    let baseline = run_benchmark(&bench, OrgKind::Baseline, &config);
    println!(
        "{:<14} CPI {:>6.2}  page faults {:>6}  (storage traffic {:.1} MB)",
        "Baseline",
        baseline.cpi(),
        baseline.faults,
        baseline.bandwidth.storage_bytes as f64 / 1e6,
    );
    for kind in [OrgKind::AlloyCache, OrgKind::cameo_default()] {
        let run = run_benchmark(&bench, kind, &config);
        println!(
            "{:<14} CPI {:>6.2}  page faults {:>6}  speedup {:.2}x",
            kind.label(),
            run.cpi(),
            run.faults,
            run.speedup_over(&baseline),
        );
    }
    println!(
        "\nThe cache keeps faulting (stacked DRAM is invisible to the OS); \
         CAMEO's extra visible capacity absorbs the working set."
    );
}
