//! Latency-limited scenario: a workload that fits in memory (the paper's
//! gcc) where the question is purely how well each design exploits stacked
//! DRAM's latency and bandwidth.
//!
//! ```text
//! cargo run --release --example latency_workload
//! ```

use cameo_repro::sim::experiments::{run_benchmark, OrgKind};
use cameo_repro::sim::SystemConfig;

fn main() {
    let config = SystemConfig {
        instructions_per_core: 4_000_000,
        cores: 8,
        ..SystemConfig::default()
    };
    let bench = cameo_repro::workloads::by_name("gcc").expect("gcc is in the suite");
    let baseline = run_benchmark(&bench, OrgKind::Baseline, &config);
    println!(
        "gcc (L3 MPKI {:.1}): baseline CPI {:.2}, avg read latency {:.0} cycles\n",
        bench.mpki,
        baseline.cpi(),
        baseline.avg_read_latency().unwrap_or(0.0),
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>9}",
        "design", "speedup", "stacked%", "avg lat", "LLP acc"
    );
    for kind in [
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::TlmDynamic,
        OrgKind::cameo_default(),
    ] {
        let run = run_benchmark(&bench, kind, &config);
        println!(
            "{:<12} {:>7.2}x {:>9.0}% {:>10.0} {:>9}",
            kind.label(),
            run.speedup_over(&baseline),
            run.stacked_service_rate().unwrap_or(0.0) * 100.0,
            run.avg_read_latency().unwrap_or(0.0),
            run.cases
                .and_then(|c| c.accuracy())
                .map_or("-".to_owned(), |a| format!("{:.0}%", a * 100.0)),
        );
    }
    println!(
        "\nCAMEO keeps the cache-like hit rate while the OS still sees the \
         stacked capacity — the best of both worlds the paper targets."
    );
}
