//! Vendored, zero-dependency stand-in for the [`rand`] crate.
//!
//! The build sandbox has no access to crates.io, so the workspace vendors
//! the tiny slice of `rand` 0.8 it actually uses: a seedable small RNG and
//! the [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`] methods.
//! Streams are deterministic for a given seed — a property the simulator's
//! reproducibility tests rely on — but are **not** the same streams the real
//! `rand` crate produces, and this crate makes no cryptographic claims.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core randomness source: an infinite stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a deterministic RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce with a standard distribution.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Multiply-shift uniform sample in `[0, span)` (`span > 0`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value with the standard distribution for its type
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xorshift64* over a
    /// SplitMix64-initialized state). Deterministic per seed; not
    /// cryptographic.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scramble so that small seeds (0, 1, 2, ...) do not
            // produce correlated early outputs, and the all-zero state is
            // unreachable.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u8..=9);
            assert!((5..=9).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_rough() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn standard_f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_covers_small_span() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
