//! Vendored, zero-dependency stand-in for the [`proptest`] crate.
//!
//! The build sandbox has no access to crates.io, so the workspace vendors
//! the slice of `proptest` it uses: the [`proptest!`] macro, range / tuple /
//! [`Just`](strategy::Just) / [`prop_oneof!`] / `prop_map` strategies,
//! [`collection::vec`], [`any`](strategy::any) and the `prop_assert*`
//! macros.
//!
//! Semantics differ from the real crate in one important way: failing cases
//! are **not shrunk** — the failing case's seed and index are printed
//! instead, and `PROPTEST_SEED`/`PROPTEST_CASES` reproduce or widen a run.
//! Generation is purely random (no bias toward boundary values), so keep
//! explicit edge-case unit tests alongside property tests.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use test_runner::ProptestConfig;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real prelude's `prop` module path
    /// (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: `fn name(pat in strategy, ...) { body }` items
/// become `#[test]` functions that run the body over many sampled inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the number of cases
/// for every test in the block.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = (<$crate::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __cases = __config.resolved_cases();
                for __case in 0..__cases {
                    let __seed = $crate::test_runner::case_seed(__case);
                    let __run = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        let mut __rng = $crate::test_runner::TestRng::new(__seed);
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                        $body
                    }));
                    if let ::std::result::Result::Err(__panic) = __run {
                        eprintln!(
                            "proptest case {}/{} failed (seed {:#x}); \
                             set PROPTEST_SEED={:#x} to replay it as case 0",
                            __case + 1,
                            __cases,
                            __seed,
                            __seed,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
