//! Case scheduling and the deterministic RNG behind [`proptest!`](crate::proptest).

/// Configuration of a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs (overridable with `PROPTEST_CASES`).
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` environment override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Seed of case `case`: a fixed base (or `PROPTEST_SEED`, to replay a
/// reported failure as case 0) mixed with the case index.
pub fn case_seed(case: u32) -> u64 {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
        })
        .unwrap_or(0xCAE0_5EED_2014_0C0D);
    base.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Deterministic generator driving strategy sampling (xorshift64* over a
/// SplitMix64-scrambled seed).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, span)`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "below: span must be positive");
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_bounds() {
        let mut r = TestRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn seeds_differ_per_case() {
        assert_ne!(case_seed(0), case_seed(1));
    }
}
