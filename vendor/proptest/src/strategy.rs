//! Value-generation strategies: the sampling core of the vendored proptest.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of an associated type.
///
/// Unlike the real proptest there is no shrinking: a strategy is just a
/// sampler over a deterministic RNG.
pub trait Strategy {
    /// Type of value this strategy generates.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Object-safe sampling, backing [`BoxedStrategy`].
trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Uniform choice among boxed strategies of one value type.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// String literals are regex-shaped string strategies in proptest. This
/// stand-in supports the one shape the workspace uses — a single character
/// class with a bounded repetition, `[class]{lo,hi}` — and rejects anything
/// else loudly rather than silently generating the wrong language.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self).unwrap_or_else(|| {
            panic!(
                "vendored proptest only supports `[class]{{lo,hi}}` string \
                 strategies, got {self:?}"
            )
        });
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi). Supports literal
/// characters, `a-z` ranges, and `\`-escapes inside the class.
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, counts) = rest.split_once(']')?;
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if lo > hi {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let c = if c == '\\' { chars.next()? } else { c };
        if chars.peek() == Some(&'-') && chars.clone().nth(1).is_some() {
            chars.next();
            let end = chars.next()?;
            if c > end {
                return None;
            }
            alphabet.extend(c..=end);
        } else {
            alphabet.push(c);
        }
    }
    (!alphabet.is_empty()).then_some((alphabet, lo, hi))
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(11)
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u64..9).sample(&mut r);
            assert!((3..9).contains(&v));
            let w = (2u8..=8).sample(&mut r);
            assert!((2..=8).contains(&w));
        }
    }

    #[test]
    fn just_clones() {
        assert_eq!(Just(41).sample(&mut rng()), 41);
    }

    #[test]
    fn map_applies() {
        let s = (1u64..5).prop_map(|x| x * 10);
        let v = s.sample(&mut rng());
        assert!((10..50).contains(&v) && v % 10 == 0);
    }

    #[test]
    fn tuples_sample_each() {
        let (a, b, c) = (0u64..4, 10u8..=11, Just(7i32)).sample(&mut rng());
        assert!(a < 4);
        assert!((10..=11).contains(&b));
        assert_eq!(c, 7);
    }

    #[test]
    fn union_covers_all_arms() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        let mut r = rng();
        for _ in 0..100 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn string_class_strategy() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-zA-Z0-9_.-]{0,40}".sample(&mut r);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
        // Trailing `-` and `.` are literals, not range operators.
        let (alphabet, lo, hi) = super::parse_class_repeat("[a-c.-]{1,3}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '.', '-']);
        assert_eq!((lo, hi), (1, 3));
        assert!(super::parse_class_repeat("plain text").is_none());
    }

    #[test]
    fn f64_range_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (0.0f64..1.0).sample(&mut r);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn any_bool_takes_both_values() {
        let mut r = rng();
        let s = any::<bool>();
        let mut t = (false, false);
        for _ in 0..100 {
            if s.sample(&mut r) {
                t.0 = true;
            } else {
                t.1 = true;
            }
        }
        assert!(t.0 && t.1);
    }
}
