//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec`].
pub trait SizeRange {
    /// Samples a length from the specification.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "vec length range is empty");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "vec length range is empty");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// comes from `len`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let s = vec(0u64..50, 3..10);
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((3..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn fixed_length() {
        let s = vec(0u8..=1, 5usize);
        assert_eq!(s.sample(&mut TestRng::new(1)).len(), 5);
    }
}
