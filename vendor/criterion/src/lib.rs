//! Vendored, zero-dependency stand-in for the [`criterion`] crate.
//!
//! The build sandbox has no access to crates.io, so the workspace vendors
//! the benchmark surface it uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is warmed up, then timed over
//! a fixed batch and reported as mean wall-clock time per iteration —
//! adequate for spotting order-of-magnitude regressions, without the real
//! crate's statistical machinery.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmarked
/// work. (Uses a read of a volatile-free identity through `std::hint`.)
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one closure: a short warmup, then `iters` timed iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            black_box(routine());
        }
        // Aim for a few milliseconds of measurement: calibrate the batch
        // from one probed iteration.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!("{name:<40} {per_iter:>12.1} ns/iter ({} iters)", self.iters);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in sizes batches by time, so
    /// the requested sample count is ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut routine: R) {
        let mut b = Bencher::default();
        routine(&mut b);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// Benchmarks `routine` with an input value under `id`.
    pub fn bench_with_input<I, R>(&mut self, id: BenchmarkId, input: &I, mut routine: R)
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        routine(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// Ends the group (printing is immediate; this is a no-op for
    /// compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Self {}
    }

    /// Benchmarks a single named closure.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: R) {
        let mut b = Bencher::default();
        routine(&mut b);
        b.report(name);
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs final reporting (immediate printing makes this a no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(2u64.pow(10)));
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
    }
}
