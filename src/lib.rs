//! Umbrella crate for the CAMEO reproduction workspace.
//!
//! Re-exports every subsystem under one roof so examples, integration tests
//! and downstream users can depend on a single crate:
//!
//! * [`types`] — shared newtypes (addresses, cycles, capacities, requests);
//! * [`memsim`] — bank/channel DRAM timing models (Table I devices);
//! * [`cachesim`] — the L3 model and the Alloy DRAM cache;
//! * [`vmem`] — the OS substrate: paging and TLM migration policies;
//! * [`cameo`] — the paper's contribution: congruence groups, the Line
//!   Location Table, the Line Location Predictor, and the controller;
//! * [`workloads`] — the synthetic Table II workload suite;
//! * [`sim`] — full-system organizations, runner, statistics, energy model
//!   and the experiment entry points;
//! * [`trace`] — binary miss-trace recording and replay.
//!
//! # Examples
//!
//! ```
//! use cameo_repro::cameo::{Cameo, CameoConfig, LltDesign, PredictorKind};
//! use cameo_repro::types::{Access, ByteSize, CoreId, Cycle, LineAddr};
//!
//! let mut controller = Cameo::new(CameoConfig {
//!     stacked: ByteSize::from_mib(1),
//!     off_chip: ByteSize::from_mib(3),
//!     llt: LltDesign::CoLocated,
//!     predictor: PredictorKind::Llp,
//!     cores: 1,
//!     llp_entries: 256,
//! });
//! let r = controller.access(
//!     Cycle::ZERO,
//!     &Access::read(CoreId(0), LineAddr::new(20_000), 0x400100),
//! );
//! assert!(r.completion > Cycle::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cameo;
pub use cameo_cachesim as cachesim;
pub use cameo_memsim as memsim;
pub use cameo_sim as sim;
pub use cameo_trace as trace;
pub use cameo_types as types;
pub use cameo_vmem as vmem;
pub use cameo_workloads as workloads;
