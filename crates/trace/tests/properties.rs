//! Property-based tests for the trace file format.

use cameo_trace::{TraceFile, TraceWriter};
use cameo_types::LineAddr;
use cameo_workloads::{MissEvent, MissStream};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = MissEvent> {
    (
        1u64..u64::from(u32::MAX),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(gap, line, pc, is_write)| MissEvent {
            gap_instructions: gap,
            line: LineAddr::new(line),
            pc,
            is_write,
        })
}

fn write_all(name: &str, pages: u64, events: &[MissEvent]) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), name, pages, events.len() as u64).expect("header");
    for e in events {
        w.push(e).expect("push");
    }
    w.finish().expect("finish")
}

proptest! {
    /// Arbitrary event sequences round-trip bit-exactly.
    #[test]
    fn round_trip(
        name in "[a-zA-Z0-9_.-]{0,40}",
        pages in 0u64..1 << 40,
        events in prop::collection::vec(arb_event(), 1..200),
    ) {
        let bytes = write_all(&name, pages, &events);
        let file = TraceFile::parse(&bytes).expect("parse");
        prop_assert_eq!(file.name, name);
        prop_assert_eq!(file.footprint_pages, pages);
        prop_assert_eq!(file.events, events);
    }

    /// Any truncation of a valid file is rejected, never mis-parsed.
    #[test]
    fn truncations_rejected(
        events in prop::collection::vec(arb_event(), 1..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = write_all("t", 7, &events);
        let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(TraceFile::parse(&bytes[..cut]).is_err());
    }

    /// Replay visits events in order and wraps exactly at the recording
    /// length.
    #[test]
    fn replay_order_and_wrap(
        events in prop::collection::vec(arb_event(), 1..100),
        draws in 1usize..400,
    ) {
        let bytes = write_all("t", 3, &events);
        let mut replay = TraceFile::parse(&bytes).expect("parse").into_replay();
        for i in 0..draws {
            let e = replay.next_event();
            prop_assert_eq!(e, events[i % events.len()]);
        }
        prop_assert_eq!(replay.wraps(), (draws / events.len()) as u64);
    }

    /// Corrupting the magic always yields BadMagic, not a garbage parse.
    #[test]
    fn corrupt_magic_rejected(
        events in prop::collection::vec(arb_event(), 1..10),
        byte in 0usize..8,
        flip in 1u8..255,
    ) {
        let mut bytes = write_all("t", 1, &events);
        bytes[byte] ^= flip;
        prop_assert!(matches!(
            TraceFile::parse(&bytes),
            Err(cameo_trace::TraceError::BadMagic)
        ));
    }
}

proptest! {
    /// Parsing arbitrary bytes never panics — it returns an error or a
    /// structurally valid trace.
    #[test]
    fn parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(file) = TraceFile::parse(&bytes) { prop_assert!(!file.events.is_empty()) }
    }
}

/// The on-disk format is stable: a golden file recorded with version 1 of
/// the format must keep parsing bit-exactly.
#[test]
fn golden_format_stability() {
    let events = [
        MissEvent {
            gap_instructions: 42,
            line: LineAddr::new(0x1234_5678_9abc),
            pc: 0x0040_0010,
            is_write: false,
        },
        MissEvent {
            gap_instructions: 7,
            line: LineAddr::new(3),
            pc: 0x0040_0014,
            is_write: true,
        },
    ];
    let mut w = TraceWriter::new(Vec::new(), "golden", 99, 2).unwrap();
    for e in &events {
        w.push(e).unwrap();
    }
    let bytes = w.finish().unwrap();

    // The exact bytes of format version CAMEOTR1.
    let expected: Vec<u8> = [
        b"CAMEOTR1".to_vec(),
        vec![6],
        b"golden".to_vec(),
        99u64.to_le_bytes().to_vec(),
        2u64.to_le_bytes().to_vec(),
        42u32.to_le_bytes().to_vec(),
        0x1234_5678_9abcu64.to_le_bytes().to_vec(),
        0x0040_0010u64.to_le_bytes().to_vec(),
        vec![0],
        7u32.to_le_bytes().to_vec(),
        3u64.to_le_bytes().to_vec(),
        0x0040_0014u64.to_le_bytes().to_vec(),
        vec![1],
    ]
    .concat();
    assert_eq!(bytes, expected, "trace format changed — bump the magic");

    let parsed = TraceFile::parse(&expected).unwrap();
    assert_eq!(parsed.events, events);
    assert_eq!(parsed.footprint_pages, 99);
}
