//! Binary miss-trace recording and replay.
//!
//! The synthetic generators in [`cameo_workloads`] are deterministic, but
//! sharing and re-running a specific stream — or feeding the simulator a
//! trace captured from elsewhere — calls for a file format. This crate
//! provides one:
//!
//! ```text
//! header:  magic "CAMEOTR1" | name len u8 | name bytes |
//!          footprint_pages u64 LE | event count u64 LE
//! events:  gap u32 LE | line u64 LE | pc u64 LE | flags u8   (21 bytes each)
//! ```
//!
//! [`TraceWriter`] records any [`MissStream`] (or individual events);
//! [`TraceFile`] loads a recording and replays it as a `MissStream` again —
//! wrapping around at the end so the runner can draw as many events as it
//! needs.
//!
//! # Examples
//!
//! ```
//! use cameo_trace::{TraceFile, TraceWriter};
//! use cameo_workloads::{by_name, MissStream, TraceConfig, TraceGenerator};
//!
//! # fn main() -> Result<(), cameo_trace::TraceError> {
//! let spec = by_name("astar").unwrap();
//! let mut generator = TraceGenerator::new(
//!     spec,
//!     TraceConfig { scale: 1024, seed: 7, core_offset_pages: 0 },
//! );
//! let mut buf = Vec::new();
//! TraceWriter::record(&mut buf, "astar", &mut generator, 100)?;
//! let mut replay = TraceFile::parse(&buf)?.into_replay();
//! let first = replay.next_event();
//! assert!(first.gap_instructions >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::{self, Read, Write};

use cameo_types::LineAddr;
use cameo_workloads::{MissEvent, MissStream};

const MAGIC: &[u8; 8] = b"CAMEOTR1";
const EVENT_BYTES: usize = 21;
const FLAG_WRITE: u8 = 1;

/// Errors raised while reading or writing trace files.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `CAMEOTR1` magic.
    BadMagic,
    /// The header or event section is truncated or inconsistent.
    Malformed(&'static str),
    /// A recording must contain at least one event to be replayable.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => f.write_str("not a CAMEO trace (bad magic)"),
            TraceError::Malformed(what) => write!(f, "malformed trace: {what}"),
            TraceError::Empty => f.write_str("trace contains no events"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Streaming writer for trace files.
///
/// Use [`TraceWriter::record`] to capture a whole stream in one call, or
/// create one with [`TraceWriter::new`] and push events individually.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    events_written: u64,
    declared_events: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace file: writes the header. `event_count` events must
    /// follow via [`TraceWriter::push`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or if `name` exceeds 255 bytes.
    pub fn new(
        mut sink: W,
        name: &str,
        footprint_pages: u64,
        event_count: u64,
    ) -> Result<Self, TraceError> {
        let name_bytes = name.as_bytes();
        if name_bytes.len() > 255 {
            return Err(TraceError::Malformed("name longer than 255 bytes"));
        }
        sink.write_all(MAGIC)?;
        sink.write_all(&[name_bytes.len() as u8])?;
        sink.write_all(name_bytes)?;
        sink.write_all(&footprint_pages.to_le_bytes())?;
        sink.write_all(&event_count.to_le_bytes())?;
        Ok(Self {
            sink,
            events_written: 0,
            declared_events: event_count,
        })
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or when more events are pushed than
    /// the header declared.
    pub fn push(&mut self, event: &MissEvent) -> Result<(), TraceError> {
        if self.events_written >= self.declared_events {
            return Err(TraceError::Malformed("more events than declared"));
        }
        let gap = u32::try_from(event.gap_instructions).unwrap_or(u32::MAX);
        self.sink.write_all(&gap.to_le_bytes())?;
        self.sink.write_all(&event.line.raw().to_le_bytes())?;
        self.sink.write_all(&event.pc.to_le_bytes())?;
        self.sink
            .write_all(&[if event.is_write { FLAG_WRITE } else { 0 }])?;
        self.events_written += 1;
        Ok(())
    }

    /// Finishes the file, verifying the declared count was met, and
    /// returns the sink.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer events were pushed than declared.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if self.events_written != self.declared_events {
            return Err(TraceError::Malformed("fewer events than declared"));
        }
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Records `events` events drawn from `stream` into `sink` in one call.
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure.
    pub fn record<S: MissStream + ?Sized>(
        sink: W,
        name: &str,
        stream: &mut S,
        events: u64,
    ) -> Result<W, TraceError> {
        let mut writer = Self::new(sink, name, stream.footprint_pages(), events)?;
        for _ in 0..events {
            let e = stream.next_event();
            writer.push(&e)?;
        }
        writer.finish()
    }
}

/// A fully loaded trace: header metadata plus all events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceFile {
    /// Workload name from the header.
    pub name: String,
    /// Virtual footprint in pages.
    pub footprint_pages: u64,
    /// The recorded events, in order.
    pub events: Vec<MissEvent>,
}

impl TraceFile {
    /// Reads and validates a trace from any reader.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on I/O failure, bad magic, truncation, or an
    /// empty recording.
    pub fn read<R: Read>(mut source: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut len = [0u8; 1];
        source.read_exact(&mut len)?;
        let mut name_bytes = vec![0u8; usize::from(len[0])];
        source.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| TraceError::Malformed("name is not UTF-8"))?;
        let mut u64_buf = [0u8; 8];
        source.read_exact(&mut u64_buf)?;
        let footprint_pages = u64::from_le_bytes(u64_buf);
        source.read_exact(&mut u64_buf)?;
        let count = u64::from_le_bytes(u64_buf);
        if count == 0 {
            return Err(TraceError::Empty);
        }

        let mut events = Vec::with_capacity(count.min(1 << 24) as usize);
        let mut record = [0u8; EVENT_BYTES];
        for _ in 0..count {
            source
                .read_exact(&mut record)
                .map_err(|_| TraceError::Malformed("event section truncated"))?;
            let gap = u32::from_le_bytes(record[0..4].try_into().expect("slice"));
            let line = u64::from_le_bytes(record[4..12].try_into().expect("slice"));
            let pc = u64::from_le_bytes(record[12..20].try_into().expect("slice"));
            let flags = record[20];
            events.push(MissEvent {
                gap_instructions: u64::from(gap),
                line: LineAddr::new(line),
                pc,
                is_write: flags & FLAG_WRITE != 0,
            });
        }
        Ok(Self {
            name,
            footprint_pages,
            events,
        })
    }

    /// Parses a trace from an in-memory byte slice.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceFile::read`].
    pub fn parse(bytes: &[u8]) -> Result<Self, TraceError> {
        Self::read(bytes)
    }

    /// Converts into a wrapping replayer usable wherever a
    /// [`MissStream`] is accepted.
    pub fn into_replay(self) -> TraceReplay {
        TraceReplay {
            trace: self,
            cursor: 0,
            wraps: 0,
        }
    }
}

/// Replays a [`TraceFile`] as an infinite [`MissStream`], wrapping to the
/// start when the recording is exhausted.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    trace: TraceFile,
    cursor: usize,
    wraps: u64,
}

impl TraceReplay {
    /// The underlying recording.
    pub fn trace(&self) -> &TraceFile {
        &self.trace
    }

    /// How many times the replay has wrapped around.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

impl MissStream for TraceReplay {
    fn next_event(&mut self) -> MissEvent {
        let e = self.trace.events[self.cursor];
        self.cursor += 1;
        if self.cursor == self.trace.events.len() {
            self.cursor = 0;
            self.wraps += 1;
        }
        e
    }

    fn footprint_pages(&self) -> u64 {
        self.trace.footprint_pages
    }

    fn prefill_pages(&self) -> Vec<cameo_types::PageAddr> {
        let mut pages: Vec<u64> = self
            .trace
            .events
            .iter()
            .map(|e| e.line.page().raw())
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages.into_iter().map(cameo_types::PageAddr::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_workloads::{by_name, TraceConfig, TraceGenerator};

    fn generator() -> TraceGenerator {
        TraceGenerator::new(
            by_name("astar").unwrap(),
            TraceConfig {
                scale: 1024,
                seed: 11,
                core_offset_pages: 0,
            },
        )
    }

    #[test]
    fn round_trip_preserves_events() {
        let mut g = generator();
        let expected: Vec<MissEvent> = (0..500).map(|_| g.next_event()).collect();
        let mut g2 = generator();
        let bytes = TraceWriter::record(Vec::new(), "astar", &mut g2, 500).unwrap();
        let file = TraceFile::parse(&bytes).unwrap();
        assert_eq!(file.name, "astar");
        assert_eq!(file.events, expected);
        assert_eq!(file.footprint_pages, generator().footprint_pages());
    }

    #[test]
    fn replay_wraps() {
        let mut g = generator();
        let bytes = TraceWriter::record(Vec::new(), "astar", &mut g, 10).unwrap();
        let mut replay = TraceFile::parse(&bytes).unwrap().into_replay();
        let first = replay.next_event();
        for _ in 0..9 {
            replay.next_event();
        }
        assert_eq!(replay.wraps(), 1);
        assert_eq!(replay.next_event(), first);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceFile::parse(b"NOTATRACE-AT-ALL----------").unwrap_err();
        assert!(matches!(err, TraceError::BadMagic), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let mut g = generator();
        let bytes = TraceWriter::record(Vec::new(), "astar", &mut g, 10).unwrap();
        let err = TraceFile::parse(&bytes[..bytes.len() - 5]).unwrap_err();
        assert!(matches!(err, TraceError::Malformed(_)), "{err}");
    }

    #[test]
    fn empty_trace_rejected() {
        let writer = TraceWriter::new(Vec::new(), "x", 1, 0).unwrap();
        let bytes = writer.finish().unwrap();
        assert!(matches!(
            TraceFile::parse(&bytes).unwrap_err(),
            TraceError::Empty
        ));
    }

    #[test]
    fn under_declared_writer_fails_at_finish() {
        let mut writer = TraceWriter::new(Vec::new(), "x", 1, 2).unwrap();
        let mut g = generator();
        writer.push(&g.next_event()).unwrap();
        assert!(writer.finish().is_err());
    }

    #[test]
    fn over_declared_writer_fails_at_push() {
        let mut writer = TraceWriter::new(Vec::new(), "x", 1, 1).unwrap();
        let mut g = generator();
        writer.push(&g.next_event()).unwrap();
        assert!(writer.push(&g.next_event()).is_err());
    }

    #[test]
    fn errors_display() {
        assert!(TraceError::BadMagic.to_string().contains("magic"));
        assert!(TraceError::Empty.to_string().contains("no events"));
    }
}
