//! Property-based tests for the cache models.

use cameo_cachesim::alloy::AlloyDirectory;
use cameo_cachesim::{CacheConfig, Replacement, SetAssocCache};
use cameo_types::{ByteSize, Cycle, LineAddr};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = Replacement> {
    prop_oneof![
        Just(Replacement::Lru),
        (0u64..100).prop_map(|seed| Replacement::Random { seed }),
        Just(Replacement::Srrip),
    ]
}

fn small_cache() -> impl Strategy<Value = SetAssocCache> {
    (1u32..=4, 1u64..=8, arb_policy()).prop_map(|(ways, sets, policy)| {
        SetAssocCache::with_policy(
            CacheConfig {
                capacity: ByteSize::from_lines(u64::from(ways) * sets),
                ways,
                latency: Cycle::new(1),
            },
            policy,
        )
    })
}

proptest! {
    /// An access immediately followed by the same access always hits.
    #[test]
    fn immediate_reuse_hits(
        mut cache in small_cache(),
        lines in prop::collection::vec(0u64..256, 1..100),
    ) {
        for &l in &lines {
            cache.access(LineAddr::new(l), false);
            prop_assert!(cache.access(LineAddr::new(l), false).hit);
        }
    }

    /// Occupancy never exceeds capacity, and hits + misses == accesses.
    #[test]
    fn occupancy_bounded(
        mut cache in small_cache(),
        ops in prop::collection::vec((0u64..256, any::<bool>()), 1..200),
    ) {
        let capacity = cache.config().capacity.lines() as usize;
        for &(l, w) in &ops {
            cache.access(LineAddr::new(l), w);
            prop_assert!(cache.occupancy() <= capacity);
        }
        // Each op above did one access; the reuse probe in the other test
        // doesn't run here, so the counters must match exactly.
        prop_assert_eq!(cache.stats().accesses(), ops.len() as u64);
    }

    /// A victim reported by a fill was resident before and is absent after,
    /// and the filled line is resident.
    #[test]
    fn eviction_consistency(
        mut cache in small_cache(),
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200),
    ) {
        for &(l, w) in &ops {
            let line = LineAddr::new(l);
            let was_resident = cache.contains(line);
            let out = cache.access(line, w);
            prop_assert_eq!(out.hit, was_resident);
            prop_assert!(cache.contains(line));
            if let Some(victim) = out.evicted {
                prop_assert!(!cache.contains(victim.line));
                prop_assert_ne!(victim.line, line);
            }
        }
    }

    /// Dirty data is never silently dropped: every line written is either
    /// still resident or was reported via a dirty eviction.
    #[test]
    fn no_silent_dirty_drops(
        mut cache in small_cache(),
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200),
    ) {
        use std::collections::HashSet;
        let mut dirty: HashSet<u64> = HashSet::new();
        for &(l, w) in &ops {
            let line = LineAddr::new(l);
            let out = cache.access(line, w);
            if w {
                dirty.insert(l);
            }
            if let Some(victim) = out.evicted {
                if dirty.remove(&victim.line.raw()) {
                    prop_assert!(victim.dirty, "dirty line dropped clean");
                }
            }
        }
        for l in dirty {
            prop_assert!(cache.contains(LineAddr::new(l)), "dirty line {l} vanished");
        }
    }

    /// The Alloy directory holds at most one line per set, and `probe`
    /// agrees with fill/evict history.
    #[test]
    fn alloy_direct_mapping(
        sets in 1u64..64,
        lines in prop::collection::vec(0u64..1024, 1..200),
    ) {
        let mut dir = AlloyDirectory::new(sets);
        let mut model: Vec<Option<u64>> = vec![None; sets as usize];
        for &l in &lines {
            let line = LineAddr::new(l);
            let set = dir.set_of(line) as usize;
            prop_assert_eq!(dir.probe(line), model[set] == Some(l));
            dir.fill(line, false);
            model[set] = Some(l);
        }
        prop_assert_eq!(dir.occupancy(), model.iter().flatten().count());
    }
}
