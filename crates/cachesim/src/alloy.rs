//! The Alloy Cache (Qureshi & Loh, MICRO 2012): the paper's hardware
//! DRAM-cache baseline.
//!
//! Alloy organizes stacked DRAM as a *direct-mapped*, line-granularity cache
//! whose tag is co-located with its data line as a TAD (tag-and-data) unit,
//! streamed out in a single burst. A *memory access predictor* (MAP-I:
//! instruction-address indexed) guesses whether a request will hit; on a
//! predicted miss the off-chip access is launched in parallel with the TAD
//! probe instead of serializing behind it.
//!
//! This module holds the cache *state* — the [`AlloyDirectory`] tag array
//! and the [`HitPredictor`] — while the organization layer in `cameo-sim`
//! charges DRAM timing for TAD reads, fills and writebacks.

use cameo_types::{CoreId, Cycle, LineAddr, TraceEvent, TraceSink};

use crate::Eviction;

/// Bytes streamed per TAD access: 64 B data + 8 B tag, padded to the
/// burst-of-five (80 B) transfer the paper uses for co-located metadata.
pub const TAD_BYTES: u32 = 80;

/// Direct-mapped tag directory of an Alloy cache.
///
/// One entry ("set") per stacked-DRAM data line. Mapping is
/// `set = line % sets`, `tag = line / sets`, mirroring the congruence-group
/// mapping CAMEO itself uses, which makes Alloy-vs-CAMEO comparisons
/// apples-to-apples.
///
/// # Examples
///
/// ```
/// use cameo_cachesim::alloy::AlloyDirectory;
/// use cameo_types::LineAddr;
///
/// let mut dir = AlloyDirectory::new(1024);
/// let line = LineAddr::new(5000);
/// assert!(!dir.probe(line)); // cold
/// dir.fill(line, false);
/// assert!(dir.probe(line));
/// ```
#[derive(Clone, Debug)]
pub struct AlloyDirectory {
    sets: u64,
    entries: Vec<Option<Tad>>,
}

#[derive(Clone, Copy, Debug)]
struct Tad {
    tag: u64,
    dirty: bool,
}

impl AlloyDirectory {
    /// Creates an empty directory with `sets` entries (one per stacked data
    /// line).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero.
    pub fn new(sets: u64) -> Self {
        assert!(sets > 0, "alloy cache must have at least one set");
        Self {
            sets,
            entries: vec![None; sets as usize],
        }
    }

    /// Number of sets (stacked data lines).
    #[inline]
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Set index a line maps to — the stacked-DRAM location of its TAD.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> u64 {
        line.raw() % self.sets
    }

    /// Returns whether `line` is currently resident (does not modify state).
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        let tag = line.raw() / self.sets;
        self.entries[set as usize].is_some_and(|t| t.tag == tag)
    }

    /// Marks a resident line dirty; returns `false` if the line is absent.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        let tag = line.raw() / self.sets;
        match &mut self.entries[set as usize] {
            Some(t) if t.tag == tag => {
                t.dirty = true;
                true
            }
            _ => false,
        }
    }

    /// Installs `line`, returning the displaced victim (direct-mapped, so at
    /// most one) for writeback handling.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
        let set = self.set_of(line);
        let tag = line.raw() / self.sets;
        let victim = self.entries[set as usize].map(|t| Eviction {
            line: LineAddr::new(t.tag * self.sets + set),
            dirty: t.dirty,
        });
        self.entries[set as usize] = Some(Tad { tag, dirty });
        // Re-filling the same line is not an eviction.
        victim.filter(|v| v.line != line)
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Drops `line` from the cache if resident (e.g. because its physical
    /// frame was recycled by the OS), returning whether it was dirty. No
    /// writeback is implied — callers decide what the dirtiness means.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_of(line) as usize;
        let tag = line.raw() / self.sets;
        match self.entries[set] {
            Some(t) if t.tag == tag => {
                self.entries[set] = None;
                Some(t.dirty)
            }
            _ => None,
        }
    }
}

/// Route chosen by the hit predictor for an incoming request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredictedRoute {
    /// Probe the DRAM cache first (serial).
    Cache,
    /// Launch the off-chip access in parallel with the probe.
    Memory,
}

/// MAP-I style hit predictor: per-core tables of 3-bit saturating counters
/// indexed by a hash of the missing instruction's PC.
///
/// Counter value at or above the midpoint predicts a cache *hit* (route
/// [`PredictedRoute::Cache`]); below it predicts a miss and the memory is
/// accessed in parallel.
///
/// # Examples
///
/// ```
/// use cameo_cachesim::alloy::{HitPredictor, PredictedRoute};
/// use cameo_types::CoreId;
///
/// let mut p = HitPredictor::new(4, 256);
/// let core = CoreId(0);
/// for _ in 0..4 {
///     p.train(core, 0x400100, false); // repeated misses
/// }
/// assert_eq!(p.predict(core, 0x400100), PredictedRoute::Memory);
/// ```
#[derive(Clone, Debug)]
pub struct HitPredictor {
    entries_per_core: usize,
    /// 3-bit saturating counters, one table per core, flattened.
    counters: Vec<u8>,
}

const COUNTER_MAX: u8 = 7;
const COUNTER_INIT: u8 = 4; // weakly predict hit: serial probe is the safe default

impl HitPredictor {
    /// Creates per-core predictor tables.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `entries_per_core` is zero, or if
    /// `entries_per_core` is not a power of two (the index is a mask).
    pub fn new(cores: u16, entries_per_core: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(
            entries_per_core.is_power_of_two(),
            "table size must be a power of two"
        );
        Self {
            entries_per_core,
            counters: vec![COUNTER_INIT; usize::from(cores) * entries_per_core],
        }
    }

    fn index(&self, core: CoreId, pc: u64) -> usize {
        let slot = (pc >> 2) as usize & (self.entries_per_core - 1);
        usize::from(core.0) * self.entries_per_core + slot
    }

    /// Predicts the route for a request from `core` at instruction `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the configured core count.
    pub fn predict(&self, core: CoreId, pc: u64) -> PredictedRoute {
        if self.counters[self.index(core, pc)] >= 4 {
            PredictedRoute::Cache
        } else {
            PredictedRoute::Memory
        }
    }

    /// Trains the predictor with the observed outcome.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the configured core count.
    pub fn train(&mut self, core: CoreId, pc: u64, was_hit: bool) {
        let idx = self.index(core, pc);
        let c = &mut self.counters[idx];
        if was_hit {
            *c = (*c + 1).min(COUNTER_MAX);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Storage cost in bits (3 bits per counter), for overhead reporting.
    pub fn storage_bits(&self) -> usize {
        self.counters.len() * 3
    }

    /// Trains the predictor like [`HitPredictor::train`] and, with tracing
    /// armed, emits an [`TraceEvent::LlpPredict`] event recording whether
    /// the pre-training prediction routed this request correctly (a
    /// predicted-hit that hit, or a predicted-miss that missed).
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the configured core count.
    pub fn train_traced<S: TraceSink>(
        &mut self,
        core: CoreId,
        pc: u64,
        was_hit: bool,
        now: Cycle,
        sink: &mut S,
    ) {
        if S::ENABLED {
            let predicted_hit = self.predict(core, pc) == PredictedRoute::Cache;
            sink.emit(
                now,
                TraceEvent::LlpPredict {
                    correct: predicted_hit == was_hit,
                },
            );
        }
        self.train(core, pc, was_hit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflicts() {
        let mut dir = AlloyDirectory::new(8);
        let a = LineAddr::new(3);
        let b = LineAddr::new(11); // same set 3
        dir.fill(a, true);
        let evicted = dir.fill(b, false).expect("conflict eviction");
        assert_eq!(evicted.line, a);
        assert!(evicted.dirty);
        assert!(dir.probe(b));
        assert!(!dir.probe(a));
    }

    #[test]
    fn refill_same_line_is_not_eviction() {
        let mut dir = AlloyDirectory::new(8);
        let a = LineAddr::new(3);
        dir.fill(a, false);
        assert_eq!(dir.fill(a, true), None);
    }

    #[test]
    fn mark_dirty_only_when_resident() {
        let mut dir = AlloyDirectory::new(8);
        let a = LineAddr::new(5);
        assert!(!dir.mark_dirty(a));
        dir.fill(a, false);
        assert!(dir.mark_dirty(a));
        let evicted = dir.fill(LineAddr::new(13), false).expect("eviction");
        assert!(evicted.dirty);
    }

    #[test]
    fn occupancy() {
        let mut dir = AlloyDirectory::new(4);
        assert_eq!(dir.occupancy(), 0);
        dir.fill(LineAddr::new(0), false);
        dir.fill(LineAddr::new(1), false);
        dir.fill(LineAddr::new(4), false); // evicts line 0
        assert_eq!(dir.occupancy(), 2);
    }

    #[test]
    fn predictor_learns_miss_streams() {
        let mut p = HitPredictor::new(2, 64);
        let core = CoreId(1);
        assert_eq!(p.predict(core, 0x1000), PredictedRoute::Cache); // default
        for _ in 0..8 {
            p.train(core, 0x1000, false);
        }
        assert_eq!(p.predict(core, 0x1000), PredictedRoute::Memory);
        for _ in 0..8 {
            p.train(core, 0x1000, true);
        }
        assert_eq!(p.predict(core, 0x1000), PredictedRoute::Cache);
    }

    #[test]
    fn predictor_tables_are_per_core() {
        let mut p = HitPredictor::new(2, 64);
        for _ in 0..8 {
            p.train(CoreId(0), 0x1000, false);
        }
        assert_eq!(p.predict(CoreId(0), 0x1000), PredictedRoute::Memory);
        assert_eq!(p.predict(CoreId(1), 0x1000), PredictedRoute::Cache);
    }

    #[test]
    fn storage_overhead_is_small() {
        let p = HitPredictor::new(8, 256);
        // 8 cores x 256 entries x 3 bits = 768 bytes.
        assert_eq!(p.storage_bits(), 8 * 256 * 3);
        assert!(p.storage_bits() / 8 < 1024);
    }

    #[test]
    fn traced_training_scores_the_pre_training_route() {
        use cameo_types::{NopSink, VecSink};
        let mut p = HitPredictor::new(1, 64);
        let mut sink = VecSink::default();
        // Default weakly predicts hit: a hit outcome is correct, a miss is not.
        p.train_traced(CoreId(0), 0x2000, true, Cycle::new(5), &mut sink);
        for _ in 0..8 {
            p.train(CoreId(0), 0x2000, false);
        }
        p.train_traced(CoreId(0), 0x2000, false, Cycle::new(9), &mut sink);
        assert_eq!(
            sink.events,
            vec![
                (Cycle::new(5), TraceEvent::LlpPredict { correct: true }),
                (Cycle::new(9), TraceEvent::LlpPredict { correct: true }),
            ]
        );
        // The no-op sink path trains identically.
        let mut q = HitPredictor::new(1, 64);
        q.train_traced(CoreId(0), 0x2000, true, Cycle::new(5), &mut NopSink);
        assert_eq!(q.predict(CoreId(0), 0x2000), PredictedRoute::Cache);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_table_rejected() {
        HitPredictor::new(1, 100);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn empty_directory_rejected() {
        AlloyDirectory::new(0);
    }
}
