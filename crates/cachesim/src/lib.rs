//! Cache models for the CAMEO reproduction.
//!
//! Two substrates live here:
//!
//! * [`SetAssocCache`] — a generic set-associative, write-back cache with
//!   LRU replacement, used for the paper's 32 MB, 16-way shared L3
//!   (see [`L3Config`]).
//! * [`alloy`] — the state-of-the-art **Alloy Cache** (Qureshi & Loh,
//!   MICRO 2012) that the paper uses as its hardware DRAM-cache baseline:
//!   a direct-mapped, line-granularity cache that stores tag-and-data
//!   (TAD) units in stacked DRAM, plus the PC-indexed memory-access
//!   predictor that decides whether to probe the cache serially or fetch
//!   from memory in parallel.
//!
//! The structures here are *state only*; the timing glue that charges DRAM
//! cycles for TAD reads and fills lives in the `cameo-sim` organization
//! layer, keeping the device models reusable.
//!
//! # Examples
//!
//! ```
//! use cameo_cachesim::{L3Config, SetAssocCache};
//!
//! let mut l3 = SetAssocCache::new(L3Config::paper().scaled(64));
//! let line = cameo_types::LineAddr::new(42);
//! assert!(!l3.access(line, false).hit); // cold miss
//! assert!(l3.access(line, false).hit); // now resident
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloy;
mod set_assoc;

pub use set_assoc::{
    AccessOutcome, CacheConfig, CacheStats, Eviction, L3Config, Replacement, SetAssocCache,
};
