//! Generic set-associative, write-back, write-allocate cache with LRU
//! replacement.

use cameo_types::{ByteSize, Cycle, LineAddr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Replacement policy for [`SetAssocCache`].
///
/// The per-way metadata word is interpreted per policy: a recency
/// timestamp for LRU, unused for Random, and a 2-bit re-reference
/// prediction value (RRPV) for SRRIP.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Replacement {
    /// True least-recently-used (the default; the paper's L3).
    #[default]
    Lru,
    /// Uniform random victim, seeded for determinism.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Static re-reference interval prediction (Jaleel et al., ISCA 2010)
    /// with 2-bit RRPVs: scan-resistant, a common L3 policy.
    Srrip,
}

/// RRPV constants for [`Replacement::Srrip`].
const RRPV_MAX: u64 = 3;
const RRPV_LONG: u64 = 2;

/// Geometry of a set-associative cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity.
    pub capacity: ByteSize,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Access latency charged by the owning level.
    pub latency: Cycle,
}

impl CacheConfig {
    /// Number of sets implied by capacity and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is empty.
    pub fn sets(&self) -> u64 {
        let lines = self.capacity.lines();
        assert!(self.ways > 0, "cache must have at least one way");
        assert!(
            lines > 0 && lines.is_multiple_of(u64::from(self.ways)),
            "capacity {} not divisible into {} ways",
            self.capacity,
            self.ways
        );
        lines / u64::from(self.ways)
    }
}

/// The paper's shared last-level cache: 32 MB, 16-way, 24-cycle (Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct L3Config;

impl L3Config {
    /// Full-scale paper configuration.
    pub fn paper() -> CacheConfig {
        CacheConfig {
            capacity: ByteSize::from_mib(32),
            ways: 16,
            latency: Cycle::new(24),
        }
    }

    /// Paper configuration with capacity scaled down by `factor`, matching
    /// the memory-capacity scaling used for tractable simulation.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled(factor: u64) -> CacheConfig {
        let base = Self::paper();
        CacheConfig {
            capacity: base.capacity.scale_down(factor),
            ..base
        }
    }
}

/// Allows `L3Config::paper().scaled(64)` in prose-friendly call chains.
impl CacheConfig {
    /// Returns the same geometry with capacity scaled down by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled(self, factor: u64) -> Self {
        Self {
            capacity: self.capacity.scale_down(factor),
            ..self
        }
    }
}

/// A line evicted to make room for a fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// Address of the victim line.
    pub line: LineAddr,
    /// Whether the victim must be written back.
    pub dirty: bool,
}

/// Result of one cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// Whether the line was resident.
    pub hit: bool,
    /// Victim displaced by the fill on a miss (write-allocate).
    pub evicted: Option<Eviction>,
}

/// Hit/miss counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty victims written back.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; `None` before any access.
    pub fn miss_rate(&self) -> Option<f64> {
        (self.accesses() > 0).then(|| self.misses as f64 / self.accesses() as f64)
    }
}

/// Per-way state flags, packed into one byte per way.
const FLAG_VALID: u8 = 1 << 0;
const FLAG_DIRTY: u8 = 1 << 1;

/// Set-associative, write-back, write-allocate cache with a pluggable
/// [`Replacement`] policy (true-LRU by default).
///
/// Addresses are mapped as `set = line % sets`, `tag = line / sets`, so the
/// original line address of a victim can be reconstructed for writeback.
///
/// Way state is stored structure-of-arrays — parallel `tags`, `meta`, and
/// `flags` vectors indexed by `set * ways + way` — rather than a
/// `Vec<Option<Way>>`. Tag probes (the hot path of every access) scan a
/// dense `u64` run with no discriminant checks, and an entire 16-way set's
/// flags fit in two words.
///
/// # Examples
///
/// ```
/// use cameo_cachesim::{CacheConfig, SetAssocCache};
/// use cameo_types::{ByteSize, Cycle, LineAddr};
///
/// let mut cache = SetAssocCache::new(CacheConfig {
///     capacity: ByteSize::from_kib(8),
///     ways: 2,
///     latency: Cycle::new(4),
/// });
/// let out = cache.access(LineAddr::new(7), true);
/// assert!(!out.hit);
/// assert!(cache.access(LineAddr::new(7), false).hit);
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: u64,
    /// Tag of each way (valid only where `flags` says so).
    tags: Vec<u64>,
    /// Policy-defined metadata: LRU timestamp or SRRIP RRPV.
    meta: Vec<u64>,
    /// [`FLAG_VALID`] | [`FLAG_DIRTY`] per way.
    flags: Vec<u8>,
    clock: u64,
    policy: Replacement,
    rng: SmallRng,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        Self::with_policy(config, Replacement::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheConfig::sets`]).
    pub fn with_policy(config: CacheConfig, policy: Replacement) -> Self {
        let sets = config.sets();
        let total = (sets * u64::from(config.ways)) as usize;
        let seed = match policy {
            Replacement::Random { seed } => seed,
            _ => 0,
        };
        Self {
            config,
            sets,
            tags: vec![0; total],
            meta: vec![0; total],
            flags: vec![0; total],
            clock: 0,
            policy,
            rng: SmallRng::seed_from_u64(seed),
            stats: CacheStats::default(),
        }
    }

    /// The replacement policy in effect.
    #[inline]
    pub fn policy(&self) -> Replacement {
        self.policy
    }

    /// Returns the configuration.
    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Returns accumulated counters.
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets counters, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_and_tag(&self, line: LineAddr) -> (u64, u64) {
        (line.raw() % self.sets, line.raw() / self.sets)
    }

    fn set_range(&self, set: u64) -> std::ops::Range<usize> {
        let start = (set * u64::from(self.config.ways)) as usize;
        start..start + self.config.ways as usize
    }

    /// Index of the way holding `tag` in `set`, if resident.
    #[inline]
    fn find_way(&self, set: u64, tag: u64) -> Option<usize> {
        let range = self.set_range(set);
        // A dense scan over the parallel arrays: tags of invalid ways are
        // stale, so the flags word gates every candidate match.
        self.tags[range.clone()]
            .iter()
            .zip(&self.flags[range.clone()])
            .position(|(&t, &f)| f & FLAG_VALID != 0 && t == tag)
            .map(|offset| range.start + offset)
    }

    /// Probes without modifying state or statistics.
    pub fn contains(&self, line: LineAddr) -> bool {
        let (set, tag) = self.set_and_tag(line);
        self.find_way(set, tag).is_some()
    }

    /// Accesses `line`, filling it on a miss (write-allocate) and returning
    /// any victim displaced by the fill.
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.set_and_tag(line);
        let policy = self.policy;

        if let Some(idx) = self.find_way(set, tag) {
            self.meta[idx] = match policy {
                Replacement::Lru => clock,
                Replacement::Random { .. } => 0,
                // Hit promotion: predict near-immediate re-reference.
                Replacement::Srrip => 0,
            };
            self.flags[idx] |= FLAG_VALID | if is_write { FLAG_DIRTY } else { 0 };
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                evicted: None,
            };
        }

        self.stats.misses += 1;
        let range = self.set_range(set);
        // Fill: prefer an invalid way, else ask the policy for a victim.
        // Tie-breaking order is identical to the former array-of-structs
        // scan (first invalid; first-minimal LRU timestamp) so sweep
        // results stay bit-identical across the layout change.
        let victim_offset = match self.flags[range.clone()]
            .iter()
            .position(|&f| f & FLAG_VALID == 0)
        {
            Some(idx) => idx,
            None => match policy {
                Replacement::Lru => self.meta[range.clone()]
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &m)| m)
                    .map(|(idx, _)| idx)
                    .expect("cache set has at least one way"),
                Replacement::Random { .. } => self.rng.gen_range(0..range.len()),
                Replacement::Srrip => {
                    // Find an RRPV-3 way, aging everyone until one appears.
                    // All ways are valid here (no invalid way was found).
                    loop {
                        if let Some(idx) =
                            self.meta[range.clone()].iter().position(|&m| m >= RRPV_MAX)
                        {
                            break idx;
                        }
                        for m in &mut self.meta[range.clone()] {
                            *m += 1;
                        }
                    }
                }
            },
        };
        let victim = range.start + victim_offset;
        let evicted = (self.flags[victim] & FLAG_VALID != 0).then(|| Eviction {
            line: LineAddr::new(self.tags[victim] * self.sets + set),
            dirty: self.flags[victim] & FLAG_DIRTY != 0,
        });
        if evicted.is_some_and(|e| e.dirty) {
            self.stats.dirty_evictions += 1;
        }
        self.tags[victim] = tag;
        self.flags[victim] = FLAG_VALID | if is_write { FLAG_DIRTY } else { 0 };
        self.meta[victim] = match policy {
            Replacement::Lru => clock,
            Replacement::Random { .. } => 0,
            // Fills are predicted to re-reference in a long interval —
            // this is what makes SRRIP scan-resistant.
            Replacement::Srrip => RRPV_LONG,
        };
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Invalidates `line` if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (set, tag) = self.set_and_tag(line);
        let idx = self.find_way(set, tag)?;
        let dirty = self.flags[idx] & FLAG_DIRTY != 0;
        self.flags[idx] = 0;
        Some(dirty)
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.flags.iter().filter(|&&f| f & FLAG_VALID != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: u32, sets: u64) -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            capacity: ByteSize::from_lines(u64::from(ways) * sets),
            ways,
            latency: Cycle::new(1),
        })
    }

    #[test]
    fn l3_paper_geometry() {
        let cfg = L3Config::paper();
        assert_eq!(cfg.sets(), 32 * 1024 * 1024 / 64 / 16);
        assert_eq!(cfg.latency, Cycle::new(24));
        let scaled = L3Config::scaled(64);
        assert_eq!(scaled.capacity, ByteSize::from_kib(512));
        assert_eq!(scaled.ways, 16);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(2, 4);
        let line = LineAddr::new(9);
        assert!(!c.access(line, false).hit);
        assert!(c.access(line, false).hit);
        assert!(c.contains(line));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, 1); // fully associative, 2 entries
        let (a, b, d) = (LineAddr::new(0), LineAddr::new(1), LineAddr::new(2));
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is MRU
        let out = c.access(d, false); // evicts b
        assert_eq!(out.evicted.expect("full set").line, b);
        assert!(c.contains(a));
        assert!(!c.contains(b));
    }

    #[test]
    fn victim_address_reconstruction() {
        let mut c = tiny(1, 4); // direct-mapped, 4 sets
        let first = LineAddr::new(5); // set 1, tag 1
        let conflicting = LineAddr::new(9); // set 1, tag 2
        c.access(first, true);
        let out = c.access(conflicting, false);
        let evicted = out.evicted.expect("conflict eviction");
        assert_eq!(evicted.line, first);
        assert!(evicted.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = tiny(1, 2);
        let line = LineAddr::new(0);
        c.access(line, false); // clean fill
        c.access(line, true); // dirtied by hit
        let out = c.access(LineAddr::new(2), false); // same set, evicts
        assert!(out.evicted.expect("eviction").dirty);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny(2, 2);
        let line = LineAddr::new(3);
        c.access(line, true);
        assert_eq!(c.invalidate(line), Some(true));
        assert_eq!(c.invalidate(line), None);
        assert!(!c.contains(line));
    }

    #[test]
    fn occupancy_tracks_fills() {
        let mut c = tiny(2, 2);
        assert_eq!(c.occupancy(), 0);
        for i in 0..3 {
            c.access(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny(2, 2);
        assert_eq!(c.stats().miss_rate(), None);
        c.access(LineAddr::new(0), false);
        c.access(LineAddr::new(0), false);
        assert_eq!(c.stats().miss_rate(), Some(0.5));
    }

    #[test]
    fn srrip_resists_scans() {
        // Scan resistance: a hot set re-touched every round, with a scan
        // burst as long as the associativity in between. Under LRU the
        // burst pushes the hot lines to LRU position and evicts them every
        // round; under SRRIP scan fills enter with a long re-reference
        // prediction and age out first.
        let run = |policy| {
            let mut c = SetAssocCache::with_policy(
                CacheConfig {
                    capacity: ByteSize::from_lines(8),
                    ways: 8, // fully associative isolates the policy
                    latency: Cycle::new(1),
                },
                policy,
            );
            // Warm and *promote* the hot set (fills enter with a long
            // re-reference prediction; the second touch is the hit that
            // marks them near-immediate).
            for _ in 0..2 {
                for h in 0..4u64 {
                    c.access(LineAddr::new(h), false);
                }
            }
            let mut hot_hits = 0u64;
            let mut hot_accesses = 0u64;
            let mut scan = 1u64 << 20;
            for _round in 0..100 {
                for h in 0..4u64 {
                    hot_accesses += 1;
                    if c.access(LineAddr::new(h), false).hit {
                        hot_hits += 1;
                    }
                }
                for _ in 0..8 {
                    scan += 1;
                    c.access(LineAddr::new(scan), false);
                }
            }
            hot_hits as f64 / hot_accesses as f64
        };
        let lru_hot = run(Replacement::Lru);
        let srrip_hot = run(Replacement::Srrip);
        assert!(lru_hot < 0.1, "LRU should lose the hot set: {lru_hot:.2}");
        assert!(
            srrip_hot > lru_hot + 0.2,
            "SRRIP should keep (much of) the hot set: {srrip_hot:.2} vs LRU {lru_hot:.2}"
        );
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut c = SetAssocCache::with_policy(
                CacheConfig {
                    capacity: ByteSize::from_lines(8),
                    ways: 4,
                    latency: Cycle::new(1),
                },
                Replacement::Random { seed },
            );
            let mut evictions = Vec::new();
            for i in 0..200u64 {
                if let Some(e) = c.access(LineAddr::new(i * 3 % 64), false).evicted {
                    evictions.push(e.line);
                }
            }
            evictions
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn all_policies_obey_capacity() {
        for policy in [
            Replacement::Lru,
            Replacement::Random { seed: 1 },
            Replacement::Srrip,
        ] {
            let mut c = SetAssocCache::with_policy(
                CacheConfig {
                    capacity: ByteSize::from_lines(16),
                    ways: 4,
                    latency: Cycle::new(1),
                },
                policy,
            );
            for i in 0..500u64 {
                c.access(LineAddr::new(i % 77), i % 3 == 0);
                assert!(c.occupancy() <= 16, "{policy:?}");
            }
            // Reuse still hits under every policy.
            let line = LineAddr::new(1000);
            c.access(line, false);
            assert!(c.access(line, false).hit, "{policy:?}");
        }
    }

    #[test]
    fn default_policy_is_lru() {
        let c = SetAssocCache::new(CacheConfig {
            capacity: ByteSize::from_lines(4),
            ways: 2,
            latency: Cycle::new(1),
        });
        assert_eq!(c.policy(), Replacement::Lru);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_rejected() {
        SetAssocCache::new(CacheConfig {
            capacity: ByteSize::from_lines(3),
            ways: 2,
            latency: Cycle::new(1),
        });
    }
}
