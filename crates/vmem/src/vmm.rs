//! The virtual memory manager: page table, demand paging, fault accounting.

use cameo_types::{ByteSize, DetHashMap, PageAddr, PhysPageAddr, PAGE_BYTES};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::frames::{FrameAllocator, FrameId, Region};

/// Frame placement policy for newly faulted-in pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// A random free frame anywhere in visible memory (the paper's
    /// TLM-Static mapping, also used as the CAMEO default).
    Random,
    /// Prefer stacked frames while they last, then off-chip.
    PreferStacked,
    /// Off-chip frames only (keeps stacked frames for a policy that places
    /// pages there explicitly, e.g. TLM-Oracle).
    OffChipFirst,
}

/// Configuration of the visible memory space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VmmConfig {
    /// OS-visible stacked capacity (zero when stacked DRAM is a cache).
    pub stacked: ByteSize,
    /// OS-visible off-chip capacity.
    pub off_chip: ByteSize,
    /// Frame placement policy.
    pub placement: Placement,
    /// Seed for the random placement / random-probe victim selection.
    pub seed: u64,
}

/// Paging activity counters (feeds the paper's storage-bandwidth rows in
/// Table IV and the page-fault component of execution time).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VmmStats {
    /// Page faults serviced from storage.
    pub faults: u64,
    /// Dirty pages written back to storage on eviction.
    pub dirty_writebacks: u64,
    /// Bytes read from storage (faults × page size).
    pub bytes_from_storage: u64,
    /// Bytes written to storage (dirty writebacks × page size).
    pub bytes_to_storage: u64,
}

impl VmmStats {
    /// Total storage-bus traffic in bytes.
    #[inline]
    pub fn storage_bytes(&self) -> u64 {
        self.bytes_from_storage + self.bytes_to_storage
    }
}

/// Details of a page fault raised by [`Vmm::translate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultInfo {
    /// Page evicted to make room, with its dirtiness, if memory was full.
    pub evicted: Option<(PageAddr, bool)>,
}

/// Result of translating a virtual page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TranslateOutcome {
    /// Physical page the virtual page maps to.
    pub phys: PhysPageAddr,
    /// Backing frame.
    pub frame: FrameId,
    /// Present on a page fault (the page was not resident).
    pub fault: Option<FaultInfo>,
}

/// The virtual memory manager: translates virtual pages to physical frames,
/// faulting pages in from storage on first touch or after eviction.
///
/// # Examples
///
/// ```
/// use cameo_vmem::{Placement, Vmm, VmmConfig};
/// use cameo_types::{ByteSize, PageAddr};
///
/// let mut vmm = Vmm::new(VmmConfig {
///     stacked: ByteSize::from_pages(4),
///     off_chip: ByteSize::from_pages(12),
///     placement: Placement::Random,
///     seed: 1,
/// });
/// let out = vmm.translate(PageAddr::new(0), true);
/// assert!(out.fault.is_some());
/// assert_eq!(vmm.stats().faults, 1);
/// ```
#[derive(Clone, Debug)]
pub struct Vmm {
    config: VmmConfig,
    allocator: FrameAllocator,
    // The page table is probed on every simulated access: use the
    // deterministic fast hasher, not SipHash. Safe because lookups are
    // point queries — no simulated decision iterates this map (the
    // `deep-audit` iteration in `audit_page_table` only checks invariants).
    table: DetHashMap<PageAddr, FrameId>,
    rng: SmallRng,
    stats: VmmStats,
}

impl Vmm {
    /// Creates a VMM over the given visible capacities.
    ///
    /// # Panics
    ///
    /// Panics if total visible memory is zero pages.
    pub fn new(config: VmmConfig) -> Self {
        let allocator = FrameAllocator::new(config.stacked.pages(), config.off_chip.pages());
        Self {
            config,
            allocator,
            table: DetHashMap::default(),
            rng: SmallRng::seed_from_u64(config.seed),
            stats: VmmStats::default(),
        }
    }

    /// Returns the configuration.
    #[inline]
    pub fn config(&self) -> &VmmConfig {
        &self.config
    }

    /// Returns paging counters.
    #[inline]
    pub fn stats(&self) -> &VmmStats {
        &self.stats
    }

    /// Resets paging counters, keeping all residency state (used when the
    /// measured region starts after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = VmmStats::default();
    }

    /// Read access to the frame pool (for policies that inspect regions).
    #[inline]
    pub fn frames(&self) -> &FrameAllocator {
        &self.allocator
    }

    /// Frame currently backing `page`, if resident.
    #[inline]
    pub fn frame_of(&self, page: PageAddr) -> Option<FrameId> {
        self.table.get(&page).copied()
    }

    /// Number of resident pages.
    #[inline]
    pub fn resident_pages(&self) -> usize {
        self.table.len()
    }

    /// Translates a virtual page, faulting it in if necessary. Marks the
    /// frame referenced (and dirty on writes) for the clock algorithm.
    pub fn translate(&mut self, page: PageAddr, is_write: bool) -> TranslateOutcome {
        let region = match self.config.placement {
            Placement::Random => Region::Any,
            Placement::PreferStacked => Region::Stacked,
            Placement::OffChipFirst => Region::OffChip,
        };
        self.translate_in(page, is_write, region)
    }

    /// Translates a batch of virtual pages in slice order, faulting each
    /// in if necessary, and returns the number of faults taken. Per-page
    /// side effects (placement RNG draws, touch order, eviction choices,
    /// counters) are identical to calling [`Vmm::translate`] on each page
    /// in turn; the batch form exists so bulk callers — the sweep
    /// harness's prefill transient translates every page of every core's
    /// footprint — pay the page-table growth once up front instead of
    /// rehashing incrementally.
    pub fn translate_batch(&mut self, pages: &[PageAddr], is_write: bool) -> u64 {
        let before = self.stats.faults;
        // Reserving for the miss-heavy case (prefill touches each page
        // once) keeps the table from rehashing mid-batch; resident pages
        // simply leave slack, which the next batch reuses.
        self.table.reserve(pages.len());
        for &page in pages {
            self.translate(page, is_write);
        }
        self.stats.faults - before
    }

    /// Like [`Vmm::translate`] but with an explicit region preference for
    /// the fault-in path (used by TLM-Oracle's profiled placement).
    pub fn translate_in(
        &mut self,
        page: PageAddr,
        is_write: bool,
        region: Region,
    ) -> TranslateOutcome {
        if let Some(&frame) = self.table.get(&page) {
            self.allocator.touch(frame, is_write);
            return TranslateOutcome {
                phys: frame.phys_page(),
                frame,
                fault: None,
            };
        }

        // Fall back to any region if the preferred one is exhausted: an OS
        // does not fault just because fast memory is full.
        let took = self.allocator.take(page, region, &mut self.rng);
        if let Some((victim, dirty)) = took.evicted {
            self.table.remove(&victim);
            if dirty {
                self.stats.dirty_writebacks += 1;
                self.stats.bytes_to_storage += PAGE_BYTES as u64;
            }
        }
        self.table.insert(page, took.frame);
        self.allocator.touch(took.frame, is_write);
        self.stats.faults += 1;
        self.stats.bytes_from_storage += PAGE_BYTES as u64;
        TranslateOutcome {
            phys: took.frame.phys_page(),
            frame: took.frame,
            fault: Some(FaultInfo {
                evicted: took.evicted,
            }),
        }
    }

    /// Exchanges the frames of two *resident* pages (TLM page migration),
    /// updating the page table.
    ///
    /// # Panics
    ///
    /// Panics if either frame has no resident page.
    pub fn swap_resident(&mut self, a: FrameId, b: FrameId) {
        let pa = self
            .allocator
            .resident(a)
            .expect("swap_resident: frame a is empty");
        let pb = self
            .allocator
            .resident(b)
            .expect("swap_resident: frame b is empty");
        self.allocator.swap_frames(a, b);
        self.table.insert(pa, b);
        self.table.insert(pb, a);
    }

    /// Moves a resident page into a specific free frame (one-way migration),
    /// releasing its old frame.
    ///
    /// Returns `false` (and changes nothing) if `page` is not resident or
    /// `to` is occupied.
    pub fn move_resident(&mut self, page: PageAddr, to: FrameId) -> bool {
        let Some(&from) = self.table.get(&page) else {
            return false;
        };
        if self.allocator.resident(to).is_some() {
            return false;
        }
        let dirty = self.allocator.is_dirty(from);
        self.allocator.release(from);
        let placed = self.allocator.place_into(page, to);
        debug_assert!(placed, "target frame was checked free");
        self.allocator.touch(to, dirty);
        self.table.insert(page, to);
        true
    }

    /// Mutable access to the RNG shared with placement (lets policies reuse
    /// the deterministic stream).
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Verifies page-table ↔ frame-allocator consistency: every mapped
    /// page's frame must report that page resident, and the number of
    /// occupied frames must equal the number of mapped pages (no orphaned
    /// residents, no double mappings).
    #[cfg(feature = "deep-audit")]
    pub fn audit_page_table(&self) -> Result<(), String> {
        for (&page, &frame) in &self.table {
            let resident = self.allocator.resident(frame);
            if resident != Some(page) {
                return Err(format!(
                    "page {page:?} maps to frame {frame:?}, but that frame \
                     reports resident {resident:?}"
                ));
            }
        }
        let occupied = (0..self.allocator.total_frames())
            .filter(|&f| self.allocator.resident(FrameId(f)).is_some())
            .count();
        if occupied != self.table.len() {
            return Err(format!(
                "{occupied} occupied frames vs {} mapped pages — orphaned \
                 resident or double mapping",
                self.table.len()
            ));
        }
        Ok(())
    }

    /// Panics with the violation if [`Vmm::audit_page_table`] fails. The
    /// TLM migrators call this after every page move under `deep-audit`.
    #[cfg(feature = "deep-audit")]
    pub fn assert_consistent(&self) {
        if let Err(violation) = self.audit_page_table() {
            panic!("deep-audit: page table inconsistent: {violation}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vmm(stacked_pages: u64, off_pages: u64) -> Vmm {
        Vmm::new(VmmConfig {
            stacked: ByteSize::from_pages(stacked_pages),
            off_chip: ByteSize::from_pages(off_pages),
            placement: Placement::Random,
            seed: 3,
        })
    }

    #[test]
    fn first_touch_faults_then_hits() {
        let mut v = vmm(2, 2);
        let p = PageAddr::new(7);
        let a = v.translate(p, false);
        assert!(a.fault.is_some());
        let b = v.translate(p, true);
        assert!(b.fault.is_none());
        assert_eq!(a.phys, b.phys);
        assert_eq!(v.stats().faults, 1);
        assert_eq!(v.stats().bytes_from_storage, 4096);
    }

    #[test]
    fn capacity_pressure_evicts() {
        let mut v = vmm(1, 1);
        v.translate(PageAddr::new(0), true);
        v.translate(PageAddr::new(1), false);
        let out = v.translate(PageAddr::new(2), false);
        let fault = out.fault.expect("must fault");
        let (victim, _) = fault.evicted.expect("memory was full");
        assert!(v.frame_of(victim).is_none(), "victim still mapped");
        assert_eq!(v.resident_pages(), 2);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut v = vmm(1, 0);
        v.translate(PageAddr::new(0), true); // dirty
        v.translate(PageAddr::new(1), false); // evicts page 0
        assert_eq!(v.stats().dirty_writebacks, 1);
        assert_eq!(v.stats().bytes_to_storage, 4096);
    }

    #[test]
    fn region_preference_falls_back() {
        let mut v = vmm(1, 1);
        // Ask for stacked twice; second must fall back to off-chip rather
        // than evicting while a free frame exists.
        let a = v.translate_in(PageAddr::new(0), false, Region::Stacked);
        let b = v.translate_in(PageAddr::new(1), false, Region::Stacked);
        assert!(b.fault.expect("fault").evicted.is_none());
        assert_ne!(a.frame, b.frame);
    }

    #[test]
    fn swap_resident_updates_table() {
        let mut v = vmm(1, 1);
        let a = v.translate_in(PageAddr::new(0), false, Region::Stacked);
        let b = v.translate_in(PageAddr::new(1), false, Region::OffChip);
        v.swap_resident(a.frame, b.frame);
        assert_eq!(v.frame_of(PageAddr::new(0)), Some(b.frame));
        assert_eq!(v.frame_of(PageAddr::new(1)), Some(a.frame));
        // Subsequent translation reflects the new physical location.
        assert_eq!(v.translate(PageAddr::new(0), false).frame, b.frame);
    }

    #[test]
    fn move_resident_one_way() {
        let mut v = vmm(2, 0);
        let a = v.translate(PageAddr::new(0), true);
        let free = FrameId(if a.frame.0 == 0 { 1 } else { 0 });
        assert!(v.move_resident(PageAddr::new(0), free));
        assert_eq!(v.frame_of(PageAddr::new(0)), Some(free));
        // Dirtiness travels with the page.
        assert!(v.frames().is_dirty(free));
        // Old frame is free again.
        assert_eq!(v.frames().free_frames(), 1);
        // Moving a non-resident page fails.
        assert!(!v.move_resident(PageAddr::new(9), a.frame));
    }

    #[test]
    fn translate_batch_matches_per_page_translation() {
        // Same pages, same order, same seed: the batch path must leave
        // the VMM in a state indistinguishable from the loop it replaces
        // (mappings, counters, and the RNG stream consumed by placement).
        let pages: Vec<PageAddr> = [7u64, 3, 7, 11, 0, 3, 5, 9, 2, 7]
            .iter()
            .map(|&p| PageAddr::new(p))
            .collect();
        let mut looped = vmm(2, 4);
        for &page in &pages {
            looped.translate(page, false);
        }
        let mut batched = vmm(2, 4);
        let faults = batched.translate_batch(&pages, false);
        assert_eq!(faults, looped.stats().faults);
        assert_eq!(batched.stats(), looped.stats());
        assert_eq!(batched.resident_pages(), looped.resident_pages());
        for &page in &pages {
            assert_eq!(batched.frame_of(page), looped.frame_of(page));
        }
        // The RNG streams stayed in lockstep: the next placement draws
        // the same frame on both sides.
        assert_eq!(
            batched.translate(PageAddr::new(99), false).frame,
            looped.translate(PageAddr::new(99), false).frame
        );
    }

    #[test]
    fn stats_storage_totals() {
        let mut v = vmm(1, 0);
        v.translate(PageAddr::new(0), true);
        v.translate(PageAddr::new(1), false);
        assert_eq!(v.stats().storage_bytes(), 4096 * 3); // 2 in, 1 out
    }
}
