//! Physical frame pool with clock-plus-random-probe victim selection.
//!
//! Frame state is held in sparse two-level lazy tables: the paper-scale
//! configuration tracks ~4 M frames, and an eager `Vec<Frame>` plus an
//! eager free list cost ~100 MiB before the workload touches a page.
//! Here the per-frame table allocates fixed-size leaves on first *write*
//! (reads of untouched frames see `Frame::default()` without
//! materializing anything), and the free list stores only its deviations
//! from the virtual initial state, so untouched address space costs
//! nothing. Both structures reproduce the eager versions' observable
//! behavior exactly — same RNG draws, same pop order, same victim
//! choices — which the property tests in this module pin.

use cameo_types::{DetHashMap, PageAddr, PhysPageAddr};
use rand::rngs::SmallRng;
use rand::Rng;

/// Index of a physical frame. Frames `0..stacked_frames` are in stacked
/// DRAM; the rest are off-chip.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FrameId(pub u64);

impl FrameId {
    /// The physical page address of this frame (identity mapping).
    #[inline]
    pub fn phys_page(self) -> PhysPageAddr {
        PhysPageAddr::new(self.0)
    }
}

/// Which device region a frame belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Region {
    /// Fast, stacked-DRAM frames (low physical addresses).
    Stacked,
    /// Commodity off-chip frames.
    OffChip,
    /// No preference: any frame.
    Any,
}

#[derive(Clone, Copy, PartialEq, Debug, Default)]
struct Frame {
    resident: Option<PageAddr>,
    referenced: bool,
    dirty: bool,
}

/// Frames per leaf of the lazy frame table: 4096 × 16 B = 64 KiB leaves,
/// so even a fully-touched paper-scale pool adds only ~1 K leaf pointers
/// of overhead while an untouched one allocates nothing.
const LEAF_FRAMES: usize = 4096;

/// Sparse two-level table of per-frame state. Reads of frames whose leaf
/// was never materialized return `Frame::default()`; only writes that
/// change state allocate a leaf.
#[derive(Clone, Debug)]
struct FrameTable {
    leaves: Vec<Option<Box<[Frame]>>>,
    total: usize,
}

impl FrameTable {
    fn new(total: usize) -> Self {
        Self {
            leaves: vec![None; total.div_ceil(LEAF_FRAMES)],
            total,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.total
    }

    /// Current state of frame `idx`, by value (no allocation).
    #[inline]
    fn get(&self, idx: usize) -> Frame {
        debug_assert!(idx < self.total, "frame out of range");
        match &self.leaves[idx / LEAF_FRAMES] {
            Some(leaf) => leaf[idx % LEAF_FRAMES],
            None => Frame::default(),
        }
    }

    /// Mutable state of frame `idx`, materializing its leaf on first
    /// touch.
    #[inline]
    fn get_mut(&mut self, idx: usize) -> &mut Frame {
        debug_assert!(idx < self.total, "frame out of range");
        let leaf = self.leaves[idx / LEAF_FRAMES]
            .get_or_insert_with(|| vec![Frame::default(); LEAF_FRAMES].into_boxed_slice());
        &mut leaf[idx % LEAF_FRAMES]
    }

    /// Referenced bit of frame `idx` (no allocation).
    #[inline]
    fn referenced(&self, idx: usize) -> bool {
        match &self.leaves[idx / LEAF_FRAMES] {
            Some(leaf) => leaf[idx % LEAF_FRAMES].referenced,
            None => false,
        }
    }

    /// Leaves currently materialized (host-memory gauge).
    fn resident_leaves(&self) -> usize {
        self.leaves.iter().filter(|l| l.is_some()).count()
    }
}

/// The free-frame list, stored as its deviation from the virtual initial
/// state `value(i) = total - 1 - i` (the eager `(0..total).rev()` list):
/// a logical length plus a sparse override map. `swap_remove`, `push` and
/// in-order scans reproduce the eager `Vec<u64>` exactly, so RNG-indexed
/// draws and region scans see identical values — while a pool whose tail
/// was never recycled stores nothing per untouched frame.
#[derive(Clone, Debug)]
struct FreeList {
    /// Virtual initial length (the pool size).
    total: u64,
    /// Logical length of the list.
    len: usize,
    /// Slots whose value differs from the virtual formula. Invariant:
    /// keys are `< len` (shrinking removes the vacated slot's override).
    overrides: DetHashMap<usize, u64>,
}

impl FreeList {
    fn new(total: u64) -> Self {
        Self {
            total,
            len: usize::try_from(total).expect("pool fits memory"),
            overrides: DetHashMap::default(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value at slot `i` — the frame index the eager list would hold.
    #[inline]
    fn value(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "free-list slot out of range");
        if self.overrides.is_empty() {
            return self.total - 1 - i as u64;
        }
        match self.overrides.get(&i) {
            Some(&v) => v,
            None => self.total - 1 - i as u64,
        }
    }

    /// Sets slot `i`, storing an override only when the value deviates
    /// from the virtual formula.
    fn set(&mut self, i: usize, v: u64) {
        if v == self.total - 1 - i as u64 {
            self.overrides.remove(&i);
        } else {
            self.overrides.insert(i, v);
        }
    }

    /// `Vec::swap_remove` semantics: returns slot `i`'s value after
    /// moving the last slot's value into it.
    fn swap_remove(&mut self, i: usize) -> u64 {
        let v = self.value(i);
        let last = self.len - 1;
        if i != last {
            let last_val = self.value(last);
            self.set(i, last_val);
        }
        self.overrides.remove(&last);
        self.len = last;
        v
    }

    /// Appends a value (a released frame index).
    fn push(&mut self, v: u64) {
        let at = self.len;
        self.len += 1;
        self.set(at, v);
    }

    /// First slot (in list order) whose value satisfies `pred`.
    fn position(&self, mut pred: impl FnMut(u64) -> bool) -> Option<usize> {
        (0..self.len).find(|&i| pred(self.value(i)))
    }

    /// First value (in list order) satisfying `pred`.
    fn find(&self, mut pred: impl FnMut(u64) -> bool) -> Option<u64> {
        (0..self.len).map(|i| self.value(i)).find(|&v| pred(v))
    }
}

/// The frame pool: tracks residency, referenced and dirty bits, and selects
/// eviction victims the way the paper describes — probe five random frames
/// for a free one, then fall back to a clock sweep over referenced bits.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    frames: FrameTable,
    stacked_frames: u64,
    free: FreeList,
    clock_hand: usize,
}

/// Outcome of taking a frame: the frame plus the page that had to be evicted
/// from it (with its dirtiness), if any.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Took {
    /// The granted frame.
    pub frame: FrameId,
    /// Page displaced from the frame, and whether it was dirty.
    pub evicted: Option<(PageAddr, bool)>,
}

impl FrameAllocator {
    /// Creates a pool of `stacked + off_chip` frames, all free.
    ///
    /// # Panics
    ///
    /// Panics if the pool would be empty.
    pub fn new(stacked_frames: u64, off_chip_frames: u64) -> Self {
        let total = stacked_frames + off_chip_frames;
        assert!(total > 0, "frame pool must be non-empty");
        Self {
            frames: FrameTable::new(usize::try_from(total).expect("pool fits memory")),
            stacked_frames,
            // Pop order: lowest index last so stacked frames are handed out
            // first when no region is requested — matching an OS that
            // prefers fast memory while it lasts. (The lazy list *is* this
            // ordering: its virtual initial state.)
            free: FreeList::new(total),
            clock_hand: 0,
        }
    }

    /// Total frames in the pool.
    #[inline]
    pub fn total_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Frames in the stacked region.
    #[inline]
    pub fn stacked_frames(&self) -> u64 {
        self.stacked_frames
    }

    /// Number of currently free frames.
    #[inline]
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Host bytes resident for per-frame state: materialized leaves plus
    /// free-list overrides — the gauge DESIGN.md §16 tracks against the
    /// eager layout's `total_frames × 16 B`.
    pub fn host_resident_bytes(&self) -> u64 {
        let leaf_bytes = (self.frames.resident_leaves() * LEAF_FRAMES) as u64
            * std::mem::size_of::<Frame>() as u64;
        leaf_bytes + self.free.overrides.len() as u64 * 16
    }

    /// Region of a given frame.
    #[inline]
    pub fn region_of(&self, frame: FrameId) -> Region {
        if frame.0 < self.stacked_frames {
            Region::Stacked
        } else {
            Region::OffChip
        }
    }

    /// Page currently resident in `frame`.
    #[inline]
    pub fn resident(&self, frame: FrameId) -> Option<PageAddr> {
        self.frames.get(frame.0 as usize).resident
    }

    /// Marks a frame referenced (on access) and optionally dirty.
    pub fn touch(&mut self, frame: FrameId, write: bool) {
        let f = self.frames.get_mut(frame.0 as usize);
        f.referenced = true;
        f.dirty |= write;
    }

    /// Whether the page in `frame` has been written since it was loaded.
    #[inline]
    pub fn is_dirty(&self, frame: FrameId) -> bool {
        self.frames.get(frame.0 as usize).dirty
    }

    /// Takes a frame for `page`, preferring `region`, evicting a victim if
    /// the pool is full.
    ///
    /// Victim selection follows the paper: five random probes looking for an
    /// unreferenced frame, then a clock sweep that clears referenced bits
    /// until one is found.
    pub fn take(&mut self, page: PageAddr, region: Region, rng: &mut SmallRng) -> Took {
        let frame = self
            .take_free(region, rng)
            .unwrap_or_else(|| self.select_victim(rng));
        let slot = self.frames.get_mut(frame.0 as usize);
        let evicted = slot.resident.map(|p| (p, slot.dirty));
        *slot = Frame {
            resident: Some(page),
            referenced: true,
            dirty: false,
        };
        Took { frame, evicted }
    }

    /// Releases a frame back to the free pool (used when a page is migrated
    /// away rather than evicted).
    ///
    /// # Panics
    ///
    /// Panics if the frame is already free.
    pub fn release(&mut self, frame: FrameId) {
        let slot = self.frames.get_mut(frame.0 as usize);
        assert!(slot.resident.is_some(), "double free of frame {frame:?}");
        *slot = Frame::default();
        self.free.push(frame.0);
    }

    /// Atomically exchanges the pages resident in two frames, preserving
    /// their referenced/dirty bits. Used by TLM page migration.
    ///
    /// # Panics
    ///
    /// Panics if either frame is free.
    pub fn swap_frames(&mut self, a: FrameId, b: FrameId) {
        let fa = self.frames.get(a.0 as usize);
        let fb = self.frames.get(b.0 as usize);
        assert!(
            fa.resident.is_some() && fb.resident.is_some(),
            "swap requires both frames resident"
        );
        *self.frames.get_mut(a.0 as usize) = fb;
        *self.frames.get_mut(b.0 as usize) = fa;
    }

    /// Installs `page` into a specific free frame (used by oracle
    /// placement). Returns `false` if the frame is occupied.
    pub fn place_into(&mut self, page: PageAddr, frame: FrameId) -> bool {
        let idx = frame.0 as usize;
        if self.frames.get(idx).resident.is_some() {
            return false;
        }
        // Remove from the free list.
        if let Some(pos) = self.free.position(|f| f == frame.0) {
            self.free.swap_remove(pos);
        }
        *self.frames.get_mut(idx) = Frame {
            resident: Some(page),
            referenced: true,
            dirty: false,
        };
        true
    }

    /// Peeks at a free frame in `region` without taking it (used by
    /// migration policies that fill holes before swapping).
    pub fn find_free(&self, region: Region) -> Option<FrameId> {
        let stacked = self.stacked_frames;
        self.free
            .find(|f| match region {
                Region::Any => true,
                Region::Stacked => f < stacked,
                Region::OffChip => f >= stacked,
            })
            .map(FrameId)
    }

    fn take_free(&mut self, region: Region, rng: &mut SmallRng) -> Option<FrameId> {
        if self.free.is_empty() {
            return None;
        }
        let stacked = self.stacked_frames;
        match region {
            Region::Any => {
                // Random placement across the whole pool (TLM-Static's
                // locality-oblivious mapping).
                let idx = rng.gen_range(0..self.free.len());
                Some(FrameId(self.free.swap_remove(idx)))
            }
            Region::Stacked => {
                let pos = self.free.position(|f| f < stacked)?;
                Some(FrameId(self.free.swap_remove(pos)))
            }
            Region::OffChip => {
                let pos = self.free.position(|f| f >= stacked)?;
                Some(FrameId(self.free.swap_remove(pos)))
            }
        }
    }

    fn select_victim(&mut self, rng: &mut SmallRng) -> FrameId {
        // Five random probes for an unreferenced frame.
        for _ in 0..5 {
            let idx = rng.gen_range(0..self.frames.len());
            if !self.frames.referenced(idx) {
                return FrameId(idx as u64);
            }
        }
        // Clock sweep: clear referenced bits until one stays clear. The
        // clear only writes frames whose bit is set, so the sweep never
        // materializes an untouched leaf.
        loop {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % self.frames.len();
            if self.frames.referenced(idx) {
                self.frames.get_mut(idx).referenced = false;
            } else {
                return FrameId(idx as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn fills_free_frames_first() {
        let mut fa = FrameAllocator::new(2, 2);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for p in 0..4u64 {
            let took = fa.take(PageAddr::new(p), Region::Any, &mut r);
            assert!(took.evicted.is_none());
            assert!(seen.insert(took.frame));
        }
        assert_eq!(fa.free_frames(), 0);
    }

    #[test]
    fn eviction_when_full() {
        let mut fa = FrameAllocator::new(1, 1);
        let mut r = rng();
        fa.take(PageAddr::new(0), Region::Any, &mut r);
        fa.take(PageAddr::new(1), Region::Any, &mut r);
        let took = fa.take(PageAddr::new(2), Region::Any, &mut r);
        let (victim, dirty) = took.evicted.expect("pool was full");
        assert!(victim == PageAddr::new(0) || victim == PageAddr::new(1));
        assert!(!dirty);
    }

    #[test]
    fn dirty_bit_travels_with_eviction() {
        let mut fa = FrameAllocator::new(1, 0);
        let mut r = rng();
        let took = fa.take(PageAddr::new(0), Region::Any, &mut r);
        fa.touch(took.frame, true);
        // Clock must evict page 0 (only frame); referenced gets cleared on
        // the first sweep, then it is chosen.
        let next = fa.take(PageAddr::new(1), Region::Any, &mut r);
        assert_eq!(next.evicted, Some((PageAddr::new(0), true)));
    }

    #[test]
    fn region_preference_honored() {
        let mut fa = FrameAllocator::new(2, 2);
        let mut r = rng();
        let s = fa.take(PageAddr::new(0), Region::Stacked, &mut r);
        assert_eq!(fa.region_of(s.frame), Region::Stacked);
        let o = fa.take(PageAddr::new(1), Region::OffChip, &mut r);
        assert_eq!(fa.region_of(o.frame), Region::OffChip);
    }

    #[test]
    fn clock_prefers_unreferenced() {
        let mut fa = FrameAllocator::new(0, 3);
        let mut r = rng();
        let frames: Vec<_> = (0..3u64)
            .map(|p| fa.take(PageAddr::new(p), Region::Any, &mut r).frame)
            .collect();
        // Touch all, then clear one by a full clock pass is implicit; instead
        // re-touch two and leave one cold after a sweep.
        for &f in &frames {
            fa.touch(f, false);
        }
        // All referenced: victim comes from clock after clearing; take twice
        // and ensure both evict something valid.
        for p in 10..12u64 {
            let took = fa.take(PageAddr::new(p), Region::Any, &mut r);
            assert!(took.evicted.is_some());
        }
    }

    #[test]
    fn swap_frames_exchanges_pages() {
        let mut fa = FrameAllocator::new(1, 1);
        let mut r = rng();
        let a = fa.take(PageAddr::new(10), Region::Stacked, &mut r).frame;
        let b = fa.take(PageAddr::new(20), Region::OffChip, &mut r).frame;
        fa.touch(a, true);
        fa.swap_frames(a, b);
        assert_eq!(fa.resident(a), Some(PageAddr::new(20)));
        assert_eq!(fa.resident(b), Some(PageAddr::new(10)));
        // Dirty bit moved with the page.
        assert!(fa.is_dirty(b));
        assert!(!fa.is_dirty(a));
    }

    #[test]
    fn release_and_reuse() {
        let mut fa = FrameAllocator::new(1, 0);
        let mut r = rng();
        let t = fa.take(PageAddr::new(0), Region::Any, &mut r);
        fa.release(t.frame);
        assert_eq!(fa.free_frames(), 1);
        let t2 = fa.take(PageAddr::new(1), Region::Any, &mut r);
        assert_eq!(t2.frame, t.frame);
        assert!(t2.evicted.is_none());
    }

    #[test]
    fn place_into_specific_frame() {
        let mut fa = FrameAllocator::new(2, 0);
        assert!(fa.place_into(PageAddr::new(5), FrameId(1)));
        assert!(!fa.place_into(PageAddr::new(6), FrameId(1)));
        assert_eq!(fa.resident(FrameId(1)), Some(PageAddr::new(5)));
        assert_eq!(fa.free_frames(), 1);
    }

    #[test]
    fn find_free_respects_regions() {
        let mut fa = FrameAllocator::new(1, 1);
        let mut r = rng();
        assert!(fa.find_free(Region::Stacked).is_some());
        assert!(fa.find_free(Region::OffChip).is_some());
        assert!(fa.find_free(Region::Any).is_some());
        // Fill the stacked frame: only off-chip remains.
        let s = fa.take(PageAddr::new(0), Region::Stacked, &mut r);
        assert_eq!(fa.region_of(s.frame), Region::Stacked);
        assert!(fa.find_free(Region::Stacked).is_none());
        let free = fa.find_free(Region::OffChip).expect("off-chip frame free");
        assert_eq!(fa.region_of(free), Region::OffChip);
        // Fill it too: nothing free anywhere.
        fa.take(PageAddr::new(1), Region::OffChip, &mut r);
        assert!(fa.find_free(Region::Any).is_none());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pool_rejected() {
        FrameAllocator::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_release_panics() {
        let mut fa = FrameAllocator::new(1, 0);
        let mut r = rng();
        let t = fa.take(PageAddr::new(0), Region::Any, &mut r);
        fa.release(t.frame);
        fa.release(t.frame);
    }

    #[test]
    fn untouched_pool_materializes_nothing() {
        let fa = FrameAllocator::new(1 << 16, 3 << 16);
        assert_eq!(fa.host_resident_bytes(), 0);
        // Reads of untouched frames stay free.
        assert_eq!(fa.resident(FrameId(12345)), None);
        assert!(!fa.is_dirty(FrameId(200_000)));
        assert!(fa.find_free(Region::Stacked).is_some());
        assert_eq!(fa.host_resident_bytes(), 0);
    }

    #[test]
    fn resident_bytes_track_touched_leaves_only() {
        let mut fa = FrameAllocator::new(1 << 16, 3 << 16);
        let mut r = rng();
        // The untouched pool hands out the highest off-chip frame first
        // (Any pops the lowest index last): one leaf materializes.
        fa.take(PageAddr::new(0), Region::Stacked, &mut r);
        let one_leaf = (LEAF_FRAMES * std::mem::size_of::<Frame>()) as u64;
        assert!(fa.host_resident_bytes() >= one_leaf);
        assert!(fa.host_resident_bytes() < 4 * one_leaf + 64);
    }

    /// The eager structures this PR replaced, kept verbatim as the
    /// reference model for the lazy pool.
    struct EagerPool {
        frames: Vec<Frame>,
        stacked_frames: u64,
        free: Vec<u64>,
        clock_hand: usize,
    }

    impl EagerPool {
        fn new(stacked: u64, off_chip: u64) -> Self {
            let total = stacked + off_chip;
            Self {
                frames: vec![Frame::default(); total as usize],
                stacked_frames: stacked,
                free: (0..total).rev().collect(),
                clock_hand: 0,
            }
        }

        fn take(&mut self, page: PageAddr, region: Region, rng: &mut SmallRng) -> Took {
            let frame = self
                .take_free(region, rng)
                .unwrap_or_else(|| self.select_victim(rng));
            let slot = &mut self.frames[frame.0 as usize];
            let evicted = slot.resident.map(|p| (p, slot.dirty));
            *slot = Frame {
                resident: Some(page),
                referenced: true,
                dirty: false,
            };
            Took { frame, evicted }
        }

        fn take_free(&mut self, region: Region, rng: &mut SmallRng) -> Option<FrameId> {
            if self.free.is_empty() {
                return None;
            }
            match region {
                Region::Any => {
                    let idx = rng.gen_range(0..self.free.len());
                    Some(FrameId(self.free.swap_remove(idx)))
                }
                Region::Stacked => {
                    let pos = self.free.iter().position(|&f| f < self.stacked_frames)?;
                    Some(FrameId(self.free.swap_remove(pos)))
                }
                Region::OffChip => {
                    let pos = self.free.iter().position(|&f| f >= self.stacked_frames)?;
                    Some(FrameId(self.free.swap_remove(pos)))
                }
            }
        }

        fn select_victim(&mut self, rng: &mut SmallRng) -> FrameId {
            for _ in 0..5 {
                let idx = rng.gen_range(0..self.frames.len());
                if !self.frames[idx].referenced {
                    return FrameId(idx as u64);
                }
            }
            loop {
                let idx = self.clock_hand;
                self.clock_hand = (self.clock_hand + 1) % self.frames.len();
                if self.frames[idx].referenced {
                    self.frames[idx].referenced = false;
                } else {
                    return FrameId(idx as u64);
                }
            }
        }

        fn release(&mut self, frame: FrameId) {
            self.frames[frame.0 as usize] = Frame::default();
            self.free.push(frame.0);
        }

        fn place_into(&mut self, page: PageAddr, frame: FrameId) -> bool {
            let idx = frame.0 as usize;
            if self.frames[idx].resident.is_some() {
                return false;
            }
            if let Some(pos) = self.free.iter().position(|&f| f == frame.0) {
                self.free.swap_remove(pos);
            }
            self.frames[idx] = Frame {
                resident: Some(page),
                referenced: true,
                dirty: false,
            };
            true
        }
    }

    proptest::proptest! {
        /// The lazy pool is behavior-identical to the eager one over
        /// arbitrary operation sequences driven by the *same* RNG stream:
        /// identical frames granted, victims evicted, free counts, dirty
        /// bits and per-frame residency — the bit-identical-goldens
        /// requirement in miniature.
        #[test]
        fn lazy_pool_matches_eager_pool(
            seed in 0u64..1000,
            stacked in 1u64..12,
            off_chip in 1u64..36,
            ops in proptest::collection::vec(
                (0u8..6, 0u64..64, proptest::prelude::any::<bool>()),
                0..120,
            ),
        ) {
            let mut lazy = FrameAllocator::new(stacked, off_chip);
            let mut eager = EagerPool::new(stacked, off_chip);
            let mut lazy_rng = SmallRng::seed_from_u64(seed);
            let mut eager_rng = SmallRng::seed_from_u64(seed);
            let total = stacked + off_chip;
            for (op, n, flag) in ops {
                match op {
                    0..=2 => {
                        // take dominates: exercise free-pop, region scans
                        // and victim selection.
                        let region = match op {
                            0 => Region::Any,
                            1 => Region::Stacked,
                            _ => Region::OffChip,
                        };
                        let a = lazy.take(PageAddr::new(n), region, &mut lazy_rng);
                        let b = eager.take(PageAddr::new(n), region, &mut eager_rng);
                        proptest::prop_assert_eq!(a, b);
                    }
                    3 => {
                        let f = FrameId(n % total);
                        if lazy.resident(f).is_some() {
                            lazy.touch(f, flag);
                            let e = &mut eager.frames[f.0 as usize];
                            e.referenced = true;
                            e.dirty |= flag;
                        }
                    }
                    4 => {
                        let f = FrameId(n % total);
                        if lazy.resident(f).is_some() {
                            lazy.release(f);
                            eager.release(f);
                        }
                    }
                    _ => {
                        let f = FrameId(n % total);
                        proptest::prop_assert_eq!(
                            lazy.place_into(PageAddr::new(n + 1000), f),
                            eager.place_into(PageAddr::new(n + 1000), f)
                        );
                    }
                }
                proptest::prop_assert_eq!(lazy.free_frames(), eager.free.len());
            }
            for f in 0..total {
                let got = lazy.frames.get(f as usize);
                let want = eager.frames[f as usize];
                proptest::prop_assert_eq!(got, want, "frame {} diverged", f);
                proptest::prop_assert_eq!(lazy.is_dirty(FrameId(f)), want.dirty);
            }
            // The free lists hold the same values in the same order.
            let lazy_free: Vec<u64> = (0..lazy.free.len()).map(|i| lazy.free.value(i)).collect();
            proptest::prop_assert_eq!(lazy_free, eager.free);
        }
    }
}
