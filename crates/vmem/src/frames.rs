//! Physical frame pool with clock-plus-random-probe victim selection.

use cameo_types::{PageAddr, PhysPageAddr};
use rand::rngs::SmallRng;
use rand::Rng;

/// Index of a physical frame. Frames `0..stacked_frames` are in stacked
/// DRAM; the rest are off-chip.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FrameId(pub u64);

impl FrameId {
    /// The physical page address of this frame (identity mapping).
    #[inline]
    pub fn phys_page(self) -> PhysPageAddr {
        PhysPageAddr::new(self.0)
    }
}

/// Which device region a frame belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Region {
    /// Fast, stacked-DRAM frames (low physical addresses).
    Stacked,
    /// Commodity off-chip frames.
    OffChip,
    /// No preference: any frame.
    Any,
}

#[derive(Clone, Copy, Debug, Default)]
struct Frame {
    resident: Option<PageAddr>,
    referenced: bool,
    dirty: bool,
}

/// The frame pool: tracks residency, referenced and dirty bits, and selects
/// eviction victims the way the paper describes — probe five random frames
/// for a free one, then fall back to a clock sweep over referenced bits.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    frames: Vec<Frame>,
    stacked_frames: u64,
    free: Vec<u64>,
    clock_hand: usize,
}

/// Outcome of taking a frame: the frame plus the page that had to be evicted
/// from it (with its dirtiness), if any.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Took {
    /// The granted frame.
    pub frame: FrameId,
    /// Page displaced from the frame, and whether it was dirty.
    pub evicted: Option<(PageAddr, bool)>,
}

impl FrameAllocator {
    /// Creates a pool of `stacked + off_chip` frames, all free.
    ///
    /// # Panics
    ///
    /// Panics if the pool would be empty.
    pub fn new(stacked_frames: u64, off_chip_frames: u64) -> Self {
        let total = stacked_frames + off_chip_frames;
        assert!(total > 0, "frame pool must be non-empty");
        Self {
            frames: vec![Frame::default(); total as usize],
            stacked_frames,
            // Pop order: lowest index last so stacked frames are handed out
            // first when no region is requested — matching an OS that
            // prefers fast memory while it lasts.
            free: (0..total).rev().collect(),
            clock_hand: 0,
        }
    }

    /// Total frames in the pool.
    #[inline]
    pub fn total_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Frames in the stacked region.
    #[inline]
    pub fn stacked_frames(&self) -> u64 {
        self.stacked_frames
    }

    /// Number of currently free frames.
    #[inline]
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Region of a given frame.
    #[inline]
    pub fn region_of(&self, frame: FrameId) -> Region {
        if frame.0 < self.stacked_frames {
            Region::Stacked
        } else {
            Region::OffChip
        }
    }

    /// Page currently resident in `frame`.
    #[inline]
    pub fn resident(&self, frame: FrameId) -> Option<PageAddr> {
        self.frames[frame.0 as usize].resident
    }

    /// Marks a frame referenced (on access) and optionally dirty.
    pub fn touch(&mut self, frame: FrameId, write: bool) {
        let f = &mut self.frames[frame.0 as usize];
        f.referenced = true;
        f.dirty |= write;
    }

    /// Whether the page in `frame` has been written since it was loaded.
    #[inline]
    pub fn is_dirty(&self, frame: FrameId) -> bool {
        self.frames[frame.0 as usize].dirty
    }

    /// Takes a frame for `page`, preferring `region`, evicting a victim if
    /// the pool is full.
    ///
    /// Victim selection follows the paper: five random probes looking for an
    /// unreferenced frame, then a clock sweep that clears referenced bits
    /// until one is found.
    pub fn take(&mut self, page: PageAddr, region: Region, rng: &mut SmallRng) -> Took {
        let frame = self
            .take_free(region, rng)
            .unwrap_or_else(|| self.select_victim(rng));
        let slot = &mut self.frames[frame.0 as usize];
        let evicted = slot.resident.map(|p| (p, slot.dirty));
        *slot = Frame {
            resident: Some(page),
            referenced: true,
            dirty: false,
        };
        Took { frame, evicted }
    }

    /// Releases a frame back to the free pool (used when a page is migrated
    /// away rather than evicted).
    ///
    /// # Panics
    ///
    /// Panics if the frame is already free.
    pub fn release(&mut self, frame: FrameId) {
        let slot = &mut self.frames[frame.0 as usize];
        assert!(slot.resident.is_some(), "double free of frame {frame:?}");
        *slot = Frame::default();
        self.free.push(frame.0);
    }

    /// Atomically exchanges the pages resident in two frames, preserving
    /// their referenced/dirty bits. Used by TLM page migration.
    ///
    /// # Panics
    ///
    /// Panics if either frame is free.
    pub fn swap_frames(&mut self, a: FrameId, b: FrameId) {
        assert!(
            self.frames[a.0 as usize].resident.is_some()
                && self.frames[b.0 as usize].resident.is_some(),
            "swap requires both frames resident"
        );
        self.frames.swap(a.0 as usize, b.0 as usize);
    }

    /// Installs `page` into a specific free frame (used by oracle
    /// placement). Returns `false` if the frame is occupied.
    pub fn place_into(&mut self, page: PageAddr, frame: FrameId) -> bool {
        let idx = frame.0 as usize;
        if self.frames[idx].resident.is_some() {
            return false;
        }
        // Remove from the free list.
        if let Some(pos) = self.free.iter().position(|&f| f == frame.0) {
            self.free.swap_remove(pos);
        }
        self.frames[idx] = Frame {
            resident: Some(page),
            referenced: true,
            dirty: false,
        };
        true
    }

    /// Peeks at a free frame in `region` without taking it (used by
    /// migration policies that fill holes before swapping).
    pub fn find_free(&self, region: Region) -> Option<FrameId> {
        let matches = |&&f: &&u64| match region {
            Region::Any => true,
            Region::Stacked => f < self.stacked_frames,
            Region::OffChip => f >= self.stacked_frames,
        };
        self.free.iter().find(matches).map(|&f| FrameId(f))
    }

    fn take_free(&mut self, region: Region, rng: &mut SmallRng) -> Option<FrameId> {
        if self.free.is_empty() {
            return None;
        }
        match region {
            Region::Any => {
                // Random placement across the whole pool (TLM-Static's
                // locality-oblivious mapping).
                let idx = rng.gen_range(0..self.free.len());
                Some(FrameId(self.free.swap_remove(idx)))
            }
            Region::Stacked => {
                let pos = self.free.iter().position(|&f| f < self.stacked_frames)?;
                Some(FrameId(self.free.swap_remove(pos)))
            }
            Region::OffChip => {
                let pos = self.free.iter().position(|&f| f >= self.stacked_frames)?;
                Some(FrameId(self.free.swap_remove(pos)))
            }
        }
    }

    fn select_victim(&mut self, rng: &mut SmallRng) -> FrameId {
        // Five random probes for an unreferenced frame.
        for _ in 0..5 {
            let idx = rng.gen_range(0..self.frames.len());
            if !self.frames[idx].referenced {
                return FrameId(idx as u64);
            }
        }
        // Clock sweep: clear referenced bits until one stays clear.
        loop {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % self.frames.len();
            if self.frames[idx].referenced {
                self.frames[idx].referenced = false;
            } else {
                return FrameId(idx as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn fills_free_frames_first() {
        let mut fa = FrameAllocator::new(2, 2);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for p in 0..4u64 {
            let took = fa.take(PageAddr::new(p), Region::Any, &mut r);
            assert!(took.evicted.is_none());
            assert!(seen.insert(took.frame));
        }
        assert_eq!(fa.free_frames(), 0);
    }

    #[test]
    fn eviction_when_full() {
        let mut fa = FrameAllocator::new(1, 1);
        let mut r = rng();
        fa.take(PageAddr::new(0), Region::Any, &mut r);
        fa.take(PageAddr::new(1), Region::Any, &mut r);
        let took = fa.take(PageAddr::new(2), Region::Any, &mut r);
        let (victim, dirty) = took.evicted.expect("pool was full");
        assert!(victim == PageAddr::new(0) || victim == PageAddr::new(1));
        assert!(!dirty);
    }

    #[test]
    fn dirty_bit_travels_with_eviction() {
        let mut fa = FrameAllocator::new(1, 0);
        let mut r = rng();
        let took = fa.take(PageAddr::new(0), Region::Any, &mut r);
        fa.touch(took.frame, true);
        // Clock must evict page 0 (only frame); referenced gets cleared on
        // the first sweep, then it is chosen.
        let next = fa.take(PageAddr::new(1), Region::Any, &mut r);
        assert_eq!(next.evicted, Some((PageAddr::new(0), true)));
    }

    #[test]
    fn region_preference_honored() {
        let mut fa = FrameAllocator::new(2, 2);
        let mut r = rng();
        let s = fa.take(PageAddr::new(0), Region::Stacked, &mut r);
        assert_eq!(fa.region_of(s.frame), Region::Stacked);
        let o = fa.take(PageAddr::new(1), Region::OffChip, &mut r);
        assert_eq!(fa.region_of(o.frame), Region::OffChip);
    }

    #[test]
    fn clock_prefers_unreferenced() {
        let mut fa = FrameAllocator::new(0, 3);
        let mut r = rng();
        let frames: Vec<_> = (0..3u64)
            .map(|p| fa.take(PageAddr::new(p), Region::Any, &mut r).frame)
            .collect();
        // Touch all, then clear one by a full clock pass is implicit; instead
        // re-touch two and leave one cold after a sweep.
        for &f in &frames {
            fa.touch(f, false);
        }
        // All referenced: victim comes from clock after clearing; take twice
        // and ensure both evict something valid.
        for p in 10..12u64 {
            let took = fa.take(PageAddr::new(p), Region::Any, &mut r);
            assert!(took.evicted.is_some());
        }
    }

    #[test]
    fn swap_frames_exchanges_pages() {
        let mut fa = FrameAllocator::new(1, 1);
        let mut r = rng();
        let a = fa.take(PageAddr::new(10), Region::Stacked, &mut r).frame;
        let b = fa.take(PageAddr::new(20), Region::OffChip, &mut r).frame;
        fa.touch(a, true);
        fa.swap_frames(a, b);
        assert_eq!(fa.resident(a), Some(PageAddr::new(20)));
        assert_eq!(fa.resident(b), Some(PageAddr::new(10)));
        // Dirty bit moved with the page.
        assert!(fa.is_dirty(b));
        assert!(!fa.is_dirty(a));
    }

    #[test]
    fn release_and_reuse() {
        let mut fa = FrameAllocator::new(1, 0);
        let mut r = rng();
        let t = fa.take(PageAddr::new(0), Region::Any, &mut r);
        fa.release(t.frame);
        assert_eq!(fa.free_frames(), 1);
        let t2 = fa.take(PageAddr::new(1), Region::Any, &mut r);
        assert_eq!(t2.frame, t.frame);
        assert!(t2.evicted.is_none());
    }

    #[test]
    fn place_into_specific_frame() {
        let mut fa = FrameAllocator::new(2, 0);
        assert!(fa.place_into(PageAddr::new(5), FrameId(1)));
        assert!(!fa.place_into(PageAddr::new(6), FrameId(1)));
        assert_eq!(fa.resident(FrameId(1)), Some(PageAddr::new(5)));
        assert_eq!(fa.free_frames(), 1);
    }

    #[test]
    fn find_free_respects_regions() {
        let mut fa = FrameAllocator::new(1, 1);
        let mut r = rng();
        assert!(fa.find_free(Region::Stacked).is_some());
        assert!(fa.find_free(Region::OffChip).is_some());
        assert!(fa.find_free(Region::Any).is_some());
        // Fill the stacked frame: only off-chip remains.
        let s = fa.take(PageAddr::new(0), Region::Stacked, &mut r);
        assert_eq!(fa.region_of(s.frame), Region::Stacked);
        assert!(fa.find_free(Region::Stacked).is_none());
        let free = fa.find_free(Region::OffChip).expect("off-chip frame free");
        assert_eq!(fa.region_of(free), Region::OffChip);
        // Fill it too: nothing free anywhere.
        fa.take(PageAddr::new(1), Region::OffChip, &mut r);
        assert!(fa.find_free(Region::Any).is_none());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pool_rejected() {
        FrameAllocator::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_release_panics() {
        let mut fa = FrameAllocator::new(1, 0);
        let mut r = rng();
        let t = fa.take(PageAddr::new(0), Region::Any, &mut r);
        fa.release(t.frame);
        fa.release(t.frame);
    }
}
