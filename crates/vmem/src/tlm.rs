//! Two-Level Memory (TLM) page-placement policies (paper Sections II-B,
//! II-C and VI-D).
//!
//! All three dynamic policies operate on a [`Vmm`] whose frame pool is split
//! into a stacked and an off-chip region:
//!
//! * [`DynamicMigrator`] — **TLM-Dynamic**: on an access to an off-chip
//!   page, swap it with a victim page in stacked memory. A 4 KiB swap costs
//!   16 KiB of memory activity (both modules read and write a page), which
//!   is exactly the bandwidth bloat the paper attributes to
//!   coarse-granularity migration.
//! * [`FreqMigrator`] — **TLM-Freq**: per-page access counters, and an
//!   epoch-based rebalance that promotes the hottest pages into stacked
//!   frames (software overheads ignored, transfer bandwidth modeled, as in
//!   the paper).
//! * [`OracleProfile`] — **TLM-Oracle**: given profiled access counts,
//!   place the hottest pages in stacked memory at fault-in time and never
//!   migrate.

use std::collections::HashSet;

use cameo_types::{Cycle, DetHashMap, PageAddr, TraceEvent, TraceSink, PAGE_BYTES};

use crate::frames::{FrameId, Region};
use crate::vmm::Vmm;

/// Bandwidth cost of one page move, per device, in bytes.
///
/// A one-way move reads 4 KiB from the source device and writes 4 KiB to the
/// destination; a swap does both in each direction (the paper's "total
/// memory activity of 16 KB").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MigrationTraffic {
    /// Bytes read + written on the stacked device.
    pub stacked_bytes: u64,
    /// Bytes read + written on the off-chip device.
    pub off_chip_bytes: u64,
    /// Number of page moves performed (1 = fill, 2 = swap).
    pub pages_moved: u32,
}

impl MigrationTraffic {
    fn one_way() -> Self {
        Self {
            stacked_bytes: PAGE_BYTES as u64,
            off_chip_bytes: PAGE_BYTES as u64,
            pages_moved: 1,
        }
    }

    fn swap() -> Self {
        Self {
            stacked_bytes: 2 * PAGE_BYTES as u64,
            off_chip_bytes: 2 * PAGE_BYTES as u64,
            pages_moved: 2,
        }
    }

    /// Accumulates another migration's traffic.
    pub fn merge(&mut self, other: &MigrationTraffic) {
        self.stacked_bytes += other.stacked_bytes;
        self.off_chip_bytes += other.off_chip_bytes;
        self.pages_moved += other.pages_moved;
    }

    /// Zero traffic.
    pub fn zero() -> Self {
        Self {
            stacked_bytes: 0,
            off_chip_bytes: 0,
            pages_moved: 0,
        }
    }
}

/// TLM-Dynamic: swap-on-touch page migration.
///
/// # Examples
///
/// ```
/// use cameo_vmem::tlm::DynamicMigrator;
/// use cameo_vmem::{Placement, Vmm, VmmConfig};
/// use cameo_types::{ByteSize, PageAddr};
///
/// let mut vmm = Vmm::new(VmmConfig {
///     stacked: ByteSize::from_pages(1),
///     off_chip: ByteSize::from_pages(3),
///     placement: Placement::OffChipFirst,
///     seed: 5,
/// });
/// let mut dynamic = DynamicMigrator::new();
/// let out = vmm.translate(PageAddr::new(0), false);
/// let migration = dynamic.on_access(&mut vmm, PageAddr::new(0), out.frame);
/// assert!(migration.is_some()); // page started off-chip, got promoted
/// ```
#[derive(Clone, Debug, Default)]
pub struct DynamicMigrator {
    hand: u64,
}

impl DynamicMigrator {
    /// Creates the migrator with its victim hand at frame 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called after each translated access; if the page is off-chip it is
    /// promoted into stacked memory, swapping with a victim when stacked is
    /// full. Returns the migration traffic, or `None` if the page was
    /// already in stacked memory.
    pub fn on_access(
        &mut self,
        vmm: &mut Vmm,
        page: PageAddr,
        frame: FrameId,
    ) -> Option<MigrationTraffic> {
        if vmm.frames().region_of(frame) == Region::Stacked {
            return None;
        }
        if let Some(free) = vmm.frames().find_free(Region::Stacked) {
            let moved = vmm.move_resident(page, free);
            debug_assert!(moved, "resident page must move into a free frame");
            #[cfg(feature = "deep-audit")]
            vmm.assert_consistent();
            return Some(MigrationTraffic::one_way());
        }
        let stacked = vmm.frames().stacked_frames();
        debug_assert!(stacked > 0, "TLM-Dynamic requires stacked frames");
        // Round-robin victim over stacked frames; resident is guaranteed
        // because there were no free stacked frames.
        let victim = FrameId(self.hand % stacked);
        self.hand += 1;
        vmm.swap_resident(victim, frame);
        #[cfg(feature = "deep-audit")]
        vmm.assert_consistent();
        Some(MigrationTraffic::swap())
    }

    /// Like [`DynamicMigrator::on_access`], but with tracing armed every
    /// page move emits a [`TraceEvent::PageMigration`] into `sink`.
    pub fn on_access_traced<S: TraceSink>(
        &mut self,
        vmm: &mut Vmm,
        page: PageAddr,
        frame: FrameId,
        now: Cycle,
        sink: &mut S,
    ) -> Option<MigrationTraffic> {
        let traffic = self.on_access(vmm, page, frame);
        if S::ENABLED {
            if let Some(t) = &traffic {
                if t.pages_moved > 0 {
                    sink.emit(
                        now,
                        TraceEvent::PageMigration {
                            pages: t.pages_moved,
                        },
                    );
                }
            }
        }
        traffic
    }
}

/// Report of one TLM-Freq epoch rebalance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RebalanceReport {
    /// Total migration traffic incurred this epoch.
    pub traffic: MigrationTraffic,
    /// Pages promoted into stacked memory.
    pub promotions: u64,
}

/// TLM-Freq: epoch-based, frequency-driven page placement (paper
/// Section VI-D, after Loh et al.'s hardware-assisted scheme).
///
/// Two dampers keep the policy from thrashing: pages need a minimum access
/// count in the epoch to be promotion candidates (ranking noise below that
/// is not evidence of heat), and promotions per epoch are capped at a
/// fraction of the stacked frames (an OS would bound migration batches).
#[derive(Clone, Debug)]
pub struct FreqMigrator {
    epoch_accesses: u64,
    seen: u64,
    // Updated on every access in the Freq organization — deterministic
    // fast hasher, and rebalance sorts with a full (count, page) order so
    // iteration order never reaches simulated behaviour.
    counts: DetHashMap<PageAddr, u64>,
    min_count: u64,
    promotion_cap_divisor: u64,
}

impl FreqMigrator {
    /// Creates a migrator that rebalances every `epoch_accesses` accesses,
    /// promoting pages with at least 2 epoch accesses, at most
    /// `stacked/8` pages per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_accesses` is zero.
    pub fn new(epoch_accesses: u64) -> Self {
        assert!(epoch_accesses > 0, "epoch must be non-empty");
        Self {
            epoch_accesses,
            seen: 0,
            counts: DetHashMap::default(),
            min_count: 2,
            promotion_cap_divisor: 8,
        }
    }

    /// Records one access and, at an epoch boundary, rebalances: the
    /// hottest pages are promoted into stacked frames by swapping with the
    /// coldest stacked residents.
    pub fn on_access(&mut self, vmm: &mut Vmm, page: PageAddr) -> Option<RebalanceReport> {
        *self.counts.entry(page).or_insert(0) += 1;
        self.seen += 1;
        if self.seen < self.epoch_accesses {
            return None;
        }
        self.seen = 0;
        let report = self.rebalance(vmm);
        // Exponential decay keeps hotness responsive across epochs.
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
        Some(report)
    }

    /// Like [`FreqMigrator::on_access`], but with tracing armed an epoch
    /// rebalance that moved pages emits a [`TraceEvent::PageMigration`]
    /// into `sink`.
    pub fn on_access_traced<S: TraceSink>(
        &mut self,
        vmm: &mut Vmm,
        page: PageAddr,
        now: Cycle,
        sink: &mut S,
    ) -> Option<RebalanceReport> {
        let report = self.on_access(vmm, page);
        if S::ENABLED {
            if let Some(r) = &report {
                if r.traffic.pages_moved > 0 {
                    sink.emit(
                        now,
                        TraceEvent::PageMigration {
                            pages: r.traffic.pages_moved,
                        },
                    );
                }
            }
        }
        report
    }

    /// Promotes the hottest pages into stacked memory immediately.
    pub fn rebalance(&mut self, vmm: &mut Vmm) -> RebalanceReport {
        let stacked_frames = vmm.frames().stacked_frames();
        let mut hottest: Vec<(PageAddr, u64)> = self
            .counts
            .iter()
            .filter(|(p, c)| **c >= self.min_count && vmm.frame_of(**p).is_some())
            .map(|(p, c)| (*p, *c))
            .collect();
        hottest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hottest.truncate(stacked_frames as usize);
        let hot_set: HashSet<PageAddr> = hottest.iter().map(|(p, _)| *p).collect();
        let promotion_cap = (stacked_frames / self.promotion_cap_divisor).max(1) as usize;

        let mut traffic = MigrationTraffic::zero();
        let mut promotions = 0;
        // Cold stacked residents are swap candidates.
        let mut cold_victims: Vec<FrameId> = (0..stacked_frames)
            .map(FrameId)
            .filter(|f| {
                vmm.frames()
                    .resident(*f)
                    .is_none_or(|p| !hot_set.contains(&p))
            })
            .collect();

        for (page, _) in hottest {
            if promotions as usize >= promotion_cap {
                break;
            }
            let Some(frame) = vmm.frame_of(page) else {
                continue;
            };
            if vmm.frames().region_of(frame) == Region::Stacked {
                continue;
            }
            let Some(victim) = cold_victims.pop() else {
                break;
            };
            if vmm.frames().resident(victim).is_some() {
                vmm.swap_resident(victim, frame);
                traffic.merge(&MigrationTraffic::swap());
            } else {
                let moved = vmm.move_resident(page, victim);
                debug_assert!(moved, "cold victim frame was free");
                traffic.merge(&MigrationTraffic::one_way());
            }
            promotions += 1;
        }
        #[cfg(feature = "deep-audit")]
        vmm.assert_consistent();
        RebalanceReport {
            traffic,
            promotions,
        }
    }
}

/// TLM-Oracle: profiled page placement with no runtime migration.
///
/// Build it from a first-pass profile of per-page access counts; at fault-in
/// time, [`OracleProfile::region_for`] steers hot pages into stacked frames.
#[derive(Clone, Debug)]
pub struct OracleProfile {
    hot: HashSet<PageAddr>,
}

impl OracleProfile {
    /// Selects the `stacked_pages` most-accessed pages as the hot set.
    pub fn from_counts<I>(counts: I, stacked_pages: u64) -> Self
    where
        I: IntoIterator<Item = (PageAddr, u64)>,
    {
        let mut ranked: Vec<(PageAddr, u64)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(stacked_pages as usize);
        Self {
            hot: ranked.into_iter().map(|(p, _)| p).collect(),
        }
    }

    /// Number of pages in the hot set.
    pub fn hot_pages(&self) -> usize {
        self.hot.len()
    }

    /// Region a page should be faulted into.
    pub fn region_for(&self, page: PageAddr) -> Region {
        if self.hot.contains(&page) {
            Region::Stacked
        } else {
            Region::OffChip
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmm::{Placement, VmmConfig};
    use cameo_types::ByteSize;

    fn vmm(stacked: u64, off: u64, placement: Placement) -> Vmm {
        Vmm::new(VmmConfig {
            stacked: ByteSize::from_pages(stacked),
            off_chip: ByteSize::from_pages(off),
            placement,
            seed: 11,
        })
    }

    #[test]
    fn dynamic_promotes_into_free_stacked() {
        let mut v = vmm(2, 2, Placement::OffChipFirst);
        let mut d = DynamicMigrator::new();
        let out = v.translate(PageAddr::new(0), false);
        assert_eq!(v.frames().region_of(out.frame), Region::OffChip);
        let t = d.on_access(&mut v, PageAddr::new(0), out.frame).unwrap();
        assert_eq!(t.pages_moved, 1);
        let f = v.frame_of(PageAddr::new(0)).unwrap();
        assert_eq!(v.frames().region_of(f), Region::Stacked);
    }

    #[test]
    fn dynamic_swaps_when_stacked_full() {
        let mut v = vmm(1, 2, Placement::OffChipFirst);
        let mut d = DynamicMigrator::new();
        // Fill stacked with page 0.
        let a = v.translate(PageAddr::new(0), false);
        d.on_access(&mut v, PageAddr::new(0), a.frame);
        // Touch page 1 off-chip: must swap with page 0.
        let b = v.translate(PageAddr::new(1), false);
        let t = d.on_access(&mut v, PageAddr::new(1), b.frame).unwrap();
        assert_eq!(t.pages_moved, 2);
        assert_eq!(t.stacked_bytes + t.off_chip_bytes, 16 * 1024);
        let f1 = v.frame_of(PageAddr::new(1)).unwrap();
        assert_eq!(v.frames().region_of(f1), Region::Stacked);
        let f0 = v.frame_of(PageAddr::new(0)).unwrap();
        assert_eq!(v.frames().region_of(f0), Region::OffChip);
    }

    #[test]
    fn dynamic_noop_for_stacked_resident() {
        let mut v = vmm(2, 2, Placement::PreferStacked);
        let mut d = DynamicMigrator::new();
        let out = v.translate(PageAddr::new(0), false);
        assert!(d.on_access(&mut v, PageAddr::new(0), out.frame).is_none());
    }

    #[test]
    fn freq_promotes_hottest() {
        let mut v = vmm(1, 3, Placement::OffChipFirst);
        let mut f = FreqMigrator::new(10);
        // Pages 0,1,2 resident off-chip; page 2 is hottest.
        for p in 0..3u64 {
            v.translate(PageAddr::new(p), false);
        }
        let mut report = None;
        for i in 0..10 {
            let p = if i < 6 { 2 } else { i % 2 };
            v.translate(PageAddr::new(p), false);
            report = f.on_access(&mut v, PageAddr::new(p)).or(report);
        }
        let report = report.expect("epoch boundary reached");
        assert_eq!(report.promotions, 1);
        let frame = v.frame_of(PageAddr::new(2)).unwrap();
        assert_eq!(v.frames().region_of(frame), Region::Stacked);
    }

    #[test]
    fn freq_respects_stacked_capacity() {
        let mut v = vmm(2, 4, Placement::OffChipFirst);
        let mut f = FreqMigrator::new(1_000_000);
        for p in 0..4u64 {
            v.translate(PageAddr::new(p), false);
            for _ in 0..(p + 1) * 3 {
                *f.counts.entry(PageAddr::new(p)).or_insert(0) += 1;
            }
        }
        // The per-epoch cap is stacked/8 (at least 1): two rebalances move
        // both hot pages in, hottest first.
        let first = f.rebalance(&mut v);
        assert_eq!(first.promotions, 1);
        let second = f.rebalance(&mut v);
        assert_eq!(second.promotions, 1);
        for hot in [3u64, 2] {
            let fr = v.frame_of(PageAddr::new(hot)).unwrap();
            assert_eq!(v.frames().region_of(fr), Region::Stacked, "page {hot}");
        }
        // A third rebalance has nothing left to promote.
        assert_eq!(f.rebalance(&mut v).promotions, 0);
    }

    #[test]
    fn oracle_places_hot_pages_fast() {
        let profile = OracleProfile::from_counts(
            vec![
                (PageAddr::new(0), 100),
                (PageAddr::new(1), 5),
                (PageAddr::new(2), 50),
            ],
            1,
        );
        assert_eq!(profile.hot_pages(), 1);
        assert_eq!(profile.region_for(PageAddr::new(0)), Region::Stacked);
        assert_eq!(profile.region_for(PageAddr::new(2)), Region::OffChip);
        let mut v = vmm(1, 2, Placement::OffChipFirst);
        let out = v.translate_in(
            PageAddr::new(0),
            false,
            profile.region_for(PageAddr::new(0)),
        );
        assert_eq!(v.frames().region_of(out.frame), Region::Stacked);
    }

    #[test]
    fn traced_migrations_emit_page_counts() {
        use cameo_types::VecSink;
        let mut v = vmm(1, 2, Placement::OffChipFirst);
        let mut d = DynamicMigrator::new();
        let mut sink = VecSink::default();
        // Promotion into a free stacked frame: one page moved.
        let a = v.translate(PageAddr::new(0), false);
        d.on_access_traced(&mut v, PageAddr::new(0), a.frame, Cycle::new(3), &mut sink);
        // Swap with the resident victim: two pages moved.
        let b = v.translate(PageAddr::new(1), false);
        d.on_access_traced(&mut v, PageAddr::new(1), b.frame, Cycle::new(7), &mut sink);
        // Stacked-resident access: no event.
        let f = v.frame_of(PageAddr::new(1)).unwrap();
        d.on_access_traced(&mut v, PageAddr::new(1), f, Cycle::new(9), &mut sink);
        assert_eq!(
            sink.events,
            vec![
                (Cycle::new(3), TraceEvent::PageMigration { pages: 1 }),
                (Cycle::new(7), TraceEvent::PageMigration { pages: 2 }),
            ]
        );
    }

    #[test]
    fn traffic_merge() {
        let mut t = MigrationTraffic::zero();
        t.merge(&MigrationTraffic::one_way());
        t.merge(&MigrationTraffic::swap());
        assert_eq!(t.pages_moved, 3);
        assert_eq!(t.stacked_bytes, 3 * 4096);
        assert_eq!(t.off_chip_bytes, 3 * 4096);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_epoch_rejected() {
        FreqMigrator::new(0);
    }
}
