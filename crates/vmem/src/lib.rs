//! OS virtual-memory substrate for the CAMEO reproduction.
//!
//! The paper's evaluation depends on a modeled operating system in three
//! places:
//!
//! 1. **Demand paging** — workload footprints can exceed visible memory
//!    (Capacity-Limited workloads); each fault costs 32 µs (100 K cycles at
//!    3.2 GHz) of SSD latency and moves 4 KiB pages to/from storage. The
//!    victim page is chosen with a clock algorithm after probing five
//!    random frames for a free one (Section III-A).
//! 2. **Two-Level Memory (TLM)** — when stacked DRAM is part of the OS
//!    address space, physical frames split into a fast (stacked) and a slow
//!    (off-chip) region, and the [`tlm`] policies decide which pages live
//!    where: `Static` (random), `Dynamic` (swap-on-touch),
//!    `Freq` (epoch-based hottest-page promotion), `Oracle` (profiled).
//! 3. **Capacity accounting** — baseline and Cache configurations only see
//!    off-chip capacity; TLM/CAMEO see the sum; the idealized DoubleUse
//!    sees the sum *and* keeps the cache.
//!
//! # Examples
//!
//! ```
//! use cameo_vmem::{Region, Vmm, VmmConfig};
//! use cameo_types::{ByteSize, PageAddr};
//!
//! let mut vmm = Vmm::new(VmmConfig {
//!     stacked: ByteSize::from_pages(0),
//!     off_chip: ByteSize::from_pages(16),
//!     placement: cameo_vmem::Placement::Random,
//!     seed: 7,
//! });
//! let t = vmm.translate(PageAddr::new(3), false);
//! assert!(t.fault.is_some()); // first touch always faults
//! let again = vmm.translate(PageAddr::new(3), false);
//! assert!(again.fault.is_none());
//! assert_eq!(t.phys, again.phys);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frames;
pub mod tlm;
mod vmm;

pub use frames::{FrameAllocator, FrameId, Region};
pub use vmm::{FaultInfo, Placement, TranslateOutcome, Vmm, VmmConfig, VmmStats};

/// Page-fault service latency from the paper: 32 µs on an SSD at 3.2 GHz.
pub const PAGE_FAULT_CYCLES: u64 = 100_000;
