//! Property-based tests for the virtual-memory substrate.

use cameo_types::{ByteSize, PageAddr};
use cameo_vmem::tlm::DynamicMigrator;
use cameo_vmem::{Placement, Region, Vmm, VmmConfig};
use proptest::prelude::*;

fn vmm(stacked: u64, off: u64, seed: u64) -> Vmm {
    Vmm::new(VmmConfig {
        stacked: ByteSize::from_pages(stacked),
        off_chip: ByteSize::from_pages(off),
        placement: Placement::Random,
        seed,
    })
}

proptest! {
    /// Residency never exceeds physical capacity, and a translated page is
    /// always resident immediately afterwards.
    #[test]
    fn residency_bounded(
        (stacked, off) in (0u64..4, 1u64..8),
        pages in prop::collection::vec((0u64..64, any::<bool>()), 1..300),
        seed in 0u64..1000,
    ) {
        let mut v = vmm(stacked, off, seed);
        let capacity = (stacked + off) as usize;
        for &(p, w) in &pages {
            let out = v.translate(PageAddr::new(p), w);
            prop_assert!(v.resident_pages() <= capacity);
            prop_assert_eq!(v.frame_of(PageAddr::new(p)), Some(out.frame));
        }
    }

    /// Translation is stable: absent an intervening eviction of that page,
    /// repeated translations return the same frame, and faults only happen
    /// on non-resident pages.
    #[test]
    fn translation_stable(
        pages in prop::collection::vec(0u64..16, 1..200),
        seed in 0u64..1000,
    ) {
        // Memory big enough that nothing is ever evicted.
        let mut v = vmm(8, 8, seed);
        let mut first: std::collections::HashMap<u64, _> = Default::default();
        for &p in &pages {
            let out = v.translate(PageAddr::new(p), false);
            match first.entry(p) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    prop_assert!(out.fault.is_some());
                    e.insert(out.frame);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    prop_assert!(out.fault.is_none());
                    prop_assert_eq!(*e.get(), out.frame);
                }
            }
        }
        prop_assert_eq!(v.stats().faults, first.len() as u64);
    }

    /// Under TLM-Dynamic, the touched page always ends in stacked memory,
    /// and the page-table/frame-pool bijection is preserved.
    #[test]
    fn dynamic_migration_invariants(
        pages in prop::collection::vec(0u64..32, 1..200),
        seed in 0u64..1000,
    ) {
        let mut v = vmm(4, 12, seed);
        let mut d = DynamicMigrator::new();
        for &p in &pages {
            let page = PageAddr::new(p);
            let out = v.translate(page, false);
            d.on_access(&mut v, page, out.frame);
            let f = v.frame_of(page).expect("touched page resident");
            prop_assert_eq!(v.frames().region_of(f), Region::Stacked);
            // Bijection: every resident page's frame maps back to it.
            for q in 0..32u64 {
                if let Some(fq) = v.frame_of(PageAddr::new(q)) {
                    prop_assert_eq!(v.frames().resident(fq), Some(PageAddr::new(q)));
                }
            }
        }
    }

    /// Storage byte counters are exact functions of fault/writeback counts.
    #[test]
    fn storage_accounting(
        pages in prop::collection::vec((0u64..64, any::<bool>()), 1..300),
        seed in 0u64..1000,
    ) {
        let mut v = vmm(1, 3, seed);
        for &(p, w) in &pages {
            v.translate(PageAddr::new(p), w);
        }
        let s = v.stats();
        prop_assert_eq!(s.bytes_from_storage, s.faults * 4096);
        prop_assert_eq!(s.bytes_to_storage, s.dirty_writebacks * 4096);
        prop_assert!(s.dirty_writebacks <= s.faults);
    }
}

/// With `deep-audit`, both migrators re-check page-table ↔ frame-pool
/// consistency after every move; this suite also audits explicitly at the
/// end of arbitrary migration traffic.
#[cfg(feature = "deep-audit")]
mod deep_audit {
    use super::*;
    use cameo_vmem::tlm::FreqMigrator;

    proptest! {
        /// TLM-Dynamic under arbitrary traffic keeps the page table
        /// consistent with the frame allocator.
        #[test]
        fn dynamic_migrator_audits_clean(
            pages in prop::collection::vec(0u64..32, 1..200),
            seed in 0u64..1000,
        ) {
            let mut v = vmm(4, 12, seed);
            let mut d = DynamicMigrator::new();
            for &p in &pages {
                let page = PageAddr::new(p);
                let out = v.translate(page, false);
                d.on_access(&mut v, page, out.frame);
            }
            prop_assert!(v.audit_page_table().is_ok());
        }

        /// TLM-Freq epoch rebalances keep the page table consistent.
        #[test]
        fn freq_migrator_audits_clean(
            pages in prop::collection::vec(0u64..48, 1..300),
            epoch in 8u64..64,
            seed in 0u64..1000,
        ) {
            let mut v = vmm(4, 60, seed);
            let mut m = FreqMigrator::new(epoch);
            for &p in &pages {
                let page = PageAddr::new(p);
                v.translate(page, false);
                m.on_access(&mut v, page);
            }
            m.rebalance(&mut v);
            prop_assert!(v.audit_page_table().is_ok());
        }
    }
}
