//! Device timing and geometry configuration (paper Table I).

use cameo_types::ByteSize;

/// DRAM timing parameters expressed in *bus* cycles, plus the CPU-to-bus
/// clock ratio used to convert them into CPU cycles.
///
/// Both devices in the paper use 9-9-9-36 (tCAS-tRCD-tRP-tRAS) bus-cycle
/// timing; they differ in bus frequency, so the same numbers translate to
/// very different CPU-cycle latencies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DramTimings {
    /// Column access strobe latency (bus cycles).
    pub t_cas: u64,
    /// Row-to-column delay (bus cycles).
    pub t_rcd: u64,
    /// Row precharge time (bus cycles).
    pub t_rp: u64,
    /// Row active time (bus cycles).
    pub t_ras: u64,
    /// CPU cycles per bus cycle (3.2 GHz CPU / bus frequency).
    pub cpu_per_bus: u64,
}

impl DramTimings {
    /// The paper's 9-9-9-36 timing at a given CPU:bus clock ratio.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_per_bus` is zero.
    pub fn ddr_9_9_9_36(cpu_per_bus: u64) -> Self {
        assert!(cpu_per_bus > 0, "clock ratio must be non-zero");
        Self {
            t_cas: 9,
            t_rcd: 9,
            t_rp: 9,
            t_ras: 36,
            cpu_per_bus,
        }
    }

    /// CAS latency in CPU cycles.
    #[inline]
    pub fn cas_cpu(&self) -> u64 {
        self.t_cas * self.cpu_per_bus
    }

    /// RCD latency in CPU cycles.
    #[inline]
    pub fn rcd_cpu(&self) -> u64 {
        self.t_rcd * self.cpu_per_bus
    }

    /// Precharge latency in CPU cycles.
    #[inline]
    pub fn rp_cpu(&self) -> u64 {
        self.t_rp * self.cpu_per_bus
    }

    /// Row-active window in CPU cycles.
    #[inline]
    pub fn ras_cpu(&self) -> u64 {
        self.t_ras * self.cpu_per_bus
    }
}

/// Row-buffer management policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RowPolicy {
    /// Leave the accessed row open (the paper's implicit policy, and the
    /// right one for the co-located LLT's row layout): later accesses to
    /// the same row hit, accesses to other rows pay a conflict.
    #[default]
    OpenPage,
    /// Auto-precharge after every access: every access pays tRCD + tCAS
    /// but none pays a conflict. Useful as an ablation of the row-locality
    /// assumption.
    ClosedPage,
}

/// Refresh parameters (all-bank refresh), in CPU cycles.
///
/// The paper does not model refresh; it is available here as a fidelity
/// knob, disabled by default so the calibrated results are unaffected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RefreshParams {
    /// Average interval between refresh commands (tREFI).
    pub t_refi_cpu: u64,
    /// Duration each refresh blocks the device (tRFC).
    pub t_rfc_cpu: u64,
}

impl RefreshParams {
    /// DDR3-class refresh at a 3.2 GHz CPU clock: tREFI 7.8 µs, tRFC 350 ns.
    pub fn ddr3() -> Self {
        Self {
            t_refi_cpu: 24_960,
            t_rfc_cpu: 1_120,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if tRFC is zero or not smaller than tREFI.
    pub fn validate(&self) {
        assert!(self.t_rfc_cpu > 0, "tRFC must be positive");
        assert!(
            self.t_rfc_cpu < self.t_refi_cpu,
            "tRFC must be smaller than tREFI"
        );
    }
}

/// Tiered-latency (TL-DRAM, Lee et al., HPCA 2013) segment parameters.
///
/// Each bank's rows are split into a small *near* segment close to the
/// sense amplifiers (shorter bitlines, faster tRCD/tRP/tRAS) and a large
/// *far* segment behind the isolation transistor. Rows
/// `0..near_rows_per_bank` of every bank sit in the near segment by
/// default; [`crate::Dram::promote_row_to_near`] is the placement hook
/// that moves a hot far row into the near segment's reserved window.
///
/// Setting `near == far == DramConfig::timings` makes the tiered device
/// bit-identical to the flat one (pinned by the `tl_dram_properties`
/// suite), so the model composes with every organization at zero risk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlDramParams {
    /// Rows per bank that sit in the near segment by default.
    pub near_rows_per_bank: u64,
    /// Timings for near-segment rows.
    pub near: DramTimings,
    /// Timings for far-segment rows.
    pub far: DramTimings,
}

impl TlDramParams {
    /// TL-DRAM paper-flavored segment timings at a given CPU:bus clock
    /// ratio: the near segment trims tRCD/tRP/tRAS (short bitlines), the
    /// far segment pays a small penalty for the isolation transistor.
    /// tCAS is unchanged — column access does not cross the bitline.
    pub fn paper(cpu_per_bus: u64, near_rows_per_bank: u64) -> Self {
        assert!(cpu_per_bus > 0, "clock ratio must be non-zero");
        Self {
            near_rows_per_bank,
            near: DramTimings {
                t_cas: 9,
                t_rcd: 5,
                t_rp: 6,
                t_ras: 24,
                cpu_per_bus,
            },
            far: DramTimings {
                t_cas: 9,
                t_rcd: 10,
                t_rp: 10,
                t_ras: 39,
                cpu_per_bus,
            },
        }
    }

    /// Degenerate tiering where both segments use `timings`: structurally
    /// tiered but timing-identical to a flat device. Useful to prove the
    /// tiered path is a refinement, not a fork.
    pub fn uniform(timings: DramTimings, near_rows_per_bank: u64) -> Self {
        Self {
            near_rows_per_bank,
            near: timings,
            far: timings,
        }
    }
}

/// Full geometry + timing description of one DRAM device.
///
/// Constructed via [`DramConfig::stacked`] / [`DramConfig::off_chip`] for the
/// paper's Table I devices, or field-by-field for ablations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DramConfig {
    /// Total device capacity.
    pub capacity: ByteSize,
    /// Number of independent channels (each with its own data bus).
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Bytes transferred per data-bus beat (bus width / 8).
    pub bytes_per_beat: u32,
    /// Row-buffer (DRAM page) size per bank.
    pub row_bytes: u32,
    /// Timing parameters.
    pub timings: DramTimings,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// Optional all-bank refresh; `None` (the default) matches the paper.
    pub refresh: Option<RefreshParams>,
    /// Optional tiered-latency segmentation; `None` (the default) is the
    /// paper's flat device. When set, `timings` remains the bus clock /
    /// burst reference and per-row command latencies come from the
    /// segment the row sits in.
    pub tl_dram: Option<TlDramParams>,
}

impl DramConfig {
    /// The paper's stacked-DRAM device: 16 channels, 16 banks/channel,
    /// 128-bit bus at 1.6 GHz (2 CPU cycles per bus cycle at 3.2 GHz),
    /// 2 KiB row buffer.
    pub fn stacked(capacity: ByteSize) -> Self {
        Self {
            capacity,
            channels: 16,
            banks_per_channel: 16,
            bytes_per_beat: 16,
            row_bytes: 2048,
            timings: DramTimings::ddr_9_9_9_36(2),
            row_policy: RowPolicy::OpenPage,
            refresh: None,
            tl_dram: None,
        }
    }

    /// The stacked device with TL-DRAM paper-flavored tiering: 1/16 of
    /// each bank's rows form the near segment (the TL-DRAM paper's
    /// 32-of-512 proportion), remaining geometry identical to
    /// [`DramConfig::stacked`].
    pub fn stacked_tiered(capacity: ByteSize) -> Self {
        let mut config = Self::stacked(capacity);
        let rows_per_bank =
            capacity.bytes() / u64::from(config.row_bytes) / u64::from(config.total_banks());
        config.tl_dram = Some(TlDramParams::paper(
            config.timings.cpu_per_bus,
            (rows_per_bank / 16).max(1),
        ));
        config
    }

    /// The paper's off-chip DDR device: 8 channels, 8 banks/channel,
    /// 64-bit bus at 800 MHz (4 CPU cycles per bus cycle), 2 KiB row buffer.
    pub fn off_chip(capacity: ByteSize) -> Self {
        Self {
            capacity,
            channels: 8,
            banks_per_channel: 8,
            bytes_per_beat: 8,
            row_bytes: 2048,
            timings: DramTimings::ddr_9_9_9_36(4),
            row_policy: RowPolicy::OpenPage,
            refresh: None,
            tl_dram: None,
        }
    }

    /// Total banks across all channels.
    #[inline]
    pub fn total_banks(&self) -> u32 {
        self.channels * self.banks_per_channel
    }

    /// Cache lines per row buffer.
    #[inline]
    pub fn lines_per_row(&self) -> u32 {
        self.row_bytes / cameo_types::LINE_BYTES as u32
    }

    /// Data-bus beats needed to move `bytes` (rounded up). The device is
    /// double-data-rate: two beats complete per bus cycle.
    #[inline]
    pub fn beats_for(&self, bytes: u32) -> u32 {
        bytes.div_ceil(self.bytes_per_beat)
    }

    /// CPU cycles the channel data bus is occupied transferring `bytes`.
    #[inline]
    pub fn burst_cpu_cycles(&self, bytes: u32) -> u64 {
        let bus_cycles = u64::from(self.beats_for(bytes).div_ceil(2));
        bus_cycles * self.timings.cpu_per_bus
    }

    /// Peak bandwidth in bytes per CPU cycle, across all channels.
    ///
    /// Useful to sanity-check the ~8× stacked-vs-off-chip bandwidth ratio
    /// from the paper's Figure 3 discussion.
    pub fn peak_bytes_per_cpu_cycle(&self) -> f64 {
        // 2 beats per bus cycle (DDR), one bus cycle = cpu_per_bus CPU cycles.
        let per_channel = 2.0 * f64::from(self.bytes_per_beat) / self.timings.cpu_per_bus as f64;
        per_channel * f64::from(self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_clock_ratios() {
        let s = DramConfig::stacked(ByteSize::from_gib(4));
        let o = DramConfig::off_chip(ByteSize::from_gib(12));
        // 3.2 GHz CPU over 1.6 GHz / 0.8 GHz buses.
        assert_eq!(s.timings.cpu_per_bus, 2);
        assert_eq!(o.timings.cpu_per_bus, 4);
        // CAS in CPU cycles: stacked 18, off-chip 36 (half the latency).
        assert_eq!(s.timings.cas_cpu(), 18);
        assert_eq!(o.timings.cas_cpu(), 36);
    }

    #[test]
    fn stacked_has_8x_bandwidth() {
        let s = DramConfig::stacked(ByteSize::from_gib(4));
        let o = DramConfig::off_chip(ByteSize::from_gib(12));
        let ratio = s.peak_bytes_per_cpu_cycle() / o.peak_bytes_per_cpu_cycle();
        assert!((ratio - 8.0).abs() < 1e-9, "ratio was {ratio}");
    }

    #[test]
    fn burst_lengths_match_paper() {
        let s = DramConfig::stacked(ByteSize::from_gib(4));
        // A 64 B line is 4 beats on the 16 B stacked bus.
        assert_eq!(s.beats_for(64), 4);
        // The 66 B LEAD is fetched as a burst of five (80 bytes), Section IV-D.
        assert_eq!(s.beats_for(66), 5);
        let o = DramConfig::off_chip(ByteSize::from_gib(12));
        assert_eq!(o.beats_for(64), 8);
    }

    #[test]
    fn burst_cycles() {
        let s = DramConfig::stacked(ByteSize::from_gib(4));
        // 4 beats = 2 bus cycles = 4 CPU cycles.
        assert_eq!(s.burst_cpu_cycles(64), 4);
        // 5 beats = 3 bus cycles (rounded up) = 6 CPU cycles.
        assert_eq!(s.burst_cpu_cycles(66), 6);
        let o = DramConfig::off_chip(ByteSize::from_gib(12));
        // 8 beats = 4 bus cycles = 16 CPU cycles.
        assert_eq!(o.burst_cpu_cycles(64), 16);
    }

    #[test]
    fn geometry_helpers() {
        let s = DramConfig::stacked(ByteSize::from_gib(4));
        assert_eq!(s.total_banks(), 256);
        assert_eq!(s.lines_per_row(), 32);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_ratio_rejected() {
        DramTimings::ddr_9_9_9_36(0);
    }
}
