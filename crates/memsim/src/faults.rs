//! Seeded, deterministic fault injection for the DRAM device model.
//!
//! [`FaultyDevice`] wraps [`Dram`] with the same access API and attaches
//! *faults* to data-carrying reads: transient single-bit flips in the
//! returned payload (meaningful for LLT/LEAD metadata — data lines are
//! assumed to carry their own in-DRAM ECC), dropped responses, delayed
//! responses, and a whole-channel outage window during which the device is
//! unreachable (modeling a stacked-DRAM channel brown-out).
//!
//! Faults are drawn from a [SplitMix64](FaultRng) stream seeded at arm
//! time, so a given `(seed, access sequence)` produces the same fault
//! sequence on every run — experiments stay reproducible and failures
//! bisectable. An *unarmed* or rate-zero device draws nothing from the
//! stream and delegates straight through, so its timing is bit-identical
//! to a bare [`Dram`].
//!
//! The wrapper only *attaches* faults; interpreting them (ECC correction,
//! retry, scrub, degradation) is the recovery policy's job in the `cameo`
//! core crate. After every data-carrying read the latest fault — or the
//! absence of one — replaces whatever was pending, and the caller consumes
//! it with [`FaultyDevice::take_fault`]; stale faults can never be
//! misattributed to a later read.

use cameo_types::Cycle;

use crate::{Dram, DramConfig, DramStats};

/// One fault attached to a device read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceFault {
    /// A single bit of the returned payload arrived flipped. `bit` is a raw
    /// bit index the consumer maps onto its metadata encoding.
    BitFlip {
        /// Index of the flipped bit within the returned payload word.
        bit: u8,
    },
    /// The response never arrived; the returned completion cycle is when it
    /// *would* have completed. The consumer must time out and retry.
    Dropped,
    /// The response arrived late; the returned completion cycle already
    /// includes the extra delay.
    Delayed {
        /// Extra cycles the response spent in flight.
        extra: Cycle,
    },
    /// The access landed inside a whole-channel outage window; the returned
    /// completion cycle was deferred past the end of the window.
    Outage,
}

/// Fault rates (per million data-carrying reads) and the optional outage
/// window. `FaultConfig::default()` is fully inert.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultConfig {
    /// Single-bit flips per million reads.
    pub flip_ppm: u32,
    /// Dropped responses per million reads.
    pub drop_ppm: u32,
    /// Delayed responses per million reads.
    pub delay_ppm: u32,
    /// Extra latency of one delayed response, in CPU cycles.
    pub delay_cycles: u64,
    /// Half-open `[start, end)` cycle window during which the whole device
    /// is unreachable and every access defers to `end`.
    pub outage: Option<(u64, u64)>,
}

impl FaultConfig {
    /// Whether any fault mechanism is enabled.
    pub fn is_active(&self) -> bool {
        self.flip_ppm > 0 || self.drop_ppm > 0 || self.delay_ppm > 0 || self.outage.is_some()
    }

    /// A copy with the payload-corrupting and availability faults removed,
    /// keeping only drops/delays — the arming used for devices that hold no
    /// location metadata (e.g. off-chip DRAM, whose data lines are ECC
    /// protected end to end).
    pub fn transport_only(&self) -> Self {
        Self {
            flip_ppm: 0,
            outage: None,
            ..*self
        }
    }
}

/// Counters of injected faults since the device was armed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultStats {
    /// Bit flips attached to reads.
    pub flips: u64,
    /// Responses dropped.
    pub drops: u64,
    /// Responses delayed.
    pub delays: u64,
    /// Accesses deferred past an outage window.
    pub outage_deferrals: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.flips + self.drops + self.delays + self.outage_deferrals
    }
}

/// The fault sampler's pseudo-random stream: the workspace-wide seeded
/// [`SplitMix64`](cameo_types::SplitMix64) (tiny, fast, and statistically
/// strong enough for fault sampling; chosen over the vendored `rand` to
/// keep this crate dependency-free beyond `cameo-types`). The alias
/// preserves this module's original API — fault streams produced from a
/// given seed are bit-identical to those of the former private
/// implementation, which was moved to `cameo-types` verbatim so the sweep
/// harness can derive retry jitter from the same stream definition.
pub type FaultRng = cameo_types::SplitMix64;

/// A [`Dram`] with a deterministic fault layer in front of it.
///
/// Mirrors the full `Dram` access API so the controller can swap one for
/// the other behind a type alias. Construction is inert; faults start only
/// after [`FaultyDevice::arm`].
///
/// # Examples
///
/// ```
/// use cameo_memsim::faults::{FaultConfig, FaultyDevice};
/// use cameo_memsim::DramConfig;
/// use cameo_types::{ByteSize, Cycle};
///
/// let mut dev = FaultyDevice::new(DramConfig::stacked(ByteSize::from_mib(1)));
/// dev.arm(
///     FaultConfig {
///         flip_ppm: 1_000_000, // every read
///         ..FaultConfig::default()
///     },
///     42,
/// );
/// dev.read_line(Cycle::ZERO, 0);
/// assert!(dev.take_fault().is_some());
/// assert!(dev.take_fault().is_none()); // consumed
/// ```
#[derive(Clone, Debug)]
pub struct FaultyDevice {
    inner: Dram,
    cfg: FaultConfig,
    rng: FaultRng,
    pending: Option<DeviceFault>,
    fault_stats: FaultStats,
}

impl FaultyDevice {
    /// Creates an *inert* wrapper: timing-identical to `Dram::new(config)`.
    pub fn new(config: DramConfig) -> Self {
        Self {
            inner: Dram::new(config),
            cfg: FaultConfig::default(),
            rng: FaultRng::new(0),
            pending: None,
            fault_stats: FaultStats::default(),
        }
    }

    /// Arms (or re-arms) the fault layer with rates and a fresh seed.
    pub fn arm(&mut self, cfg: FaultConfig, seed: u64) {
        self.cfg = cfg;
        self.rng = FaultRng::new(seed);
        self.pending = None;
        self.fault_stats = FaultStats::default();
    }

    /// The active fault configuration.
    pub fn fault_config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Counters of faults injected since arming.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Consumes the fault attached to the most recent data-carrying read,
    /// if any. Every such read overwrites the slot (with `None` when it was
    /// clean), so a fault can never outlive the read it was drawn for.
    pub fn take_fault(&mut self) -> Option<DeviceFault> {
        self.pending.take()
    }

    /// Defers `now` past the outage window when the access lands inside it.
    fn outage_gate(&mut self, now: Cycle) -> (Cycle, bool) {
        if let Some((start, end)) = self.cfg.outage {
            if now.raw() >= start && now.raw() < end {
                self.fault_stats.outage_deferrals += 1;
                return (Cycle::new(end), true);
            }
        }
        (now, false)
    }

    /// Draws at most one fault for a data-carrying read.
    fn draw_fault(&mut self) -> Option<DeviceFault> {
        let flip = u64::from(self.cfg.flip_ppm);
        let drop = u64::from(self.cfg.drop_ppm);
        let delay = u64::from(self.cfg.delay_ppm);
        if flip + drop + delay == 0 {
            return None;
        }
        let r = self.rng.below(1_000_000);
        if r < flip {
            self.fault_stats.flips += 1;
            Some(DeviceFault::BitFlip {
                bit: self.rng.below(32) as u8,
            })
        } else if r < flip + drop {
            self.fault_stats.drops += 1;
            Some(DeviceFault::Dropped)
        } else if r < flip + drop + delay {
            self.fault_stats.delays += 1;
            Some(DeviceFault::Delayed {
                extra: Cycle::new(self.cfg.delay_cycles),
            })
        } else {
            None
        }
    }

    /// Performs a demand read of one line; may attach a fault.
    pub fn read_line(&mut self, now: Cycle, line: u64) -> Cycle {
        self.access(now, line, false, cameo_types::LINE_BYTES as u32)
    }

    /// Performs a write of one line. Writes are posted and never faulted
    /// (a lost posted write is indistinguishable from a scheduling choice
    /// in this model); they are still gated by an outage window.
    pub fn write_line(&mut self, now: Cycle, line: u64) -> Cycle {
        self.access(now, line, true, cameo_types::LINE_BYTES as u32)
    }

    /// Performs an access with an explicit transfer size, applying the
    /// outage gate to everything and drawing a fault for reads.
    ///
    /// For a read the attached fault (or `None`) replaces any pending one;
    /// a [`DeviceFault::Delayed`] verdict is already reflected in the
    /// returned completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero (same contract as [`Dram::access`]).
    pub fn access(&mut self, now: Cycle, line: u64, is_write: bool, bytes: u32) -> Cycle {
        let (now, deferred) = self.outage_gate(now);
        let done = self.inner.access(now, line, is_write, bytes);
        if is_write {
            return done;
        }
        // A drawn fault wins; an otherwise-clean read that crossed the
        // outage window still reports the deferral.
        let fault = match (self.draw_fault(), deferred) {
            (Some(f), _) => Some(f),
            (None, true) => Some(DeviceFault::Outage),
            (None, false) => None,
        };
        self.pending = fault;
        match fault {
            Some(DeviceFault::Delayed { extra }) => done + extra,
            _ => done,
        }
    }

    /// A squashed speculative read: bus accounting only, data discarded, so
    /// no fault is drawn and the pending slot is left untouched.
    pub fn read_squashed(&mut self, now: Cycle, line: u64) -> Cycle {
        let (now, _) = self.outage_gate(now);
        self.inner.read_squashed(now, line)
    }

    /// The wrapped device's configuration.
    #[inline]
    pub fn config(&self) -> &DramConfig {
        self.inner.config()
    }

    /// The wrapped device's activity counters.
    #[inline]
    pub fn stats(&self) -> &DramStats {
        self.inner.stats()
    }

    /// Resets the wrapped device's activity counters (fault counters and
    /// the RNG stream are kept: warmup faults are still faults).
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    /// Uncontended latency of an isolated row-buffer-miss read.
    pub fn isolated_read_latency(&self) -> Cycle {
        self.inner.isolated_read_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::ByteSize;

    fn device() -> FaultyDevice {
        FaultyDevice::new(DramConfig::stacked(ByteSize::from_mib(1)))
    }

    #[test]
    fn inert_wrapper_matches_bare_dram() {
        let mut bare = Dram::new(DramConfig::stacked(ByteSize::from_mib(1)));
        let mut wrapped = device();
        let mut now = Cycle::ZERO;
        for i in 0..200u64 {
            let a = bare.read_line(now, i % 77);
            let b = wrapped.read_line(now, i % 77);
            assert_eq!(a, b, "diverged at access {i}");
            assert_eq!(wrapped.take_fault(), None);
            now = a;
        }
        assert_eq!(bare.stats(), wrapped.stats());
    }

    #[test]
    fn rate_zero_armed_device_is_still_inert() {
        let mut bare = Dram::new(DramConfig::stacked(ByteSize::from_mib(1)));
        let mut wrapped = device();
        wrapped.arm(FaultConfig::default(), 12345);
        for i in 0..100u64 {
            assert_eq!(
                bare.read_line(Cycle::ZERO, i),
                wrapped.read_line(Cycle::ZERO, i)
            );
            assert_eq!(wrapped.take_fault(), None);
        }
    }

    #[test]
    fn fault_sequence_is_seed_deterministic() {
        let cfg = FaultConfig {
            flip_ppm: 100_000,
            drop_ppm: 100_000,
            delay_ppm: 100_000,
            delay_cycles: 7,
            outage: None,
        };
        let run = |seed| {
            let mut d = device();
            d.arm(cfg, seed);
            (0..500u64)
                .map(|i| {
                    d.read_line(Cycle::ZERO, i % 50);
                    d.take_fault()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds should differ");
        assert!(run(1).iter().any(Option::is_some), "rates high enough");
    }

    #[test]
    fn flip_rate_approximates_ppm() {
        let mut d = device();
        d.arm(
            FaultConfig {
                flip_ppm: 250_000, // one in four
                ..FaultConfig::default()
            },
            9,
        );
        for i in 0..4000u64 {
            d.read_line(Cycle::ZERO, i % 64);
        }
        let flips = d.fault_stats().flips;
        assert!((800..1200).contains(&flips), "got {flips} flips");
    }

    #[test]
    fn every_read_overwrites_pending() {
        let mut d = device();
        d.arm(
            FaultConfig {
                flip_ppm: 1_000_000,
                ..FaultConfig::default()
            },
            3,
        );
        d.read_line(Cycle::ZERO, 0); // attaches a flip...
        d.arm(FaultConfig::default(), 3); // ...rate back to zero
        d.read_line(Cycle::ZERO, 1);
        // arm() cleared it, and the clean read left None.
        assert_eq!(d.take_fault(), None);
    }

    #[test]
    fn clean_read_clears_stale_fault() {
        let mut d = device();
        d.arm(
            FaultConfig {
                flip_ppm: 1_000_000,
                ..FaultConfig::default()
            },
            3,
        );
        d.read_line(Cycle::ZERO, 0);
        assert!(matches!(d.pending, Some(DeviceFault::BitFlip { .. })));
        d.cfg.flip_ppm = 0; // subsequent reads are clean
        d.read_line(Cycle::ZERO, 1);
        assert_eq!(
            d.take_fault(),
            None,
            "a clean read must overwrite the stale fault"
        );
    }

    #[test]
    fn delay_extends_completion() {
        let mut clean = device();
        let mut d = device();
        d.arm(
            FaultConfig {
                delay_ppm: 1_000_000,
                delay_cycles: 123,
                ..FaultConfig::default()
            },
            5,
        );
        let base = clean.read_line(Cycle::ZERO, 0);
        let delayed = d.read_line(Cycle::ZERO, 0);
        assert_eq!(delayed, base + Cycle::new(123));
        assert!(matches!(d.take_fault(), Some(DeviceFault::Delayed { .. })));
    }

    #[test]
    fn outage_defers_reads_and_writes() {
        let mut d = device();
        d.arm(
            FaultConfig {
                outage: Some((100, 5000)),
                ..FaultConfig::default()
            },
            7,
        );
        // Before the window: unaffected.
        assert!(d.read_line(Cycle::ZERO, 0) < Cycle::new(100));
        assert_eq!(d.take_fault(), None);
        // Inside the window: deferred past its end and flagged.
        let r = d.read_line(Cycle::new(200), 1);
        assert!(r >= Cycle::new(5000), "read at {r:?}");
        assert_eq!(d.take_fault(), Some(DeviceFault::Outage));
        let w = d.write_line(Cycle::new(300), 2);
        assert!(w >= Cycle::new(5000), "write at {w:?}");
        assert_eq!(d.take_fault(), None, "writes never attach faults");
        // After the window: unaffected again.
        let late = d.read_line(Cycle::new(6000), 3);
        assert!(late < Cycle::new(7000));
        assert_eq!(d.fault_stats().outage_deferrals, 2);
    }

    #[test]
    fn squashed_reads_never_fault() {
        let mut d = device();
        d.arm(
            FaultConfig {
                flip_ppm: 1_000_000,
                ..FaultConfig::default()
            },
            11,
        );
        d.read_squashed(Cycle::ZERO, 0);
        assert_eq!(d.take_fault(), None);
        assert_eq!(d.fault_stats().flips, 0);
    }

    #[test]
    fn transport_only_strips_flips_and_outage() {
        let cfg = FaultConfig {
            flip_ppm: 10,
            drop_ppm: 20,
            delay_ppm: 30,
            delay_cycles: 9,
            outage: Some((0, 10)),
        };
        let t = cfg.transport_only();
        assert_eq!(t.flip_ppm, 0);
        assert_eq!(t.outage, None);
        assert_eq!(t.drop_ppm, 20);
        assert_eq!(t.delay_ppm, 30);
        assert!(t.is_active());
        assert!(!FaultConfig::default().is_active());
    }

    #[test]
    fn rng_below_is_in_range() {
        let mut rng = FaultRng::new(99);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
