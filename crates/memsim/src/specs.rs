//! Published DRAM technology data points behind the paper's Figure 3
//! ("DRAM Capacity and Bandwidth", collected from device specifications).
//!
//! These are static datasheet constants, not simulation outputs; the
//! `fig03_dram_specs` bench binary prints them as the figure's series.

/// One DRAM technology data point: per-device capacity and peak bandwidth.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DramSpec {
    /// Technology / product name.
    pub name: &'static str,
    /// Per-device (module/stack) capacity in gigabytes.
    pub capacity_gb: f64,
    /// Peak bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Whether this is a die-stacked technology.
    pub stacked: bool,
}

/// Data points for the paper's Figure 3, from the cited specifications
/// (Micron DDR3, JEDEC DDR4, JEDEC HBM, Micron HMC 1.0 / Gen2, LPDDR).
pub const DRAM_SPECS: &[DramSpec] = &[
    DramSpec {
        name: "LPDDR2",
        capacity_gb: 1.0,
        bandwidth_gbs: 8.5,
        stacked: false,
    },
    DramSpec {
        name: "DDR3-1600",
        capacity_gb: 8.0,
        bandwidth_gbs: 12.8,
        stacked: false,
    },
    DramSpec {
        name: "DDR4-3200",
        capacity_gb: 16.0,
        bandwidth_gbs: 25.6,
        stacked: false,
    },
    DramSpec {
        name: "HMC 1.0",
        capacity_gb: 0.5,
        bandwidth_gbs: 128.0,
        stacked: true,
    },
    DramSpec {
        name: "HMC Gen2",
        capacity_gb: 4.0,
        bandwidth_gbs: 160.0,
        stacked: true,
    },
    DramSpec {
        name: "HBM (JESD235)",
        capacity_gb: 4.0,
        bandwidth_gbs: 128.0,
        stacked: true,
    },
];

/// Ratio of best stacked to best commodity bandwidth among [`DRAM_SPECS`] —
/// the "almost an order of magnitude" claim from the paper's introduction.
pub fn stacked_bandwidth_advantage() -> f64 {
    let best = |stacked: bool| {
        DRAM_SPECS
            .iter()
            .filter(|s| s.stacked == stacked)
            .map(|s| s.bandwidth_gbs)
            .fold(0.0f64, f64::max)
    };
    best(true) / best(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacked_is_order_of_magnitude_faster() {
        let adv = stacked_bandwidth_advantage();
        assert!(adv > 5.0, "advantage was {adv}");
    }

    #[test]
    fn stacked_capacity_is_smaller() {
        let max_stacked = DRAM_SPECS
            .iter()
            .filter(|s| s.stacked)
            .map(|s| s.capacity_gb)
            .fold(0.0f64, f64::max);
        let max_commodity = DRAM_SPECS
            .iter()
            .filter(|s| !s.stacked)
            .map(|s| s.capacity_gb)
            .fold(0.0f64, f64::max);
        assert!(max_stacked < max_commodity);
    }

    #[test]
    fn specs_nonempty_and_positive() {
        assert!(!DRAM_SPECS.is_empty());
        for s in DRAM_SPECS {
            assert!(s.capacity_gb > 0.0 && s.bandwidth_gbs > 0.0, "{}", s.name);
        }
    }
}
