//! Per-device activity counters used for the paper's bandwidth and energy
//! accounting (Table IV, Figure 14).

/// Activity counters for one DRAM device.
///
/// Bandwidth in the paper is "bytes transferred on the bus, normalized to
/// baseline" — [`DramStats::bytes_total`] is exactly that numerator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DramStats {
    /// Demand read accesses serviced.
    pub demand_reads: u64,
    /// Write accesses serviced (demand writes, fills, writebacks, swaps).
    pub writes: u64,
    /// Bytes moved out of the device (reads).
    pub bytes_read: u64,
    /// Bytes moved into the device (writes).
    pub bytes_written: u64,
    /// Accesses that hit an open row buffer.
    pub row_hits: u64,
    /// Accesses to a bank with no open row (first touch after precharge).
    pub row_closed: u64,
    /// Accesses that had to close another open row first.
    pub row_conflicts: u64,
    /// Refresh commands issued (zero unless refresh is enabled).
    pub refreshes: u64,
    /// Total cycles the channel data buses were occupied (summed over
    /// channels) — divide by elapsed cycles × channels for utilization.
    pub bus_busy_cycles: u64,
}

impl DramStats {
    /// Total accesses of any kind.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.demand_reads + self.writes
    }

    /// Total bytes moved over the data bus in either direction.
    #[inline]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Fraction of accesses that hit an open row, in `[0, 1]`.
    /// Returns `None` when no accesses have been made.
    pub fn row_hit_rate(&self) -> Option<f64> {
        let total = self.row_hits + self.row_closed + self.row_conflicts;
        (total > 0).then(|| self.row_hits as f64 / total as f64)
    }

    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.demand_reads += other.demand_reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.row_hits += other.row_hits;
        self.row_closed += other.row_closed;
        self.row_conflicts += other.row_conflicts;
        self.refreshes += other.refreshes;
        self.bus_busy_cycles += other.bus_busy_cycles;
    }

    /// Average data-bus utilization over `elapsed` cycles and `channels`
    /// buses, in `[0, 1]`; `None` if `elapsed` or `channels` is zero.
    pub fn bus_utilization(&self, elapsed: u64, channels: u32) -> Option<f64> {
        (elapsed > 0 && channels > 0)
            .then(|| self.bus_busy_cycles as f64 / (elapsed as f64 * f64::from(channels)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = DramStats::default();
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.bytes_total(), 0);
        assert_eq!(s.row_hit_rate(), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DramStats {
            demand_reads: 1,
            writes: 2,
            bytes_read: 64,
            bytes_written: 128,
            row_hits: 1,
            row_closed: 1,
            row_conflicts: 1,
            refreshes: 0,
            bus_busy_cycles: 8,
        };
        a.merge(&a.clone());
        assert_eq!(a.accesses(), 6);
        assert_eq!(a.bytes_total(), 384);
        assert_eq!(a.row_hit_rate(), Some(1.0 / 3.0));
    }
}
