//! The DRAM device model: per-bank row-buffer state and per-channel data-bus
//! occupancy.

use cameo_types::Cycle;

use crate::{DramConfig, DramStats, DramTimings, RowPolicy};

/// How an access interacted with its bank's row buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RowBufferOutcome {
    /// The addressed row was already open: pay tCAS only.
    Hit,
    /// The bank was precharged (no open row): pay tRCD + tCAS.
    ClosedMiss,
    /// Another row was open: pay tRP + tRCD + tCAS.
    Conflict,
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the bank can start a new column/row command.
    ready_at: Cycle,
    /// Cycle the current row activation completes its tRAS window.
    active_until: Cycle,
}

/// One DRAM device (stacked or off-chip): accepts line-granularity accesses
/// and returns their completion time under bank and channel contention.
///
/// The scheduling model is intentionally simple and fast:
///
/// * each access is mapped to (channel, bank, row) by line-interleaving
///   across channels, with 32 consecutive lines sharing a row;
/// * an access starts when its bank is free, pays the row-buffer-dependent
///   command latency (9-9-9-36 from Table I), then queues for the channel
///   data bus for its burst duration;
/// * the bank stays busy until the data transfer completes, and a row
///   conflict additionally waits out the tRAS window before precharging.
///
/// This captures the two effects the paper depends on — bank-level
/// parallelism and data-bus saturation — without a full command-level DDR
/// scheduler.
///
/// # Examples
///
/// ```
/// use cameo_memsim::{Dram, DramConfig};
/// use cameo_types::{ByteSize, Cycle};
///
/// let mut dram = Dram::new(DramConfig::off_chip(ByteSize::from_mib(192)));
/// let first = dram.read_line(Cycle::ZERO, 0);
/// // Second read of the same row hits the open row buffer: cheaper.
/// let second = dram.read_line(first, 1) - first;
/// assert!(second < first - Cycle::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    /// Earliest free cycle of each channel's data bus.
    bus_free: Vec<Cycle>,
    /// Next scheduled refresh command (when refresh is enabled).
    next_refresh: Cycle,
    /// End of the current refresh blackout, if one is in progress.
    refresh_until: Cycle,
    /// Per-bank far rows promoted into the near segment's reserved window
    /// (FIFO within the window). Empty vectors when the device is flat.
    promoted_near: Vec<Vec<u64>>,
    stats: DramStats,
}

impl Dram {
    /// Creates a device with all banks precharged and buses idle.
    pub fn new(config: DramConfig) -> Self {
        if let Some(refresh) = &config.refresh {
            refresh.validate();
        }
        let banks = vec![Bank::default(); config.total_banks() as usize];
        let bus_free = vec![Cycle::ZERO; config.channels as usize];
        let promoted_banks = if config.tl_dram.is_some() {
            config.total_banks() as usize
        } else {
            0
        };
        Self {
            next_refresh: Cycle::new(config.refresh.map_or(u64::MAX, |r| r.t_refi_cpu)),
            refresh_until: Cycle::ZERO,
            promoted_near: vec![Vec::new(); promoted_banks],
            config,
            banks,
            bus_free,
            stats: DramStats::default(),
        }
    }

    /// Advances the refresh schedule up to `now` and returns the earliest
    /// cycle an access arriving at `now` may start. All-bank refresh: the
    /// whole device is blocked for tRFC every tREFI.
    fn refresh_gate(&mut self, now: Cycle) -> Cycle {
        let Some(refresh) = self.config.refresh else {
            return now;
        };
        while now >= self.next_refresh {
            self.refresh_until = self.next_refresh + Cycle::new(refresh.t_rfc_cpu);
            self.next_refresh += Cycle::new(refresh.t_refi_cpu);
            self.stats.refreshes += 1;
            // A refresh closes every row.
            for bank in &mut self.banks {
                bank.open_row = None;
            }
        }
        now.later(self.refresh_until)
    }

    /// Returns the device configuration.
    #[inline]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Returns the accumulated activity counters.
    #[inline]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets activity counters (bank/bus state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Maps a device-local line number to (channel, bank-index, row).
    ///
    /// A whole 2 KiB row (32 consecutive lines) is contiguous within one
    /// bank — matching the co-located LLT's row layout — and successive rows
    /// interleave across channels, then banks, preserving both row-buffer
    /// locality and bank-level parallelism.
    fn map(&self, line: u64) -> (usize, usize, u64) {
        let channels = u64::from(self.config.channels);
        let banks = u64::from(self.config.banks_per_channel);
        let lines_per_row = u64::from(self.config.lines_per_row());
        let row_seq = line / lines_per_row;
        let channel = row_seq % channels;
        let bank_in_channel = (row_seq / channels) % banks;
        let row = row_seq / (channels * banks);
        let bank = channel * banks + bank_in_channel;
        (channel as usize, bank as usize, row)
    }

    /// Command timings for `row` of bank `bank_idx`: the flat device's
    /// timings, or the row's segment under tiered latency. The conflict
    /// path charges the *accessed* row's segment for precharge too — a
    /// deliberate simplification (the victim row's identity does not
    /// change which bitline the new activation drives).
    fn segment_timings(&self, bank_idx: usize, row: u64) -> DramTimings {
        match &self.config.tl_dram {
            None => self.config.timings,
            Some(tl) => {
                if row < tl.near_rows_per_bank || self.promoted_near[bank_idx].contains(&row) {
                    tl.near
                } else {
                    tl.far
                }
            }
        }
    }

    /// Hot-page placement hook: moves `line`'s row into its bank's near
    /// segment. The promoted rows occupy a small reserved window of the
    /// near segment (1/8 of it, at least one row); when the window is
    /// full the oldest promotion is evicted back to the far segment.
    ///
    /// Returns `true` if a promotion happened, `false` if the device is
    /// flat or the row is already near. Nothing in the simulator calls
    /// this by default — it is the seam a placement policy plugs into.
    pub fn promote_row_to_near(&mut self, line: u64) -> bool {
        let Some(tl) = self.config.tl_dram else {
            return false;
        };
        let (_channel, bank_idx, row) = self.map(line);
        if row < tl.near_rows_per_bank || self.promoted_near[bank_idx].contains(&row) {
            return false;
        }
        let window = (tl.near_rows_per_bank / 8).clamp(1, 64) as usize;
        let promoted = &mut self.promoted_near[bank_idx];
        if promoted.len() >= window {
            promoted.remove(0);
        }
        promoted.push(row);
        true
    }

    /// Performs a demand read of one 64-byte line.
    ///
    /// Returns the cycle the critical word (entire line, in this model) is
    /// available.
    pub fn read_line(&mut self, now: Cycle, line: u64) -> Cycle {
        self.access(now, line, false, cameo_types::LINE_BYTES as u32)
    }

    /// Performs a write of one 64-byte line (fill, writeback or swap).
    ///
    /// Returns the cycle the write completes on the bus; callers normally
    /// treat writes as posted and ignore the return value except for
    /// occupancy.
    pub fn write_line(&mut self, now: Cycle, line: u64) -> Cycle {
        self.access(now, line, true, cameo_types::LINE_BYTES as u32)
    }

    /// Performs an access with an explicit transfer size (e.g. the 80-byte
    /// burst-of-five LEAD read of CAMEO's co-located LLT).
    ///
    /// Returns the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn access(&mut self, now: Cycle, line: u64, is_write: bool, bytes: u32) -> Cycle {
        assert!(bytes > 0, "access must transfer at least one byte");
        if is_write {
            return self.write_buffered(now, line, bytes);
        }
        let now = self.refresh_gate(now);
        let (channel, bank_idx, row) = self.map(line);
        let t = self.segment_timings(bank_idx, row);
        let bank = &mut self.banks[bank_idx];

        let mut start = now.later(bank.ready_at);
        let outcome = match bank.open_row {
            Some(open) if open == row => RowBufferOutcome::Hit,
            Some(_) => RowBufferOutcome::Conflict,
            None => RowBufferOutcome::ClosedMiss,
        };
        let command_cycles = match outcome {
            RowBufferOutcome::Hit => t.cas_cpu(),
            RowBufferOutcome::ClosedMiss => t.rcd_cpu() + t.cas_cpu(),
            RowBufferOutcome::Conflict => {
                // Cannot precharge until the tRAS window of the currently
                // open row has elapsed.
                start = start.later(bank.active_until);
                t.rp_cpu() + t.rcd_cpu() + t.cas_cpu()
            }
        };
        let cas_done = start + Cycle::new(command_cycles);

        // Queue for the channel data bus.
        let burst = Cycle::new(self.config.burst_cpu_cycles(bytes));
        let data_start = cas_done.later(self.bus_free[channel]);
        let data_done = data_start + burst;
        self.bus_free[channel] = data_done;
        self.stats.bus_busy_cycles += burst.raw();

        // Bank is busy until its data transfer completes; a fresh activation
        // (re)starts the tRAS window.
        bank.ready_at = data_done;
        if !matches!(outcome, RowBufferOutcome::Hit) {
            bank.active_until = start + Cycle::new(t.ras_cpu());
        }
        bank.open_row = match self.config.row_policy {
            RowPolicy::OpenPage => Some(row),
            // Auto-precharge: the row closes with the access, so the next
            // access sees a closed bank (never a conflict, never a hit).
            RowPolicy::ClosedPage => None,
        };

        match outcome {
            RowBufferOutcome::Hit => self.stats.row_hits += 1,
            RowBufferOutcome::ClosedMiss => self.stats.row_closed += 1,
            RowBufferOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        let moved = u64::from(self.config.beats_for(bytes) * self.config.bytes_per_beat);
        if is_write {
            self.stats.writes += 1;
            self.stats.bytes_written += moved;
        } else {
            self.stats.demand_reads += 1;
            self.stats.bytes_read += moved;
        }
        data_done
    }

    /// A speculative demand read that was proven useless by the time it
    /// reached the front of the bank queue (e.g. a mispredicted CAMEO
    /// location fetch verified against the LLT): the controller squashes
    /// the bank access, but the request still consumed scheduling slots and
    /// — pessimistically, matching the paper's Table IV accounting — its
    /// data-bus bandwidth. Returns the cycle its bus slot ends.
    pub fn read_squashed(&mut self, now: Cycle, line: u64) -> Cycle {
        let bytes = cameo_types::LINE_BYTES as u32;
        let (channel, _bank, _row) = self.map(line);
        let burst = Cycle::new(self.config.burst_cpu_cycles(bytes));
        let data_start = now.later(self.bus_free[channel]);
        let data_done = data_start + burst;
        self.bus_free[channel] = data_done;
        self.stats.bus_busy_cycles += burst.raw();
        let moved = u64::from(self.config.beats_for(bytes) * self.config.bytes_per_beat);
        self.stats.demand_reads += 1;
        self.stats.bytes_read += moved;
        data_done
    }

    /// Writes are buffered by the controller and drained opportunistically:
    /// they consume data-bus bandwidth (the fundamental limit the paper's
    /// Table IV accounts) and are counted in the byte totals, but do not
    /// hold banks against later demand reads the way a read does. Without
    /// this, posted swap/fill/writeback traffic would serialize demand
    /// reads far beyond what a real write-queue-equipped controller shows.
    fn write_buffered(&mut self, now: Cycle, line: u64, bytes: u32) -> Cycle {
        let (channel, _bank_idx, _row) = self.map(line);
        let burst = Cycle::new(self.config.burst_cpu_cycles(bytes));
        let data_start = now.later(self.bus_free[channel]);
        let data_done = data_start + burst;
        self.bus_free[channel] = data_done;
        self.stats.bus_busy_cycles += burst.raw();
        let moved = u64::from(self.config.beats_for(bytes) * self.config.bytes_per_beat);
        self.stats.writes += 1;
        self.stats.bytes_written += moved;
        data_done
    }

    /// Uncontended latency of an isolated row-buffer-miss read, in CPU
    /// cycles. Useful as the "1 unit" / "2 units" abstraction of the paper's
    /// Figure 8 latency analysis.
    pub fn isolated_read_latency(&self) -> Cycle {
        let t = &self.config.timings;
        Cycle::new(
            t.rcd_cpu()
                + t.cas_cpu()
                + self.config.burst_cpu_cycles(cameo_types::LINE_BYTES as u32),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::ByteSize;

    fn stacked() -> Dram {
        Dram::new(DramConfig::stacked(ByteSize::from_mib(64)))
    }

    fn off_chip() -> Dram {
        Dram::new(DramConfig::off_chip(ByteSize::from_mib(192)))
    }

    #[test]
    fn first_access_is_closed_miss() {
        let mut d = stacked();
        let done = d.read_line(Cycle::ZERO, 0);
        // tRCD + tCAS = 18 + 18 = 36 CPU cycles, + 4-cycle burst.
        assert_eq!(done, Cycle::new(40));
        assert_eq!(d.stats().row_closed, 1);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = stacked();
        let first = d.read_line(Cycle::ZERO, 0);
        let second = d.read_line(first, 1) - first;
        // tCAS + burst = 18 + 4 = 22.
        assert_eq!(second, Cycle::new(22));
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn conflict_pays_precharge_and_ras() {
        let mut d = stacked();
        let lines_per_row = u64::from(d.config().lines_per_row());
        let channels = u64::from(d.config().channels);
        let banks = u64::from(d.config().banks_per_channel);
        // Two lines on channel 0, same bank, different rows.
        let a = 0;
        let b = channels * lines_per_row * banks; // advances row, same bank 0
        let first = d.read_line(Cycle::ZERO, a);
        let second = d.read_line(first, b);
        assert_eq!(d.stats().row_conflicts, 1);
        // Must wait out tRAS (72 CPU cycles from activation at 0), then
        // tRP + tRCD + tCAS + burst = 18+18+18+4 = 58.
        assert_eq!(second, Cycle::new(72 + 58));
    }

    #[test]
    fn distinct_banks_overlap() {
        let mut d = stacked();
        // Same cycle, different channels (rows interleave across channels):
        // both complete at the isolated latency; no serialization.
        let lines_per_row = u64::from(d.config().lines_per_row());
        let a = d.read_line(Cycle::ZERO, 0);
        let b = d.read_line(Cycle::ZERO, lines_per_row);
        assert_eq!(a, b);
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = stacked();
        let a = d.read_line(Cycle::ZERO, 0);
        let b = d.read_line(Cycle::ZERO, 0); // same line, row hit but bank busy
        assert!(b > a);
    }

    #[test]
    fn off_chip_roughly_double_latency() {
        let s = stacked().isolated_read_latency();
        let o = off_chip().isolated_read_latency();
        let ratio = o.raw() as f64 / s.raw() as f64;
        assert!(
            (1.8..=2.5).contains(&ratio),
            "latency ratio {ratio} outside the paper's ~2x"
        );
    }

    #[test]
    fn channel_bus_saturates() {
        // Many back-to-back row hits on one channel: completion times must
        // space out by at least the burst duration.
        let mut d = off_chip();
        let channels = u64::from(d.config().channels);
        let mut last = Cycle::ZERO;
        let mut dones = Vec::new();
        for i in 0..8 {
            // Different banks, same channel → bus is the bottleneck.
            let lines_per_row = u64::from(d.config().lines_per_row());
            let line = i * channels * lines_per_row;
            dones.push(d.read_line(Cycle::ZERO, line));
        }
        dones.sort();
        for w in dones.windows(2) {
            assert!(w[1] - w[0] >= Cycle::new(16), "bus not serialized: {w:?}");
            last = w[1];
        }
        assert!(last > Cycle::ZERO);
    }

    #[test]
    fn byte_accounting_rounds_to_beats() {
        let mut d = stacked();
        d.access(Cycle::ZERO, 0, false, 66);
        // 66 bytes on a 16-byte bus is a burst of five = 80 bytes moved.
        assert_eq!(d.stats().bytes_read, 80);
        d.access(Cycle::ZERO, 1, true, 64);
        assert_eq!(d.stats().bytes_written, 64);
    }

    #[test]
    fn reset_stats_keeps_state() {
        let mut d = stacked();
        d.read_line(Cycle::ZERO, 0);
        d.reset_stats();
        assert_eq!(d.stats().accesses(), 0);
        // Row is still open: next access to the same row is a hit.
        let t0 = Cycle::new(1000);
        let done = d.read_line(t0, 1);
        assert_eq!(done - t0, Cycle::new(22));
    }

    #[test]
    fn bus_busy_cycles_accumulate() {
        let mut d = stacked();
        d.read_line(Cycle::ZERO, 0); // 64 B = 4 CPU cycles on the bus
        d.write_line(Cycle::ZERO, 1); // same
        assert_eq!(d.stats().bus_busy_cycles, 8);
        let util = d.stats().bus_utilization(100, 16).unwrap();
        assert!((util - 8.0 / 1600.0).abs() < 1e-12);
        assert_eq!(d.stats().bus_utilization(0, 16), None);
    }

    #[test]
    fn closed_page_never_hits_or_conflicts() {
        let mut cfg = DramConfig::stacked(ByteSize::from_mib(64));
        cfg.row_policy = crate::RowPolicy::ClosedPage;
        let mut d = Dram::new(cfg);
        let mut now = Cycle::ZERO;
        for i in 0..100u64 {
            now = d.read_line(now, i % 40); // mix of same-row and cross-row
        }
        assert_eq!(d.stats().row_hits, 0);
        assert_eq!(d.stats().row_conflicts, 0);
        assert_eq!(d.stats().row_closed, 100);
    }

    #[test]
    fn closed_page_cost_is_uniform() {
        let mut cfg = DramConfig::stacked(ByteSize::from_mib(64));
        cfg.row_policy = crate::RowPolicy::ClosedPage;
        let mut d = Dram::new(cfg);
        let a = d.read_line(Cycle::ZERO, 0);
        let b = d.read_line(a, 1) - a; // same row under open-page
                                       // Both pay tRCD + tCAS + burst = 40.
        assert_eq!(a, Cycle::new(40));
        assert_eq!(b, Cycle::new(40));
    }

    #[test]
    fn refresh_blocks_the_window() {
        let mut cfg = DramConfig::off_chip(ByteSize::from_mib(64));
        cfg.refresh = Some(crate::RefreshParams {
            t_refi_cpu: 1000,
            t_rfc_cpu: 100,
        });
        let mut d = Dram::new(cfg);
        // Before the first tREFI: unaffected.
        let early = d.read_line(Cycle::new(10), 0);
        assert_eq!(early, Cycle::new(10 + 88));
        // Landing inside the blackout after tREFI: pushed past it.
        let blocked = d.read_line(Cycle::new(1001), 1);
        assert!(blocked >= Cycle::new(1100), "{blocked:?}");
        assert_eq!(d.stats().refreshes, 1);
        // A long idle gap schedules multiple refreshes.
        d.read_line(Cycle::new(5050), 2);
        assert!(d.stats().refreshes >= 5);
    }

    #[test]
    fn refresh_closes_rows() {
        let mut cfg = DramConfig::stacked(ByteSize::from_mib(64));
        cfg.refresh = Some(crate::RefreshParams {
            t_refi_cpu: 1000,
            t_rfc_cpu: 50,
        });
        let mut d = Dram::new(cfg);
        d.read_line(Cycle::ZERO, 0); // opens row
        let t = Cycle::new(1100); // after one refresh
        let done = d.read_line(t, 1); // same row, but refresh closed it
        assert_eq!(done - t, Cycle::new(40)); // closed-miss cost, not hit
    }

    #[test]
    fn refresh_disabled_by_default() {
        let mut d = stacked();
        d.read_line(Cycle::new(10_000_000), 0);
        assert_eq!(d.stats().refreshes, 0);
    }

    #[test]
    #[should_panic(expected = "tRFC must be smaller")]
    fn bad_refresh_rejected() {
        let mut cfg = DramConfig::stacked(ByteSize::from_mib(1));
        cfg.refresh = Some(crate::RefreshParams {
            t_refi_cpu: 10,
            t_rfc_cpu: 10,
        });
        Dram::new(cfg);
    }

    #[test]
    fn buffered_write_does_not_block_bank() {
        let mut d = stacked();
        // A write to line 0's bank...
        d.write_line(Cycle::ZERO, 0);
        // ...does not delay an immediately following read of the same bank
        // beyond its own command latency (the write drains opportunistically).
        let read_done = d.read_line(Cycle::ZERO, 1);
        // Closed-bank read: tRCD + tCAS + burst = 40, plus at most the
        // write's 4-cycle bus occupancy.
        assert!(read_done <= Cycle::new(44), "read done at {read_done:?}");
    }

    #[test]
    fn buffered_write_still_occupies_bus() {
        let mut d = stacked();
        let first = d.write_line(Cycle::ZERO, 0);
        let second = d.write_line(Cycle::ZERO, 32); // different bank, same...
                                                    // Row 0 and row 1 are on different channels, so both writes complete
                                                    // in one burst; a third write to row 0's channel queues.
        let third = d.write_line(Cycle::ZERO, 1);
        assert_eq!(first, Cycle::new(4));
        assert_eq!(second, Cycle::new(4));
        assert_eq!(third, first + Cycle::new(4));
    }

    #[test]
    fn squashed_read_counts_bytes_but_frees_bank() {
        let mut d = stacked();
        d.read_squashed(Cycle::ZERO, 0);
        assert_eq!(d.stats().bytes_read, 64);
        assert_eq!(d.stats().demand_reads, 1);
        // The bank was never activated: a real read still pays the
        // closed-bank latency but no conflict.
        let done = d.read_line(Cycle::ZERO, 0);
        assert!(done <= Cycle::new(44), "read done at {done:?}");
        assert_eq!(d.stats().row_conflicts, 0);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_access_rejected() {
        stacked().access(Cycle::ZERO, 0, false, 0);
    }

    fn tiered(near_rows_per_bank: u64) -> Dram {
        let mut cfg = DramConfig::stacked(ByteSize::from_mib(64));
        cfg.tl_dram = Some(crate::TlDramParams::paper(
            cfg.timings.cpu_per_bus,
            near_rows_per_bank,
        ));
        Dram::new(cfg)
    }

    /// First line of the first far row on bank (channel 0, bank 0): with
    /// one near row per bank, advancing by channels × banks rows lands on
    /// the same bank's next row index.
    fn far_line(d: &Dram) -> u64 {
        u64::from(d.config().lines_per_row())
            * u64::from(d.config().channels)
            * u64::from(d.config().banks_per_channel)
    }

    #[test]
    fn near_segment_beats_far_segment() {
        let mut d = tiered(1);
        // Near closed miss: tRCD 5·2 + tCAS 9·2 = 28, + 4-cycle burst.
        assert_eq!(d.read_line(Cycle::ZERO, 0), Cycle::new(32));
        // Far closed miss on a *different, untouched* bank (row_seq
        // channels·banks + 1 → channel 1, row index 1):
        // tRCD 10·2 + tCAS 18 = 38, + 4.
        let far = far_line(&d) + u64::from(d.config().lines_per_row());
        let t0 = Cycle::new(1000);
        assert_eq!(d.read_line(t0, far) - t0, Cycle::new(42));
    }

    #[test]
    fn tiering_leaves_row_hits_at_cas() {
        let mut d = tiered(1);
        let first = d.read_line(Cycle::ZERO, 0);
        // Near and far share tCAS: a hit costs 18 + 4 in either segment.
        assert_eq!(d.read_line(first, 1) - first, Cycle::new(22));
    }

    #[test]
    fn promote_moves_row_to_near_timing() {
        let mut d = tiered(1);
        let far = far_line(&d);
        assert!(d.promote_row_to_near(far));
        assert!(!d.promote_row_to_near(far), "already near");
        assert_eq!(d.read_line(Cycle::ZERO, far), Cycle::new(32));
        assert!(!d.promote_row_to_near(0), "default near range");
    }

    #[test]
    fn promotion_window_evicts_fifo() {
        // near_rows_per_bank = 8 → reserved window of 1 promoted row.
        let mut d = tiered(8);
        let stride = far_line(&d);
        let a = 8 * stride; // row 8: far
        let b = 9 * stride; // row 9: far, same bank
        assert!(d.promote_row_to_near(a));
        assert!(d.promote_row_to_near(b)); // evicts a
        assert!(d.promote_row_to_near(a), "a fell back to far");
    }

    #[test]
    fn promote_is_noop_on_flat_device() {
        let mut d = stacked();
        assert!(!d.promote_row_to_near(0));
        assert_eq!(d.read_line(Cycle::ZERO, 0), Cycle::new(40));
    }

    #[test]
    fn uniform_tiering_matches_flat_timing() {
        let mut cfg = DramConfig::stacked(ByteSize::from_mib(64));
        cfg.tl_dram = Some(crate::TlDramParams::uniform(cfg.timings, 4));
        let mut d = Dram::new(cfg);
        assert_eq!(d.read_line(Cycle::ZERO, 0), Cycle::new(40));
        // Row index 8 (far under near_rows = 4) on an untouched bank.
        let far = far_line(&d) * 8 + u64::from(d.config().lines_per_row());
        let t0 = Cycle::new(1000);
        assert_eq!(d.read_line(t0, far) - t0, Cycle::new(40));
    }

    #[test]
    fn mapping_keeps_rows_contiguous_and_spreads_channels() {
        let d = stacked();
        let lines_per_row = u64::from(d.config().lines_per_row());
        // All lines of one row share (channel, bank, row).
        let base = d.map(0);
        for i in 1..lines_per_row {
            assert_eq!(d.map(i), base);
        }
        // The next row lands on a different channel.
        let (c0, ..) = d.map(0);
        let (c1, ..) = d.map(lines_per_row);
        assert_ne!(c0, c1);
    }
}
