//! Bank/channel DRAM timing model for the CAMEO reproduction.
//!
//! Models the two DRAM devices of the paper's Table I:
//!
//! * **Stacked DRAM** — 16 channels, 16 banks/channel, 128-bit bus at
//!   1.6 GHz (DDR 3.2 GHz), 9-9-9-36 timing.
//! * **Off-chip DRAM** — 8 channels, 8 banks/channel, 64-bit bus at 800 MHz
//!   (DDR 1.6 GHz), 9-9-9-36 timing.
//!
//! The model tracks per-bank row-buffer state (hit / closed miss / conflict)
//! and per-channel data-bus occupancy, which is what creates the bandwidth
//! contention the paper's conclusions rest on: stacked DRAM offers roughly
//! half the latency and ~8× the peak bandwidth of the off-chip device, and
//! page-granularity migration (TLM-Dynamic) saturates both.
//!
//! Either device can additionally be configured as a **tiered-latency**
//! (TL-DRAM) part via [`TlDramParams`]: each bank's rows split into a fast
//! near segment and a slower far segment, with a
//! [`Dram::promote_row_to_near`] hook for hot-page placement policies.
//! A `tl_dram: None` config is bit-identical to the flat device.
//!
//! Latency is expressed in CPU cycles of the 3.2 GHz cores so that all crates
//! share one clock domain.
//!
//! # Examples
//!
//! ```
//! use cameo_memsim::{Dram, DramConfig};
//! use cameo_types::{ByteSize, Cycle};
//!
//! let mut stacked = Dram::new(DramConfig::stacked(ByteSize::from_mib(64)));
//! let done = stacked.read_line(Cycle::ZERO, 0);
//! assert!(done > Cycle::ZERO);
//! assert_eq!(stacked.stats().demand_reads, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod device;
#[cfg(feature = "faults")]
pub mod faults;
pub mod specs;
mod stats;

pub use config::{DramConfig, DramTimings, RefreshParams, RowPolicy, TlDramParams};
pub use device::{Dram, RowBufferOutcome};
pub use stats::DramStats;
