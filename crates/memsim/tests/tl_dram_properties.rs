//! Property tests pinning the TL-DRAM tiered-latency model (ISSUE 10):
//!
//! * **Monotonicity** — for every command sequence, an all-near device is
//!   never slower than the flat 9-9-9-36 device, which is never slower
//!   than an all-far device. The paper-flavored segment timings bracket
//!   the flat timings componentwise, and the scheduling model composes
//!   only `max` and `+`, so this must hold access by access.
//! * **Flat identity** — a tiered device whose two segments both use the
//!   flat timings is bit-identical to the pre-TL-DRAM device: same
//!   completion cycle and same stats for every access, even with
//!   promotions interleaved (promotion can only change which segment a
//!   row is in, and the segments are indistinguishable).

use cameo_memsim::{Dram, DramConfig, TlDramParams};
use cameo_types::{ByteSize, Cycle};
use proptest::prelude::*;

/// One scheduled command: arrival-time advance, target line, kind.
#[derive(Clone, Debug)]
struct Cmd {
    advance: u64,
    line: u64,
    write: bool,
}

fn cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        (0u64..200, 0u64..8192, any::<bool>()).prop_map(|(advance, line, write)| Cmd {
            advance,
            line,
            write,
        }),
        1..64,
    )
}

fn flat() -> DramConfig {
    DramConfig::stacked(ByteSize::from_mib(64))
}

/// Replays `seq` against a device, returning per-command completions.
fn replay(mut dram: Dram, seq: &[Cmd]) -> Vec<Cycle> {
    let mut now = Cycle::ZERO;
    seq.iter()
        .map(|cmd| {
            now += Cycle::new(cmd.advance);
            if cmd.write {
                dram.write_line(now, cmd.line)
            } else {
                dram.read_line(now, cmd.line)
            }
        })
        .collect()
}

proptest! {
    /// near ≤ flat ≤ far, per access, for arbitrary command sequences.
    #[test]
    fn tiered_latency_is_monotone(seq in cmds()) {
        let base = flat();
        let paper = TlDramParams::paper(base.timings.cpu_per_bus, 0);
        let mut near_cfg = base;
        near_cfg.tl_dram = Some(TlDramParams {
            near_rows_per_bank: u64::MAX,
            ..paper
        });
        let mut far_cfg = base;
        far_cfg.tl_dram = Some(paper);

        let near = replay(Dram::new(near_cfg), &seq);
        let flat = replay(Dram::new(base), &seq);
        let far = replay(Dram::new(far_cfg), &seq);
        for (i, ((n, m), f)) in near.iter().zip(&flat).zip(&far).enumerate() {
            prop_assert!(n <= m, "near beat by flat at access {i}: {n:?} vs {m:?}");
            prop_assert!(m <= f, "flat beat by far at access {i}: {m:?} vs {f:?}");
        }
    }

    /// Equal segment timings collapse the tiered device onto the flat one
    /// bit for bit, promotions included.
    #[test]
    fn uniform_tiering_is_flat_identity(
        seq in cmds(),
        near_rows in 0u64..32,
        promote_every in 1usize..8,
    ) {
        let base = flat();
        let mut tiered_cfg = base;
        tiered_cfg.tl_dram = Some(TlDramParams::uniform(base.timings, near_rows));
        let mut plain = Dram::new(base);
        let mut tiered = Dram::new(tiered_cfg);

        let mut now = Cycle::ZERO;
        for (i, cmd) in seq.iter().enumerate() {
            now += Cycle::new(cmd.advance);
            if i % promote_every == 0 {
                tiered.promote_row_to_near(cmd.line);
            }
            let (a, b) = if cmd.write {
                (plain.write_line(now, cmd.line), tiered.write_line(now, cmd.line))
            } else {
                (plain.read_line(now, cmd.line), tiered.read_line(now, cmd.line))
            };
            prop_assert_eq!(a, b, "completion diverged at access {}", i);
        }
        prop_assert_eq!(plain.stats(), tiered.stats());
    }
}
