//! Property-based tests for the DRAM timing model.

use cameo_memsim::{Dram, DramConfig};
use cameo_types::{ByteSize, Cycle};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = DramConfig> {
    prop_oneof![
        Just(DramConfig::stacked(ByteSize::from_mib(64))),
        Just(DramConfig::off_chip(ByteSize::from_mib(192))),
    ]
}

proptest! {
    /// Every access completes strictly after it was issued; demand reads
    /// additionally never beat the row-hit floor (tCAS + burst). Buffered
    /// writes only pay bus occupancy, so their floor is the burst alone.
    #[test]
    fn completion_respects_floor(
        config in arb_config(),
        ops in prop::collection::vec((0u64..1 << 20, any::<bool>(), 1u32..256), 1..200),
    ) {
        let mut dram = Dram::new(config);
        let read_floor = config.timings.cas_cpu();
        let mut now = Cycle::ZERO;
        for (line, is_write, bytes) in ops {
            let done = dram.access(now, line, is_write, bytes);
            if is_write {
                prop_assert!(done >= now + Cycle::new(config.burst_cpu_cycles(bytes)));
            } else {
                prop_assert!(done >= now + Cycle::new(read_floor));
            }
            now += Cycle::new(1);
        }
    }

    /// Byte counters equal the sum of beat-rounded transfer sizes, split by
    /// direction.
    #[test]
    fn byte_accounting_is_exact(
        config in arb_config(),
        ops in prop::collection::vec((0u64..1 << 20, any::<bool>(), 1u32..256), 1..100),
    ) {
        let mut dram = Dram::new(config);
        let (mut reads, mut writes) = (0u64, 0u64);
        for &(line, is_write, bytes) in &ops {
            dram.access(Cycle::ZERO, line, is_write, bytes);
            let moved = u64::from(config.beats_for(bytes) * config.bytes_per_beat);
            if is_write { writes += moved } else { reads += moved }
        }
        prop_assert_eq!(dram.stats().bytes_read, reads);
        prop_assert_eq!(dram.stats().bytes_written, writes);
        prop_assert_eq!(dram.stats().accesses(), ops.len() as u64);
    }

    /// Row-buffer outcome counters always sum to the number of accesses and
    /// the hit rate stays in [0, 1].
    #[test]
    fn row_outcomes_partition_accesses(
        config in arb_config(),
        lines in prop::collection::vec(0u64..4096, 1..200),
    ) {
        let mut dram = Dram::new(config);
        for line in &lines {
            dram.read_line(Cycle::ZERO, *line);
        }
        let s = dram.stats();
        prop_assert_eq!(s.row_hits + s.row_closed + s.row_conflicts, lines.len() as u64);
        let rate = s.row_hit_rate().unwrap();
        prop_assert!((0.0..=1.0).contains(&rate));
    }

    /// Sequential streaming mostly hits open rows: at least half of a long
    /// sequential scan must be row hits.
    #[test]
    fn sequential_scan_hits_rows(config in arb_config(), start in 0u64..1024) {
        let mut dram = Dram::new(config);
        let mut now = Cycle::ZERO;
        for i in 0..512u64 {
            now = dram.read_line(now, start + i);
        }
        let rate = dram.stats().row_hit_rate().unwrap();
        prop_assert!(rate > 0.5, "sequential hit rate {rate}");
    }
}
