//! Simulated time measured in CPU cycles.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time (or a duration), measured in CPU clock cycles
/// of the 3.2 GHz cores from the paper's Table I.
///
/// `Cycle` is deliberately a single type for both instants and durations —
/// the simulator's event arithmetic is simple enough that the distinction
/// would add noise, and saturating subtraction ([`Cycle::saturating_sub`])
/// covers the one case where ordering matters.
///
/// # Examples
///
/// ```
/// use cameo_types::Cycle;
///
/// let issue = Cycle::new(100);
/// let done = issue + Cycle::new(38);
/// assert_eq!(done - issue, Cycle::new(38));
/// assert_eq!(issue.saturating_sub(done), Cycle::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero instant.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn later(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Subtracts, clamping at zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }

    /// Scales a duration by an integer factor.
    #[inline]
    pub const fn scaled(self, factor: u64) -> Cycle {
        Cycle(self.0 * factor)
    }
}

impl Add for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;

    /// # Panics
    ///
    /// Panics in debug builds if the result would underflow; use
    /// [`Cycle::saturating_sub`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycle::new(10);
        let b = Cycle::new(4);
        assert_eq!(a + b, Cycle::new(14));
        assert_eq!(a - b, Cycle::new(6));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycle::new(14));
        assert_eq!(a.scaled(3), Cycle::new(30));
    }

    #[test]
    fn later_and_saturating() {
        let a = Cycle::new(10);
        let b = Cycle::new(4);
        assert_eq!(a.later(b), a);
        assert_eq!(b.later(a), a);
        assert_eq!(b.saturating_sub(a), Cycle::ZERO);
        assert_eq!(a.saturating_sub(b), Cycle::new(6));
    }

    #[test]
    fn sum() {
        let total: Cycle = [1u64, 2, 3].into_iter().map(Cycle::new).sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn display() {
        assert_eq!(Cycle::new(42).to_string(), "42 cyc");
        assert_eq!(format!("{:?}", Cycle::new(42)), "Cycle(42)");
    }
}
