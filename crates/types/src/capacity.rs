//! Byte-size capacity type used for device and workload sizing.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

use crate::{LINE_BYTES, PAGE_BYTES};

/// A capacity in bytes, with convenience constructors and conversions to the
/// line/page granularities used throughout the simulator.
///
/// # Examples
///
/// ```
/// use cameo_types::ByteSize;
///
/// let stacked = ByteSize::from_gib(4);
/// let offchip = ByteSize::from_gib(12);
/// let total = stacked + offchip;
/// assert_eq!(total, ByteSize::from_gib(16));
/// assert_eq!(total / stacked, 4);
/// assert_eq!(stacked.lines(), 4 * 1024 * 1024 * 1024 / 64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a capacity from a raw byte count.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        Self(bytes)
    }

    /// Creates a capacity from kibibytes.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Self(kib * 1024)
    }

    /// Creates a capacity from mebibytes.
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        Self(mib * 1024 * 1024)
    }

    /// Creates a capacity from gibibytes.
    #[inline]
    pub const fn from_gib(gib: u64) -> Self {
        Self(gib * 1024 * 1024 * 1024)
    }

    /// Creates a capacity from a whole number of cache lines.
    #[inline]
    pub const fn from_lines(lines: u64) -> Self {
        Self(lines * LINE_BYTES as u64)
    }

    /// Creates a capacity from a whole number of OS pages.
    #[inline]
    pub const fn from_pages(pages: u64) -> Self {
        Self(pages * PAGE_BYTES as u64)
    }

    /// Returns the raw byte count.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Returns the number of whole cache lines this capacity holds.
    #[inline]
    pub const fn lines(self) -> u64 {
        self.0 / LINE_BYTES as u64
    }

    /// Returns the number of whole OS pages this capacity holds.
    #[inline]
    pub const fn pages(self) -> u64 {
        self.0 / PAGE_BYTES as u64
    }

    /// Scales the capacity down by an integer factor (used to shrink the
    /// paper's multi-gigabyte configuration to simulation scale).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[inline]
    pub fn scale_down(self, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be non-zero");
        Self(self.0 / factor)
    }

    /// Returns this capacity expressed in mebibytes (floating point).
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Returns this capacity expressed in gibibytes (floating point).
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;

    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;

    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;

    #[inline]
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

/// Ratio of two capacities, truncated toward zero.
impl Div for ByteSize {
    type Output = u64;

    #[inline]
    fn div(self, rhs: ByteSize) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSize({self})")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const GIB: u64 = 1024 * 1024 * 1024;
        const MIB: u64 = 1024 * 1024;
        const KIB: u64 = 1024;
        if self.0 >= GIB && self.0.is_multiple_of(GIB) {
            write!(f, "{}GiB", self.0 / GIB)
        } else if self.0 >= MIB && self.0.is_multiple_of(MIB) {
            write!(f, "{}MiB", self.0 / MIB)
        } else if self.0 >= KIB && self.0.is_multiple_of(KIB) {
            write!(f, "{}KiB", self.0 / KIB)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        Self(bytes)
    }
}

impl From<ByteSize> for u64 {
    fn from(size: ByteSize) -> u64 {
        size.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(ByteSize::from_kib(1), ByteSize::from_bytes(1024));
        assert_eq!(ByteSize::from_mib(1), ByteSize::from_kib(1024));
        assert_eq!(ByteSize::from_gib(1), ByteSize::from_mib(1024));
        assert_eq!(ByteSize::from_lines(2), ByteSize::from_bytes(128));
        assert_eq!(ByteSize::from_pages(1), ByteSize::from_kib(4));
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::from_mib(3);
        let b = ByteSize::from_mib(1);
        assert_eq!(a + b, ByteSize::from_mib(4));
        assert_eq!(a - b, ByteSize::from_mib(2));
        assert_eq!(a * 2, ByteSize::from_mib(6));
        assert_eq!(a / b, 3);
    }

    #[test]
    fn granularity_counts() {
        let s = ByteSize::from_mib(1);
        assert_eq!(s.lines(), 16384);
        assert_eq!(s.pages(), 256);
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(ByteSize::from_gib(4).to_string(), "4GiB");
        assert_eq!(ByteSize::from_mib(1536).to_string(), "1536MiB");
        assert_eq!(ByteSize::from_bytes(66).to_string(), "66B");
        assert_eq!(ByteSize::from_kib(3).to_string(), "3KiB");
    }

    #[test]
    fn scale_down_preserves_ratio() {
        let stacked = ByteSize::from_gib(4);
        let offchip = ByteSize::from_gib(12);
        let f = 64;
        assert_eq!(
            offchip.scale_down(f) / stacked.scale_down(f),
            offchip / stacked
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn scale_down_zero_panics() {
        ByteSize::from_mib(1).scale_down(0);
    }

    #[test]
    fn float_views() {
        assert!((ByteSize::from_mib(512).as_gib() - 0.5).abs() < 1e-12);
        assert!((ByteSize::from_kib(512).as_mib() - 0.5).abs() < 1e-12);
    }
}
