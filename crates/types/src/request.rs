//! Memory request descriptors exchanged between the core model, the LLC and
//! the memory organization under test.

use core::fmt;

use crate::LineAddr;

/// Identifies one of the simulated cores (the paper runs 32-core rate mode).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(pub u16);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Whether a memory request reads or writes its line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// Demand read (LLC load/ifetch miss).
    Read,
    /// Write (LLC dirty writeback or store miss).
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// The two DRAM regions of the paper's heterogeneous memory system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemKind {
    /// Die-stacked, high-bandwidth DRAM (4 GB in the paper).
    Stacked,
    /// Commodity off-chip DDR DRAM (12 GB in the paper).
    OffChip,
}

impl MemKind {
    /// Returns `true` for [`MemKind::Stacked`].
    #[inline]
    pub const fn is_stacked(self) -> bool {
        matches!(self, MemKind::Stacked)
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Stacked => f.write_str("stacked"),
            MemKind::OffChip => f.write_str("off-chip"),
        }
    }
}

/// Where a demand request was ultimately serviced; used for bandwidth and
/// predictor-accuracy accounting (Table III / Table IV of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ServiceLocation {
    /// Serviced from stacked DRAM (cache hit, or CAMEO stacked-resident).
    Stacked,
    /// Serviced from off-chip DRAM.
    OffChip,
    /// Required OS intervention (page fault to storage).
    Storage,
}

impl fmt::Display for ServiceLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceLocation::Stacked => f.write_str("stacked"),
            ServiceLocation::OffChip => f.write_str("off-chip"),
            ServiceLocation::Storage => f.write_str("storage"),
        }
    }
}

/// One post-LLC memory request: the unit of work the memory organization
/// services.
///
/// Carries the program counter of the missing instruction because CAMEO's
/// Line Location Predictor (and the Alloy Cache's hit predictor) are
/// PC-indexed.
///
/// # Examples
///
/// ```
/// use cameo_types::{Access, AccessKind, CoreId, LineAddr};
///
/// let a = Access::read(CoreId(0), LineAddr::new(0x1000), 0x401234);
/// assert!(!a.kind.is_write());
/// assert_eq!(a.line.raw(), 0x1000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Access {
    /// Core that issued the request.
    pub core: CoreId,
    /// Requested line address (post virtual-to-physical translation).
    pub line: LineAddr,
    /// Program counter of the instruction that caused the LLC miss.
    pub pc: u64,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// Convenience constructor for a demand read.
    #[inline]
    pub const fn read(core: CoreId, line: LineAddr, pc: u64) -> Self {
        Self {
            core,
            line,
            pc,
            kind: AccessKind::Read,
        }
    }

    /// Convenience constructor for a write.
    #[inline]
    pub const fn write(core: CoreId, line: LineAddr, pc: u64) -> Self {
        Self {
            core,
            line,
            pc,
            kind: AccessKind::Write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = Access::read(CoreId(1), LineAddr::new(5), 99);
        let w = Access::write(CoreId(1), LineAddr::new(5), 99);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(w.kind, AccessKind::Write);
        assert!(w.kind.is_write());
        assert!(!r.kind.is_write());
    }

    #[test]
    fn displays() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(MemKind::Stacked.to_string(), "stacked");
        assert_eq!(ServiceLocation::Storage.to_string(), "storage");
    }

    #[test]
    fn mem_kind_predicates() {
        assert!(MemKind::Stacked.is_stacked());
        assert!(!MemKind::OffChip.is_stacked());
    }
}
