//! Address newtypes at line and page granularity.
//!
//! Addresses come in two flavors that must never be confused:
//!
//! * *Requested* addresses ([`LineAddr`], [`PageAddr`]) — what the processor
//!   (after virtual-to-physical translation) asks the memory system for. The
//!   paper calls this the **Requested Address**.
//! * *Physical* addresses ([`PhysLineAddr`], [`PhysPageAddr`]) — where the
//!   data actually lives after CAMEO's hardware swapping or the OS's page
//!   migration relocated it. The paper calls this the **Physical Address**.
//!
//! Keeping the two as distinct newtypes lets the compiler catch the classic
//! relocation bug of indexing a device with a pre-translation address.

use core::fmt;

/// Bytes in one cache line (the paper's management granularity).
pub const LINE_BYTES: usize = 64;

/// Bytes in one OS page (the granularity of TLM migration).
pub const PAGE_BYTES: usize = 4096;

/// Number of cache lines in one OS page.
pub const LINES_PER_PAGE: usize = PAGE_BYTES / LINE_BYTES;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw address value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw address value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }
    };
}

addr_newtype! {
    /// A *requested* address at cache-line granularity (byte address `>> 6`).
    ///
    /// This is the address the LLC misses on, before CAMEO's Line Location
    /// Table translates it into the [`PhysLineAddr`] where the data actually
    /// resides.
    ///
    /// # Examples
    ///
    /// ```
    /// use cameo_types::LineAddr;
    ///
    /// let a = LineAddr::new(0x40);
    /// assert_eq!(a.page().raw(), 1);
    /// assert_eq!(a.offset_in_page(), 0);
    /// ```
    LineAddr
}

addr_newtype! {
    /// A *requested* address at OS-page granularity.
    PageAddr
}

addr_newtype! {
    /// A *physical* (post-relocation) address at cache-line granularity.
    ///
    /// Values below the stacked-DRAM line count index stacked DRAM; values at
    /// or above it index off-chip DRAM. See
    /// [`MemKind`](crate::MemKind) and the device split performed by the
    /// memory organization.
    PhysLineAddr
}

addr_newtype! {
    /// A *physical* (post-relocation) address at OS-page granularity.
    PhysPageAddr
}

impl LineAddr {
    /// Returns the page this line belongs to.
    #[inline]
    pub const fn page(self) -> PageAddr {
        PageAddr::new(self.0 / LINES_PER_PAGE as u64)
    }

    /// Returns the index of this line within its page (`0..64`).
    #[inline]
    pub const fn offset_in_page(self) -> usize {
        (self.0 % LINES_PER_PAGE as u64) as usize
    }

    /// Returns the byte address of the start of this line.
    #[inline]
    pub const fn byte_addr(self) -> u64 {
        self.0 * LINE_BYTES as u64
    }
}

impl PageAddr {
    /// Returns the first line of this page.
    #[inline]
    pub const fn first_line(self) -> LineAddr {
        LineAddr::new(self.0 * LINES_PER_PAGE as u64)
    }

    /// Returns the `idx`-th line of this page.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= LINES_PER_PAGE`.
    #[inline]
    pub fn line(self, idx: usize) -> LineAddr {
        assert!(idx < LINES_PER_PAGE, "line index {idx} out of page bounds");
        LineAddr::new(self.0 * LINES_PER_PAGE as u64 + idx as u64)
    }

    /// Returns the byte address of the start of this page.
    #[inline]
    pub const fn byte_addr(self) -> u64 {
        self.0 * PAGE_BYTES as u64
    }
}

impl PhysLineAddr {
    /// Returns the physical page this physical line belongs to.
    #[inline]
    pub const fn page(self) -> PhysPageAddr {
        PhysPageAddr::new(self.0 / LINES_PER_PAGE as u64)
    }
}

impl PhysPageAddr {
    /// Returns the first physical line of this physical page.
    #[inline]
    pub const fn first_line(self) -> PhysLineAddr {
        PhysLineAddr::new(self.0 * LINES_PER_PAGE as u64)
    }

    /// Returns the `idx`-th physical line of this physical page.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= LINES_PER_PAGE`.
    #[inline]
    pub fn line(self, idx: usize) -> PhysLineAddr {
        assert!(idx < LINES_PER_PAGE, "line index {idx} out of page bounds");
        PhysLineAddr::new(self.0 * LINES_PER_PAGE as u64 + idx as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_to_page_round_trip() {
        let line = LineAddr::new(65);
        assert_eq!(line.page(), PageAddr::new(1));
        assert_eq!(line.offset_in_page(), 1);
        assert_eq!(line.page().line(1), line);
    }

    #[test]
    fn page_first_line_is_offset_zero() {
        for p in [0u64, 1, 7, 123_456] {
            let page = PageAddr::new(p);
            assert_eq!(page.first_line().offset_in_page(), 0);
            assert_eq!(page.first_line().page(), page);
        }
    }

    #[test]
    fn byte_addresses() {
        assert_eq!(LineAddr::new(2).byte_addr(), 128);
        assert_eq!(PageAddr::new(2).byte_addr(), 8192);
    }

    #[test]
    #[should_panic(expected = "out of page bounds")]
    fn page_line_bounds_checked() {
        PageAddr::new(0).line(LINES_PER_PAGE);
    }

    #[test]
    fn formatting_is_hex() {
        let a = LineAddr::new(255);
        assert_eq!(format!("{a}"), "0xff");
        assert_eq!(format!("{a:?}"), "LineAddr(0xff)");
        assert_eq!(format!("{a:x}"), "ff");
        assert_eq!(format!("{a:X}"), "FF");
        assert_eq!(format!("{a:b}"), "11111111");
    }

    #[test]
    fn conversions() {
        let a: LineAddr = 42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 42);
    }

    #[test]
    fn phys_line_page_round_trip() {
        let line = PhysLineAddr::new(64 * 3 + 5);
        assert_eq!(line.page(), PhysPageAddr::new(3));
        assert_eq!(line.page().line(5), line);
        assert_eq!(line.page().first_line(), PhysLineAddr::new(192));
    }

    #[test]
    fn constants_consistent() {
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(LINE_BYTES * LINES_PER_PAGE, PAGE_BYTES);
    }
}
