//! Typed simulator events and the zero-overhead [`TraceSink`] abstraction.
//!
//! Simulation components emit [`TraceEvent`]s through a generic
//! [`TraceSink`] parameter. The default sink is [`NopSink`], whose
//! associated `ENABLED` constant is `false`: every emission site is
//! guarded by `if S::ENABLED { ... }`, so with the default sink the
//! guard is a compile-time constant and the entire tracing path — the
//! event construction included — is removed by monomorphization. An
//! armed sink (e.g. the epoch aggregator in `cameo-sim`) flips the
//! constant and receives every event with its emission cycle.
//!
//! # Examples
//!
//! ```
//! use cameo_types::{Cycle, NopSink, TraceEvent, TraceSink, VecSink};
//!
//! fn component<S: TraceSink>(now: Cycle, sink: &mut S) {
//!     if S::ENABLED {
//!         sink.emit(now, TraceEvent::Swap { group: 7 });
//!     }
//! }
//!
//! let mut nop = NopSink;              // compiles to nothing
//! component(Cycle::new(10), &mut nop);
//! let mut rec = VecSink::default();   // records everything
//! component(Cycle::new(10), &mut rec);
//! assert_eq!(rec.events.len(), 1);
//! ```

use crate::cycle::Cycle;

/// What a fault-recovery policy did in response to one unreliable read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryKind {
    /// SECDED corrected a single-bit flip on a metadata word.
    EccCorrect,
    /// A dropped response timed out and was retried.
    Retry,
    /// A dropped response was recovered by a successful retry.
    DropRecovered,
    /// Retries were exhausted; the drop went unrecovered.
    DropUnrecovered,
    /// A bit flip escaped (no ECC) and reached the consumer.
    FlipEscaped,
    /// A broken LLT entry was scrubbed (rebuilt from data lines).
    Scrub,
    /// The controller latched into degraded serial-access mode.
    Degrade,
}

impl RecoveryKind {
    /// Stable lowercase label, used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryKind::EccCorrect => "ecc_correct",
            RecoveryKind::Retry => "retry",
            RecoveryKind::DropRecovered => "drop_recovered",
            RecoveryKind::DropUnrecovered => "drop_unrecovered",
            RecoveryKind::FlipEscaped => "flip_escaped",
            RecoveryKind::Scrub => "scrub",
            RecoveryKind::Degrade => "degrade",
        }
    }
}

/// One fine-grained simulator event, emitted as it happens.
///
/// The variants cover the behaviours CAMEO's correctness and performance
/// arguments rest on: congruence-group swaps, LLT indirection probes, LLP
/// predictions with their outcome, fault-recovery actions, TLM page
/// migration batches, DRAM row-buffer outcomes, and which device serviced
/// each demand read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A congruence-group swap brought an off-chip line into stacked DRAM.
    Swap {
        /// The congruence group that swapped.
        group: u64,
    },
    /// A Line Location Table probe (LEAD read, Embedded lookup or SRAM
    /// access) resolved a group's permutation.
    LltProbe {
        /// The congruence group probed.
        group: u64,
    },
    /// A location predictor made a prediction that was then verified.
    LlpPredict {
        /// Whether the prediction matched the verified location.
        correct: bool,
    },
    /// A fault-recovery policy acted on an unreliable metadata read.
    RecoveryAction {
        /// What the policy did.
        kind: RecoveryKind,
    },
    /// An OS-level page-migration batch moved pages between regions.
    PageMigration {
        /// Pages moved in this batch.
        pages: u32,
    },
    /// Row-buffer outcome deltas of one demand access on one device.
    RowBufferOutcome {
        /// `true` for the stacked device, `false` for off-chip.
        stacked: bool,
        /// Row-buffer hits this access added.
        hits: u16,
        /// Closed-row misses this access added.
        closed: u16,
        /// Row conflicts this access added.
        conflicts: u16,
    },
    /// One demand read was serviced.
    Service {
        /// `true` when stacked DRAM serviced it, `false` for off-chip.
        stacked: bool,
    },
}

impl TraceEvent {
    /// Stable lowercase event name, used by the exporters and the
    /// trace-print lint fixtures.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Swap { .. } => "swap",
            TraceEvent::LltProbe { .. } => "llt_probe",
            TraceEvent::LlpPredict { .. } => "llp_predict",
            TraceEvent::RecoveryAction { .. } => "recovery_action",
            TraceEvent::PageMigration { .. } => "page_migration",
            TraceEvent::RowBufferOutcome { .. } => "row_buffer",
            TraceEvent::Service { .. } => "service",
        }
    }
}

/// A consumer of [`TraceEvent`]s, threaded through the simulator as a
/// generic parameter.
///
/// Implementations with `ENABLED == false` must treat [`TraceSink::emit`]
/// as unreachable; emission sites guard on the constant, so a disabled
/// sink's `emit` body is never monomorphized into the hot path.
///
/// `Send` is a supertrait: sinks live inside memory organizations, and the
/// chunked sweep engine migrates a paused organization (sink and all) to
/// whichever worker resumes its point.
pub trait TraceSink: Send {
    /// Whether emission sites should construct and emit events. A
    /// compile-time constant so the disabled path folds away entirely.
    const ENABLED: bool;

    /// Consumes one event emitted at simulated time `now`.
    fn emit(&mut self, now: Cycle, event: TraceEvent);
}

/// The default sink: tracing disabled, zero overhead.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NopSink;

impl TraceSink for NopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _now: Cycle, _event: TraceEvent) {}
}

/// A simple recording sink for tests: collects `(cycle, event)` pairs.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// Every event emitted, in emission order.
    pub events: Vec<(Cycle, TraceEvent)>,
}

impl TraceSink for VecSink {
    const ENABLED: bool = true;

    fn emit(&mut self, now: Cycle, event: TraceEvent) {
        self.events.push((now, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_sink_is_disabled() {
        const { assert!(!NopSink::ENABLED) };
        // Emit is callable and does nothing (sites never call it, but the
        // trait contract must hold if one does).
        NopSink.emit(Cycle::new(1), TraceEvent::Swap { group: 0 });
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut sink = VecSink::default();
        sink.emit(Cycle::new(5), TraceEvent::Service { stacked: true });
        sink.emit(Cycle::new(9), TraceEvent::LlpPredict { correct: false });
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].0, Cycle::new(5));
        assert_eq!(sink.events[1].1, TraceEvent::LlpPredict { correct: false });
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TraceEvent::Swap { group: 3 }.name(), "swap");
        assert_eq!(
            TraceEvent::RecoveryAction {
                kind: RecoveryKind::Scrub
            }
            .name(),
            "recovery_action"
        );
        assert_eq!(RecoveryKind::EccCorrect.label(), "ecc_correct");
        assert_eq!(RecoveryKind::Degrade.label(), "degrade");
    }
}
