//! Shared foundation types for the CAMEO reproduction.
//!
//! Every other crate in the workspace builds on the newtypes defined here:
//! addresses at line and page granularity ([`LineAddr`], [`PageAddr`]),
//! simulated time ([`Cycle`]), capacities ([`ByteSize`]), and the memory
//! request descriptor ([`Access`]) that flows from the core model through the
//! last-level cache into the memory organization under test.
//!
//! The paper simulates a physical address space made of two device regions —
//! die-stacked DRAM and commodity off-chip DRAM. [`MemKind`] names the
//! region, and the constants [`LINE_BYTES`] / [`PAGE_BYTES`] pin the paper's
//! 64-byte line and 4 KiB page granularities.
//!
//! # Examples
//!
//! ```
//! use cameo_types::{ByteSize, LineAddr, LINE_BYTES};
//!
//! let stacked = ByteSize::from_mib(64);
//! assert_eq!(stacked.lines(), 64 * 1024 * 1024 / LINE_BYTES as u64);
//! let line = LineAddr::new(12345);
//! assert_eq!(line.page().first_line().raw(), 12288);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod capacity;
mod cycle;
mod device;
mod events;
mod hash;
mod request;

pub use addr::{
    LineAddr, PageAddr, PhysLineAddr, PhysPageAddr, LINES_PER_PAGE, LINE_BYTES, PAGE_BYTES,
};
pub use capacity::ByteSize;
pub use cycle::Cycle;
pub use device::DeviceKind;
pub use events::{NopSink, RecoveryKind, TraceEvent, TraceSink, VecSink};
pub use hash::{DetBuildHasher, DetHashMap, DetHashSet, DetHasher, SplitMix64};
pub use request::{Access, AccessKind, CoreId, MemKind, ServiceLocation};
