//! A fast deterministic hasher for simulator-internal hash maps.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3 with per-process random
//! keys: HashDoS-resistant, but an order of magnitude slower than needed
//! for trusted keys, and randomized between runs. Simulator tables are
//! keyed by our own address newtypes — never attacker-controlled — and sit
//! on the per-access hot path (the page table is probed on every memory
//! access), so we use an FxHash-style multiply-and-rotate hash instead:
//! the same function rustc itself uses for its internal tables.
//!
//! Determinism note: hash values are stable across runs *and* processes,
//! which keeps iteration order reproducible. Simulator code must still
//! never let map iteration order drive simulated behaviour — that is what
//! the `deep-audit` invariants check — but a stable hasher removes the
//! randomness source entirely.
//!
//! # Examples
//!
//! ```
//! use cameo_types::{DetHashMap, PageAddr};
//!
//! let mut table: DetHashMap<PageAddr, u64> = DetHashMap::default();
//! table.insert(PageAddr::new(7), 42);
//! assert_eq!(table.get(&PageAddr::new(7)), Some(&42));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fibonacci-hashing multiplier (2^64 / φ), the same constant
/// rustc's FxHash uses to spread entropy across the word.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher: rotate, xor, multiply per word.
///
/// Not cryptographic and not DoS-resistant — use only for maps keyed by
/// trusted simulator-internal values.
#[derive(Clone, Copy, Debug, Default)]
pub struct DetHasher {
    state: u64,
}

impl DetHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // The top byte is always padding (the remainder is < 8 bytes);
            // tag it with the tail length so a short input cannot collide
            // with its zero-padded extension.
            word[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// A SplitMix64 pseudo-random stream: tiny, fast, and statistically
/// strong enough for fault sampling and retry jitter.
///
/// This is the workspace's one seeded PRNG for infrastructure-level
/// randomness (the fault injector draws from it, and the sweep harness
/// derives retry-backoff jitter from it), kept in `cameo-types` so every
/// layer shares the same deterministic stream definition. Workload
/// generation keeps using the vendored `rand` crate; this type is for
/// places that must stay dependency-free.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`); uses the high-bits multiply trick
    /// to avoid modulo bias beyond one part in 2^64.
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// `BuildHasher` for [`DetHasher`] (zero-sized, `Default`-constructible).
pub type DetBuildHasher = BuildHasherDefault<DetHasher>;

/// A `HashMap` using the deterministic fast hasher.
pub type DetHashMap<K, V> = HashMap<K, V, DetBuildHasher>;

/// A `HashSet` using the deterministic fast hasher.
pub type DetHashSet<T> = HashSet<T, DetBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = DetHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn stable_across_builders() {
        let a = DetBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        let b = DetBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_tail_lengths() {
        // A shorter input must not collide with its zero-padded extension
        // colliding trivially would be fine for correctness but is a smell.
        assert_ne!(hash_of(b"abc"), hash_of(b"abcd"));
        assert_ne!(hash_of(&[]), hash_of(&[0]));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Page tables are keyed by near-sequential page numbers; the hash
        // must not collapse them onto a few buckets.
        let mut low_bits: HashSet<u64> = HashSet::new();
        for i in 0..256u64 {
            low_bits.insert(DetBuildHasher::default().hash_one(i) & 0xFF);
        }
        assert!(low_bits.len() > 128, "only {} distinct", low_bits.len());
    }

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, second, "same seed must yield the same stream");
        let mut c = SplitMix64::new(43);
        let third: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(first, third, "different seeds must diverge");
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn map_roundtrip() {
        let mut m: DetHashMap<u64, u64> = DetHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&2997));
    }
}
