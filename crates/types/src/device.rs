//! The device-model axis of the design-comparison sweeps.

/// Which DRAM device model a design point runs on.
///
/// The organization axis ([`crate::Access`] consumers) and the device
/// axis compose orthogonally: every organization can run on the paper's
/// flat Table I devices or on a tiered-latency (TL-DRAM) stacked die.
/// The off-chip DDR device stays flat in both — tiering targets the
/// latency-critical stacked die, so organizations without one (the
/// off-chip-only baseline) are identical on both axes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DeviceKind {
    /// The paper's flat Table I devices.
    #[default]
    Flat,
    /// Tiered-latency stacked die (near/far segments per bank).
    TlDram,
}

impl DeviceKind {
    /// Short label used in sweep-point keys (e.g. `"mcf::CAMEO@tldram"`).
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::Flat => "flat",
            DeviceKind::TlDram => "tldram",
        }
    }

    /// Both device axes, in canonical sweep order.
    #[must_use]
    pub fn all() -> [DeviceKind; 2] {
        [DeviceKind::Flat, DeviceKind::TlDram]
    }

    /// Resolves a label (case-insensitively) back to its device kind.
    #[must_use]
    pub fn parse(label: &str) -> Option<DeviceKind> {
        DeviceKind::all()
            .into_iter()
            .find(|kind| kind.label().eq_ignore_ascii_case(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in DeviceKind::all() {
            assert_eq!(DeviceKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(DeviceKind::parse("TLDRAM"), Some(DeviceKind::TlDram));
        assert_eq!(DeviceKind::parse("nosuch"), None);
    }

    #[test]
    fn flat_is_default() {
        assert_eq!(DeviceKind::default(), DeviceKind::Flat);
    }
}
