//! The Line Location Predictor (paper Section V).
//!
//! The Co-Located LLT removes the table-lookup latency for stacked-resident
//! lines, but off-chip accesses still serialize behind the verifying
//! stacked probe. The LLP predicts the *physical slot* of a line — a 4-ary
//! choice in the paper's configuration, unlike the binary hit/miss
//! predictors of DRAM caches — so a predicted-off-chip access can be
//! launched in parallel.
//!
//! The predictor is a per-core table of 2-bit **Line Location Registers**
//! (LLRs) indexed by the missing instruction's address, implementing
//! *last-time prediction*: each LLR remembers the slot the LLT reported the
//! last time that instruction missed. 256 entries × 2 bits = 64 bytes per
//! core; the paper's 8 tables cost 512 bytes total.

use cameo_types::CoreId;

use crate::llt::Slot;

/// Outcome taxonomy of one prediction (paper Section V-D / Table III).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PredictionCase {
    /// Case 1: line is stacked-resident, predicted stacked. Correct.
    StackedPredictedStacked,
    /// Case 2: line is stacked-resident, predicted off-chip. Wastes
    /// off-chip bandwidth (the parallel fetch is discarded).
    StackedPredictedOffChip,
    /// Case 3: line is off-chip, predicted stacked. Pays the full
    /// serialization latency.
    OffChipPredictedStacked,
    /// Case 4: line is off-chip, predicted off-chip at the correct
    /// location. Correct — latency of the LLT lookup is hidden.
    OffChipPredictedCorrect,
    /// Case 5: line is off-chip, predicted off-chip at the wrong location.
    /// Wastes bandwidth *and* pays the serialization latency.
    OffChipPredictedWrong,
}

impl PredictionCase {
    /// Classifies a prediction against the LLT's verdict.
    pub fn classify(predicted: Slot, actual: Slot) -> Self {
        match (actual.is_stacked(), predicted.is_stacked()) {
            (true, true) => PredictionCase::StackedPredictedStacked,
            (true, false) => PredictionCase::StackedPredictedOffChip,
            (false, true) => PredictionCase::OffChipPredictedStacked,
            (false, false) if predicted == actual => PredictionCase::OffChipPredictedCorrect,
            (false, false) => PredictionCase::OffChipPredictedWrong,
        }
    }

    /// Whether the prediction was accurate (cases 1 and 4).
    #[inline]
    pub fn is_accurate(self) -> bool {
        matches!(
            self,
            PredictionCase::StackedPredictedStacked | PredictionCase::OffChipPredictedCorrect
        )
    }

    /// Whether the parallel off-chip fetch was wasted (cases 2 and 5).
    #[inline]
    pub fn wastes_bandwidth(self) -> bool {
        matches!(
            self,
            PredictionCase::StackedPredictedOffChip | PredictionCase::OffChipPredictedWrong
        )
    }

    /// Whether the access pays serialization latency (cases 3 and 5).
    #[inline]
    pub fn pays_latency(self) -> bool {
        matches!(
            self,
            PredictionCase::OffChipPredictedStacked | PredictionCase::OffChipPredictedWrong
        )
    }
}

/// Counters for the five prediction cases — the rows of the paper's
/// Table III.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PredictionCaseCounts {
    counts: [u64; 5],
}

impl PredictionCaseCounts {
    fn index(case: PredictionCase) -> usize {
        match case {
            PredictionCase::StackedPredictedStacked => 0,
            PredictionCase::StackedPredictedOffChip => 1,
            PredictionCase::OffChipPredictedStacked => 2,
            PredictionCase::OffChipPredictedCorrect => 3,
            PredictionCase::OffChipPredictedWrong => 4,
        }
    }

    /// Records one classified prediction.
    pub fn record(&mut self, case: PredictionCase) {
        self.counts[Self::index(case)] += 1;
    }

    /// Count for one case.
    pub fn count(&self, case: PredictionCase) -> u64 {
        self.counts[Self::index(case)]
    }

    /// Total predictions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of one case among all predictions, or `None` before any.
    pub fn fraction(&self, case: PredictionCase) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| self.count(case) as f64 / total as f64)
    }

    /// Overall accuracy (cases 1 + 4), or `None` before any prediction.
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| (self.counts[0] + self.counts[3]) as f64 / total as f64)
    }

    /// The raw per-case counters, in [`PredictionCase`] declaration order —
    /// for serialization (e.g. sweep checkpoints).
    pub fn to_array(&self) -> [u64; 5] {
        self.counts
    }

    /// Rebuilds counters from [`PredictionCaseCounts::to_array`] output.
    pub fn from_array(counts: [u64; 5]) -> Self {
        Self { counts }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &PredictionCaseCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }
}

/// Per-core, PC-indexed tables of Line Location Registers implementing
/// last-time location prediction.
///
/// # Examples
///
/// ```
/// use cameo::llp::LineLocationPredictor;
/// use cameo::llt::Slot;
/// use cameo_types::CoreId;
///
/// let mut llp = LineLocationPredictor::new(8, 256);
/// let (core, pc) = (CoreId(0), 0x400100);
/// assert_eq!(llp.predict(core, pc), Slot::STACKED); // cold: assume stacked
/// llp.train(core, pc, Slot::new(3));
/// assert_eq!(llp.predict(core, pc), Slot::new(3)); // last-time repeats
/// ```
#[derive(Clone, Debug)]
pub struct LineLocationPredictor {
    entries_per_core: usize,
    /// Total LLRs across all core tables (`cores * entries_per_core`);
    /// kept explicitly because `packed` rounds up to whole bytes.
    llr_count: usize,
    /// Bits per LLR: 2 when every slot the tables can ever observe fits
    /// two bits (the paper's ratio-4 configuration — host storage then
    /// matches the hardware's 2-bit LLRs exactly), 4 for the simulator's
    /// wider ratios.
    bits_per_llr: u8,
    /// Last-observed slot per (core, pc-hash), bit-packed `8 /
    /// bits_per_llr` LLRs per byte: LLR `i` lives at bit offset
    /// `(i % per_byte) * bits` of byte `i / per_byte`.
    packed: Vec<u8>,
}

impl LineLocationPredictor {
    /// Creates per-core LLR tables with nibble-wide registers (any
    /// supported ratio). Prefer [`LineLocationPredictor::for_ratio`] when
    /// the group ratio is known — at ratio ≤ 4 it halves the tables.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `entries_per_core` is not a power of
    /// two.
    pub fn new(cores: u16, entries_per_core: usize) -> Self {
        Self::with_bits(cores, entries_per_core, 4)
    }

    /// Creates per-core LLR tables sized for a congruence ratio: slots are
    /// `0..ratio`, so ratio ≤ 4 packs LLRs at the paper's true 2 bits.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `entries_per_core` is not a power of
    /// two.
    pub fn for_ratio(cores: u16, entries_per_core: usize, ratio: u8) -> Self {
        Self::with_bits(cores, entries_per_core, if ratio <= 4 { 2 } else { 4 })
    }

    fn with_bits(cores: u16, entries_per_core: usize, bits_per_llr: u8) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(
            entries_per_core.is_power_of_two(),
            "table size must be a power of two"
        );
        let llr_count = usize::from(cores) * entries_per_core;
        let per_byte = usize::from(8 / bits_per_llr);
        Self {
            entries_per_core,
            llr_count,
            bits_per_llr,
            // Slot 0 (stacked) is the cold-start prediction: serial access
            // is the safe default.
            packed: vec![0; llr_count.div_ceil(per_byte)],
        }
    }

    fn index(&self, core: CoreId, pc: u64) -> usize {
        let slot = (pc >> 2) as usize & (self.entries_per_core - 1);
        usize::from(core.0) * self.entries_per_core + slot
    }

    /// Predicts the slot for a request from `core` at instruction `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `core` exceeds the configured core count.
    pub fn predict(&self, core: CoreId, pc: u64) -> Slot {
        let idx = self.index(core, pc);
        let per_byte = usize::from(8 / self.bits_per_llr);
        let shift = (idx % per_byte) as u8 * self.bits_per_llr;
        let mask = (1u8 << self.bits_per_llr) - 1;
        Slot::new((self.packed[idx / per_byte] >> shift) & mask)
    }

    /// Trains the LLR with the slot the LLT actually reported.
    ///
    /// # Panics
    ///
    /// Panics if `core` exceeds the configured core count, or if the slot
    /// does not fit the register encoding (a slot ≥ 4 in a table built by
    /// [`LineLocationPredictor::for_ratio`] for ratio ≤ 4, or ≥ 16 in a
    /// nibble table — beyond any configuration the simulator accepts).
    pub fn train(&mut self, core: CoreId, pc: u64, actual: Slot) {
        let raw = actual.raw();
        let mask = (1u8 << self.bits_per_llr) - 1;
        assert!(
            raw <= mask,
            "slot {raw} does not fit a {}-bit packed LLR",
            self.bits_per_llr
        );
        let idx = self.index(core, pc);
        let per_byte = usize::from(8 / self.bits_per_llr);
        let shift = (idx % per_byte) as u8 * self.bits_per_llr;
        let byte = &mut self.packed[idx / per_byte];
        *byte = (*byte & !(mask << shift)) | (raw << shift);
    }

    /// Hardware storage in bytes (2 bits per LLR), the paper's "512 bytes
    /// total" claim for 8 cores × 256 entries.
    pub fn storage_bytes(&self) -> usize {
        self.llr_count * 2 / 8
    }

    /// Bits of host storage per LLR (2 at the paper's ratio, 4 otherwise).
    pub fn llr_bits(&self) -> u8 {
        self.bits_per_llr
    }

    /// Entries per core table.
    pub fn entries_per_core(&self) -> usize {
        self.entries_per_core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let s = Slot::STACKED;
        let a = Slot::new(1);
        let b = Slot::new(2);
        use PredictionCase::*;
        assert_eq!(PredictionCase::classify(s, s), StackedPredictedStacked);
        assert_eq!(PredictionCase::classify(a, s), StackedPredictedOffChip);
        assert_eq!(PredictionCase::classify(s, a), OffChipPredictedStacked);
        assert_eq!(PredictionCase::classify(a, a), OffChipPredictedCorrect);
        assert_eq!(PredictionCase::classify(b, a), OffChipPredictedWrong);
    }

    #[test]
    fn case_consequences() {
        use PredictionCase::*;
        assert!(StackedPredictedStacked.is_accurate());
        assert!(OffChipPredictedCorrect.is_accurate());
        assert!(StackedPredictedOffChip.wastes_bandwidth());
        assert!(OffChipPredictedWrong.wastes_bandwidth());
        assert!(OffChipPredictedStacked.pays_latency());
        assert!(OffChipPredictedWrong.pays_latency());
        assert!(!StackedPredictedStacked.pays_latency());
        assert!(!OffChipPredictedCorrect.wastes_bandwidth());
    }

    #[test]
    fn counts_and_accuracy() {
        let mut c = PredictionCaseCounts::default();
        assert_eq!(c.accuracy(), None);
        c.record(PredictionCase::StackedPredictedStacked);
        c.record(PredictionCase::StackedPredictedStacked);
        c.record(PredictionCase::OffChipPredictedCorrect);
        c.record(PredictionCase::OffChipPredictedWrong);
        assert_eq!(c.total(), 4);
        assert_eq!(c.accuracy(), Some(0.75));
        assert_eq!(
            c.fraction(PredictionCase::OffChipPredictedWrong),
            Some(0.25)
        );
        let mut d = PredictionCaseCounts::default();
        d.merge(&c);
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn last_time_prediction() {
        let mut llp = LineLocationPredictor::new(2, 64);
        let core = CoreId(1);
        llp.train(core, 0x100, Slot::new(2));
        assert_eq!(llp.predict(core, 0x100), Slot::new(2));
        llp.train(core, 0x100, Slot::new(0));
        assert_eq!(llp.predict(core, 0x100), Slot::STACKED);
    }

    #[test]
    fn tables_are_per_core() {
        let mut llp = LineLocationPredictor::new(2, 64);
        llp.train(CoreId(0), 0x100, Slot::new(3));
        assert_eq!(llp.predict(CoreId(0), 0x100), Slot::new(3));
        assert_eq!(llp.predict(CoreId(1), 0x100), Slot::STACKED);
    }

    #[test]
    fn pcs_alias_by_table_size() {
        let mut llp = LineLocationPredictor::new(1, 4);
        // pc >> 2 masked by 3: 0x10 and 0x20 share index 0 and 0? 0x10>>2=4
        // &3=0; 0x20>>2=8&3=0 — aliases.
        llp.train(CoreId(0), 0x10, Slot::new(1));
        assert_eq!(llp.predict(CoreId(0), 0x20), Slot::new(1));
    }

    #[test]
    fn paper_storage_claim() {
        let llp = LineLocationPredictor::new(8, 256);
        assert_eq!(llp.storage_bytes(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        LineLocationPredictor::new(1, 100);
    }

    #[test]
    fn ratio_sized_tables_pick_register_width() {
        assert_eq!(LineLocationPredictor::for_ratio(8, 256, 2).llr_bits(), 2);
        assert_eq!(LineLocationPredictor::for_ratio(8, 256, 4).llr_bits(), 2);
        assert_eq!(LineLocationPredictor::for_ratio(8, 256, 5).llr_bits(), 4);
        assert_eq!(LineLocationPredictor::new(8, 256).llr_bits(), 4);
        // The paper-model gauge is width-independent: 2 bits per LLR.
        assert_eq!(LineLocationPredictor::for_ratio(8, 256, 4).storage_bytes(), 512);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn two_bit_table_rejects_wide_slots() {
        let mut llp = LineLocationPredictor::for_ratio(1, 64, 4);
        llp.train(CoreId(0), 0x100, Slot::new(4));
    }

    proptest::proptest! {
        /// A 2-bit table trained only with ratio-4 slots is
        /// observation-equivalent to the nibble table over arbitrary
        /// train/predict interleavings.
        #[test]
        fn two_bit_packing_matches_nibbles(
            ops in proptest::collection::vec((0u16..3, 0u64..4096, 0u8..4), 0..300),
        ) {
            let mut narrow = LineLocationPredictor::for_ratio(3, 64, 4);
            let mut wide = LineLocationPredictor::new(3, 64);
            for (core, pc, slot) in ops {
                let core = CoreId(core);
                narrow.train(core, pc, Slot::new(slot));
                wide.train(core, pc, Slot::new(slot));
                proptest::prop_assert_eq!(narrow.predict(core, pc), wide.predict(core, pc));
                proptest::prop_assert_eq!(narrow.predict(core, pc ^ 0x40), wide.predict(core, pc ^ 0x40));
            }
        }
    }
}
