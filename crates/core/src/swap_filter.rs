//! Frequency-filtered swapping — the combination the paper sketches at the
//! end of Section VI-D: *"if page frequency information is available, CAMEO
//! can retain lines from only heavily used pages in stacked DRAM."*
//!
//! A small table of saturating page-activity counters (in the spirit of
//! CHOP's filter cache) tracks recently touched pages; a line is only
//! swapped into stacked DRAM once its page's counter crosses a threshold.
//! Cold streaming data then passes through without evicting hot lines,
//! trading some hit rate on first-touch streams for less swap churn.

use cameo_types::LineAddr;

/// How the controller decides whether an off-chip hit is worth swapping in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SwapPolicy {
    /// The paper's base CAMEO: every off-chip demand read swaps.
    #[default]
    Always,
    /// Swap only lines of pages whose recent activity crossed `threshold`
    /// (frequency information the paper assumes a page-activity tracker
    /// provides).
    HotPagesOnly {
        /// Accesses a page must accumulate before its lines are promoted.
        threshold: u8,
    },
}

/// A direct-mapped table of 6-bit page-activity counters.
///
/// Aliasing is deliberate (it is a filter, not a directory): two pages
/// sharing an entry pool their heat, which errs toward promoting — the
/// safe direction.
///
/// # Examples
///
/// ```
/// use cameo::swap_filter::PageActivityTable;
/// use cameo_types::LineAddr;
///
/// let mut table = PageActivityTable::new(1024);
/// let line = LineAddr::new(12345);
/// assert_eq!(table.record(line), 1);
/// assert_eq!(table.record(line), 2);
/// ```
#[derive(Clone, Debug)]
pub struct PageActivityTable {
    counters: Vec<u8>,
}

const COUNTER_MAX: u8 = 63;

impl PageActivityTable {
    /// Creates a table with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Self {
            counters: vec![0; entries],
        }
    }

    fn index(&self, line: LineAddr) -> usize {
        let page = line.page().raw();
        // Cheap multiplicative hash against pathological striding.
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & (self.counters.len() - 1)
    }

    /// Records one access to `line`'s page and returns the updated count.
    pub fn record(&mut self, line: LineAddr) -> u8 {
        let idx = self.index(line);
        self.counters[idx] = (self.counters[idx] + 1).min(COUNTER_MAX);
        self.counters[idx]
    }

    /// Current count for `line`'s page.
    pub fn count(&self, line: LineAddr) -> u8 {
        self.counters[self.index(line)]
    }

    /// Halves all counters (periodic decay keeps "hot" recent).
    pub fn decay(&mut self) {
        for c in &mut self.counters {
            *c /= 2;
        }
    }

    /// Storage in bits (6 bits per counter).
    pub fn storage_bits(&self) -> usize {
        self.counters.len() * 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_saturate() {
        let mut t = PageActivityTable::new(64);
        let line = LineAddr::new(99);
        for _ in 0..100 {
            t.record(line);
        }
        assert_eq!(t.count(line), COUNTER_MAX);
    }

    #[test]
    fn lines_of_same_page_share_a_counter() {
        let mut t = PageActivityTable::new(64);
        t.record(LineAddr::new(0));
        assert_eq!(t.count(LineAddr::new(63)), 1); // same page
    }

    #[test]
    fn decay_halves() {
        let mut t = PageActivityTable::new(64);
        let line = LineAddr::new(7);
        for _ in 0..8 {
            t.record(line);
        }
        t.decay();
        assert_eq!(t.count(line), 4);
    }

    #[test]
    fn storage_is_small() {
        // 1024 entries × 6 bits = 768 bytes: filter-cache scale.
        assert_eq!(PageActivityTable::new(1024).storage_bits(), 6144);
    }

    #[test]
    fn default_policy_is_always() {
        assert_eq!(SwapPolicy::default(), SwapPolicy::Always);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        PageActivityTable::new(100);
    }
}
