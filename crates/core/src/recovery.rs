//! Recovery policies for metadata faults (compiled with the `faults`
//! feature).
//!
//! The fault layer ([`cameo_memsim::faults`]) attaches faults to device
//! reads; this module decides what the controller does about them:
//!
//! * **SECDED ECC** on LLT/LEAD metadata words — detects and corrects a
//!   single flipped bit for [`ECC_CORRECT_CYCLES`] extra latency.
//! * **Bounded retry with backoff** on dropped responses — each attempt
//!   times out after [`DROP_TIMEOUT_CYCLES`] and backs off linearly.
//! * **Scrub** — when a corrupted entry reaches the table anyway, its true
//!   permutation can be re-derived from the group's data-line tags; the
//!   controller charges the tag reads and the metadata rewrite.
//! * **Graceful degradation** — after too many unrecovered events the
//!   controller stops trusting predictions and falls back to SAM-style
//!   serial access (always probe stacked first).
//!
//! [`RecoveryState`] is deliberately device-agnostic: it borrows the
//! [`FaultyDevice`] per call, so the controller can route stacked and
//! off-chip reads through one policy without fighting the borrow checker.

use cameo_memsim::faults::{DeviceFault, FaultyDevice};
use cameo_types::{Cycle, DetHashMap, RecoveryKind, TraceEvent, TraceSink};

use crate::latency_model::{DROP_TIMEOUT_CYCLES, ECC_CORRECT_CYCLES, RETRY_BACKOFF_CYCLES};
use crate::llt::LltEntry;

/// Bounded-retry parameters for dropped responses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_attempts: u32,
    /// Base backoff; attempt `n` waits `n * backoff_cycles` on top of the
    /// drop timeout.
    pub backoff_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_cycles: RETRY_BACKOFF_CYCLES,
        }
    }
}

/// Which recovery mechanisms are active.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RecoveryConfig {
    /// SECDED on metadata words: correct single-bit flips at a small
    /// latency cost.
    pub ecc: bool,
    /// Retry dropped responses; `None` gives up after the first timeout.
    pub retry: Option<RetryPolicy>,
    /// Validate entries before use and rebuild broken ones from data-line
    /// tags.
    pub scrub: bool,
    /// After this many unrecovered events, degrade to serial access.
    pub degrade_threshold: Option<u64>,
}

impl RecoveryConfig {
    /// No recovery at all: faults land unchecked (the negative control).
    pub fn none() -> Self {
        Self::default()
    }

    /// ECC on metadata plus bounded retry — the paper-faithful hardware
    /// baseline.
    pub fn ecc_only() -> Self {
        Self {
            ecc: true,
            retry: Some(RetryPolicy::default()),
            ..Self::default()
        }
    }

    /// No ECC, but broken entries are detected before use and rebuilt from
    /// tags.
    pub fn scrub_only() -> Self {
        Self {
            scrub: true,
            retry: Some(RetryPolicy::default()),
            ..Self::default()
        }
    }

    /// Everything on: ECC, retry, scrub as the second line of defense, and
    /// degradation as the last resort.
    pub fn full() -> Self {
        Self {
            ecc: true,
            retry: Some(RetryPolicy::default()),
            scrub: true,
            degrade_threshold: Some(16),
        }
    }

    /// Short label for sweep tables.
    pub fn label(&self) -> &'static str {
        match (self.ecc, self.scrub) {
            (false, false) => "none",
            (true, false) => "ecc",
            (false, true) => "scrub",
            (true, true) => "full",
        }
    }
}

/// Counters of recovery actions taken.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RecoveryStats {
    /// Metadata flips corrected by ECC.
    pub ecc_corrected: u64,
    /// Metadata flips that escaped into the table (no ECC).
    pub flips_escaped: u64,
    /// Retry attempts issued for dropped responses.
    pub retries: u64,
    /// Dropped responses eventually answered within the retry budget.
    pub drops_recovered: u64,
    /// Dropped responses abandoned after the retry budget.
    pub drops_unrecovered: u64,
    /// Corrupted entries rebuilt from data-line tags.
    pub scrubs: u64,
}

impl RecoveryStats {
    /// Events that made metadata unreliable: escaped flips and abandoned
    /// drops. Drives the degradation decision.
    pub fn unreliable_events(&self) -> u64 {
        self.flips_escaped + self.drops_unrecovered
    }
}

/// Live recovery state: configuration, counters, the degradation latch,
/// and the pre-corruption entries a scrub restores (standing in for the
/// address tags each data line physically carries).
#[derive(Clone, Debug)]
pub struct RecoveryState {
    cfg: RecoveryConfig,
    stats: RecoveryStats,
    truth: DetHashMap<u64, LltEntry>,
    degraded: bool,
}

impl RecoveryState {
    /// Creates state for one controller.
    pub fn new(cfg: RecoveryConfig) -> Self {
        Self {
            cfg,
            stats: RecoveryStats::default(),
            truth: DetHashMap::default(),
            degraded: false,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RecoveryConfig {
        &self.cfg
    }

    /// Recovery action counters.
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// Whether scrub-before-use is enabled.
    pub fn scrub_enabled(&self) -> bool {
        self.cfg.scrub
    }

    /// Whether the controller has degraded to serial access.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Notes one unreliable event; returns `true` when this event newly
    /// latched the degradation state (the caller emits the trace event).
    fn note_unreliable(&mut self) -> bool {
        if let Some(threshold) = self.cfg.degrade_threshold {
            if !self.degraded && self.stats.unreliable_events() >= threshold {
                self.degraded = true;
                return true;
            }
        }
        false
    }

    /// Reads a *metadata* line (LEAD or embedded-LLT entry) through the
    /// recovery policy. Returns the completion cycle and, when an
    /// uncorrectable flip escaped, the flipped bit the caller must apply
    /// to the in-table entry. Recovery actions taken along the way are
    /// emitted into `sink`.
    pub fn read_meta<S: TraceSink>(
        &mut self,
        dev: &mut FaultyDevice,
        now: Cycle,
        line: u64,
        bytes: u32,
        sink: &mut S,
    ) -> (Cycle, Option<u8>) {
        self.read_inner(dev, now, line, bytes, true, sink)
    }

    /// Reads a *data* line through the drop/delay recovery policy. Data
    /// lines carry their own in-band ECC, so bit flips never surface here;
    /// only transport faults (drops, delays, outages) matter.
    pub fn read_data<S: TraceSink>(
        &mut self,
        dev: &mut FaultyDevice,
        now: Cycle,
        line: u64,
        bytes: u32,
        sink: &mut S,
    ) -> Cycle {
        self.read_inner(dev, now, line, bytes, false, sink).0
    }

    fn read_inner<S: TraceSink>(
        &mut self,
        dev: &mut FaultyDevice,
        now: Cycle,
        line: u64,
        bytes: u32,
        meta: bool,
        sink: &mut S,
    ) -> (Cycle, Option<u8>) {
        let mut at = now;
        let mut attempt: u32 = 0;
        let emit = |kind: RecoveryKind, s: &mut S, when: Cycle| {
            if S::ENABLED {
                s.emit(when, TraceEvent::RecoveryAction { kind });
            }
        };
        loop {
            let done = dev.access(at, line, false, bytes);
            match dev.take_fault() {
                Some(DeviceFault::Dropped) => {
                    let budget = self.cfg.retry.map_or(0, |r| r.max_attempts);
                    if attempt < budget {
                        attempt += 1;
                        self.stats.retries += 1;
                        emit(RecoveryKind::Retry, sink, done);
                        let backoff = self.cfg.retry.map_or(0, |r| r.backoff_cycles);
                        at = done + Cycle::new(DROP_TIMEOUT_CYCLES + backoff * u64::from(attempt));
                    } else {
                        self.stats.drops_unrecovered += 1;
                        emit(RecoveryKind::DropUnrecovered, sink, done);
                        if self.note_unreliable() {
                            emit(RecoveryKind::Degrade, sink, done);
                        }
                        // Proceed with whatever stale value the controller
                        // holds; the caller's validation (scrub, audit)
                        // decides whether that is survivable.
                        return (done + Cycle::new(DROP_TIMEOUT_CYCLES), None);
                    }
                }
                Some(DeviceFault::BitFlip { bit }) if meta => {
                    if attempt > 0 {
                        self.stats.drops_recovered += 1;
                        emit(RecoveryKind::DropRecovered, sink, done);
                    }
                    if self.cfg.ecc {
                        self.stats.ecc_corrected += 1;
                        emit(RecoveryKind::EccCorrect, sink, done);
                        return (done + Cycle::new(ECC_CORRECT_CYCLES), None);
                    }
                    self.stats.flips_escaped += 1;
                    emit(RecoveryKind::FlipEscaped, sink, done);
                    if self.note_unreliable() {
                        emit(RecoveryKind::Degrade, sink, done);
                    }
                    return (done, Some(bit));
                }
                // Clean, delayed (extra latency already in `done`), outage
                // deferral, or a data-line flip absorbed by in-band ECC.
                _ => {
                    if attempt > 0 {
                        self.stats.drops_recovered += 1;
                        emit(RecoveryKind::DropRecovered, sink, done);
                    }
                    return (done, None);
                }
            }
        }
    }

    /// Records `group`'s pre-corruption entry so a later scrub can restore
    /// it (physically, the truth lives in the data lines' address tags; the
    /// map stands in for re-reading them). A group corrupted twice before
    /// scrubbing keeps its original truth.
    pub fn save_truth(&mut self, group: u64, entry: LltEntry) {
        self.truth.entry(group).or_insert(entry);
    }

    /// Removes and returns the recorded truth for `group`.
    pub fn take_truth(&mut self, group: u64) -> Option<LltEntry> {
        self.truth.remove(&group)
    }

    /// Counts one completed scrub.
    pub fn record_scrub(&mut self) {
        self.stats.scrubs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_memsim::faults::FaultConfig;
    use cameo_memsim::DramConfig;
    use cameo_types::{ByteSize, NopSink};

    fn flipping_device() -> FaultyDevice {
        let mut dev = FaultyDevice::new(DramConfig::stacked(ByteSize::from_mib(1)));
        dev.arm(
            FaultConfig {
                flip_ppm: 1_000_000,
                ..FaultConfig::default()
            },
            7,
        );
        dev
    }

    fn dropping_device(drop_ppm: u32) -> FaultyDevice {
        let mut dev = FaultyDevice::new(DramConfig::stacked(ByteSize::from_mib(1)));
        dev.arm(
            FaultConfig {
                drop_ppm,
                ..FaultConfig::default()
            },
            7,
        );
        dev
    }

    #[test]
    fn ecc_corrects_and_charges_latency() {
        let mut dev = flipping_device();
        let mut clean = FaultyDevice::new(DramConfig::stacked(ByteSize::from_mib(1)));
        let baseline = clean.read_line(Cycle::ZERO, 0);
        let mut r = RecoveryState::new(RecoveryConfig::ecc_only());
        let (done, escaped) = r.read_meta(&mut dev, Cycle::ZERO, 0, 64, &mut NopSink);
        assert_eq!(escaped, None);
        assert_eq!(done, baseline + Cycle::new(ECC_CORRECT_CYCLES));
        assert_eq!(r.stats().ecc_corrected, 1);
    }

    #[test]
    fn without_ecc_the_flip_escapes() {
        let mut dev = flipping_device();
        let mut r = RecoveryState::new(RecoveryConfig::none());
        let (_, escaped) = r.read_meta(&mut dev, Cycle::ZERO, 0, 64, &mut NopSink);
        assert!(escaped.is_some());
        assert_eq!(r.stats().flips_escaped, 1);
    }

    #[test]
    fn data_reads_ignore_flips() {
        let mut dev = flipping_device();
        let mut r = RecoveryState::new(RecoveryConfig::none());
        r.read_data(&mut dev, Cycle::ZERO, 0, 64, &mut NopSink);
        assert_eq!(r.stats().flips_escaped, 0);
        assert_eq!(r.stats().ecc_corrected, 0);
    }

    #[test]
    fn retry_recovers_intermittent_drops() {
        // 50% drop rate: with 3 retries nearly every read recovers.
        let mut dev = dropping_device(500_000);
        let mut r = RecoveryState::new(RecoveryConfig::ecc_only());
        let mut now = Cycle::ZERO;
        for i in 0..200u64 {
            let (done, _) = r.read_meta(&mut dev, now, i % 32, 64, &mut NopSink);
            now = done;
        }
        assert!(r.stats().retries > 0, "retries were exercised");
        assert!(
            r.stats().drops_recovered > r.stats().drops_unrecovered,
            "recovered {} vs unrecovered {}",
            r.stats().drops_recovered,
            r.stats().drops_unrecovered
        );
    }

    #[test]
    fn retry_pays_timeout_and_backoff() {
        let mut dev = dropping_device(1_000_000); // every response dropped
        let mut r = RecoveryState::new(RecoveryConfig {
            retry: Some(RetryPolicy {
                max_attempts: 2,
                backoff_cycles: 10,
            }),
            ..RecoveryConfig::none()
        });
        let (done, _) = r.read_meta(&mut dev, Cycle::ZERO, 0, 64, &mut NopSink);
        // 3 attempts all dropped: at least 3 timeouts of latency.
        assert!(done.raw() >= 3 * DROP_TIMEOUT_CYCLES, "done {done:?}");
        assert_eq!(r.stats().retries, 2);
        assert_eq!(r.stats().drops_unrecovered, 1);
    }

    #[test]
    fn degradation_latches_after_threshold() {
        let mut dev = dropping_device(1_000_000);
        let mut r = RecoveryState::new(RecoveryConfig {
            degrade_threshold: Some(3),
            ..RecoveryConfig::none()
        });
        assert!(!r.degraded());
        for _ in 0..3 {
            r.read_meta(&mut dev, Cycle::ZERO, 0, 64, &mut NopSink);
        }
        assert!(r.degraded(), "three unrecovered drops must degrade");
    }

    #[test]
    fn truth_round_trips_and_keeps_first_version() {
        let mut r = RecoveryState::new(RecoveryConfig::full());
        let original = LltEntry::identity(4);
        let mut later = original;
        later.promote(2);
        r.save_truth(5, original);
        r.save_truth(5, later); // second corruption: original wins
        assert_eq!(r.take_truth(5), Some(original));
        assert_eq!(r.take_truth(5), None);
    }

    #[test]
    fn preset_labels() {
        assert_eq!(RecoveryConfig::none().label(), "none");
        assert_eq!(RecoveryConfig::ecc_only().label(), "ecc");
        assert_eq!(RecoveryConfig::scrub_only().label(), "scrub");
        assert_eq!(RecoveryConfig::full().label(), "full");
    }
}
