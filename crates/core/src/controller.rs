//! The CAMEO memory controller: glues the LLT design and the location
//! predictor to the two DRAM timing models.

#[cfg(not(feature = "faults"))]
use cameo_memsim::Dram;
use cameo_memsim::DramConfig;

#[cfg(feature = "faults")]
use cameo_types::RecoveryKind;
use cameo_types::{Access, ByteSize, Cycle, LineAddr, MemKind, NopSink, TraceEvent, TraceSink};

use crate::congruence::{div31, CongruenceMap};
use crate::llp::{LineLocationPredictor, PredictionCase, PredictionCaseCounts};
use crate::llt::{LineLocationTable, Slot};
use crate::swap_filter::{PageActivityTable, SwapPolicy};

/// The device type the controller drives: the fault-injecting wrapper when
/// the `faults` feature is compiled in (inert until
/// [`Cameo::inject_faults`] arms it), the bare timing model otherwise.
#[cfg(feature = "faults")]
pub type Device = cameo_memsim::faults::FaultyDevice;

/// The device type the controller drives: the bare DRAM timing model.
#[cfg(not(feature = "faults"))]
pub type Device = Dram;

/// Transfer size of one LEAD (66 bytes of payload, moved as a burst of five
/// — 80 bytes — on the 16-byte stacked bus; paper Section IV-D).
pub const LEAD_BYTES: u32 = 66;

/// Transfer size of one data line on a device bus.
const LINE_BYTES: u32 = cameo_types::LINE_BYTES as u32;

/// Where the Line Location Table physically lives (paper Section IV-C/D).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LltDesign {
    /// Zero-latency, zero-storage oracle — an upper bound.
    Ideal,
    /// The paper's Figure 6(a) strawman: the whole table in on-chip SRAM.
    /// Lookups cost an L3-like [`SRAM_LLT_CYCLES`] before every memory
    /// access but no DRAM traffic. The paper dismisses it as impractical —
    /// the 64 MB table would displace the entire L3 — but it is the
    /// cleanest latency reference between Ideal and Embedded, so it is
    /// modeled here.
    Sram,
    /// Table stored in a reserved region of stacked DRAM; every access
    /// serializes behind the table read.
    Embedded,
    /// Entry co-located with the group's stacked data line as a LEAD; a
    /// stacked-resident access needs one probe, an off-chip access pays
    /// serialization unless predicted.
    CoLocated,
}

/// Lookup latency of the (impractical) SRAM-resident LLT: the paper notes
/// it would be "as high as the L3 cache (24 cycles)".
pub const SRAM_LLT_CYCLES: u64 = 24;

/// How the controller decides whether to launch the off-chip access in
/// parallel (paper Section V).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PredictorKind {
    /// Serial Access Memory: always probe stacked first (equivalently,
    /// always predict "stacked").
    SerialAccess,
    /// The paper's PC-indexed last-location predictor.
    Llp,
    /// Oracle that always predicts the true location.
    Perfect,
}

/// Configuration of a CAMEO memory system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CameoConfig {
    /// Stacked-DRAM capacity (defines the congruence-group count).
    pub stacked: ByteSize,
    /// Off-chip capacity; must be a multiple of `stacked`.
    pub off_chip: ByteSize,
    /// LLT hardware design.
    pub llt: LltDesign,
    /// Location-prediction scheme (only meaningful for
    /// [`LltDesign::CoLocated`]; other designs ignore it).
    pub predictor: PredictorKind,
    /// Number of cores (one predictor table each).
    pub cores: u16,
    /// LLP entries per core table (power of two).
    pub llp_entries: usize,
}

/// Activity counters of the controller, including the Table III prediction
/// taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CameoStats {
    /// Demand reads serviced.
    pub demand_reads: u64,
    /// Writes serviced.
    pub demand_writes: u64,
    /// Demand reads serviced by stacked DRAM.
    pub serviced_stacked: u64,
    /// Demand reads serviced by off-chip DRAM.
    pub serviced_off_chip: u64,
    /// Useless parallel off-chip fetches (prediction cases 2 and 5).
    pub wasted_off_chip_fetches: u64,
    /// Prediction-case counters (reads under the Co-Located design).
    pub cases: PredictionCaseCounts,
}

impl CameoStats {
    /// Fraction of demand reads serviced by stacked DRAM.
    pub fn stacked_service_rate(&self) -> Option<f64> {
        (self.demand_reads > 0).then(|| self.serviced_stacked as f64 / self.demand_reads as f64)
    }
}

/// Result of one access through the controller.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Cycle the demanded data is available.
    pub completion: Cycle,
    /// Device that serviced the demand.
    pub serviced_by: MemKind,
    /// Prediction classification, when a prediction was made.
    pub case: Option<PredictionCase>,
}

/// The CAMEO controller (paper Sections IV and V).
///
/// Owns the two DRAM devices, the LLT contents, and the predictor; exposes a
/// single [`Cameo::access`] entry point that charges all timing and swap
/// traffic.
///
/// Swap writes (install of the promoted line, writeback of the demoted
/// line, LLT update) are issued as *posted* traffic: they occupy banks and
/// buses — creating back-pressure for later accesses — but do not extend
/// the completion time of the access that triggered them, mirroring the
/// paper's use of existing writeback/fill queues.
///
/// The `S` parameter is the [`TraceSink`] receiving typed events. The
/// default [`NopSink`] has `ENABLED == false`, so every emission site —
/// guarded by `if S::ENABLED` — monomorphizes away and the untraced
/// controller is byte-for-byte the pre-tracing hot path.
#[derive(Clone, Debug)]
pub struct Cameo<S: TraceSink = NopSink> {
    config: CameoConfig,
    map: CongruenceMap,
    llt: LineLocationTable,
    llp: LineLocationPredictor,
    stacked: Device,
    off_chip: Device,
    stats: CameoStats,
    swap_policy: SwapPolicy,
    page_activity: PageActivityTable,
    accesses_since_decay: u64,
    #[cfg(feature = "faults")]
    recovery: crate::recovery::RecoveryState,
    #[cfg(feature = "deep-audit")]
    auditor: crate::audit::InvariantAuditor,
    /// LLT swap count at the last stats reset: the swap counter is mapping
    /// state and survives [`Cameo::reset_stats`], so conservation checks
    /// must compare against this baseline.
    #[cfg(feature = "deep-audit")]
    swaps_at_reset: u64,
    sink: S,
}

impl Cameo {
    /// Builds a CAMEO system with identity-mapped lines and tracing
    /// disabled (the [`NopSink`] — zero overhead).
    ///
    /// # Panics
    ///
    /// Panics if `off_chip` is not a positive multiple of `stacked`, or if
    /// the resulting ratio exceeds 8, or if `cores == 0`, or if
    /// `llp_entries` is not a power of two.
    pub fn new(config: CameoConfig) -> Self {
        Self::with_sink(config, NopSink)
    }
}

impl<S: TraceSink> Cameo<S> {
    /// Builds a CAMEO system with identity-mapped lines, emitting
    /// [`TraceEvent`]s into `sink`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Cameo::new`].
    pub fn with_sink(config: CameoConfig, sink: S) -> Self {
        Self::with_sink_on(
            config,
            DramConfig::stacked(config.stacked),
            DramConfig::off_chip(config.off_chip),
            sink,
        )
    }

    /// Builds a CAMEO system on explicit device models — the seam that
    /// lets ablations swap in non-Table-I devices (tiered-latency
    /// TL-DRAM, closed-page policies, refresh) without touching the
    /// controller. [`Cameo::with_sink`] delegates here with the paper's
    /// Table I devices.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Cameo::new`], plus the device capacities must
    /// match the controller configuration (the congruence map is sized
    /// from `config`, and a mismatched device would silently alias rows).
    pub fn with_sink_on(
        config: CameoConfig,
        stacked_dev: DramConfig,
        off_chip_dev: DramConfig,
        sink: S,
    ) -> Self {
        assert_eq!(
            stacked_dev.capacity, config.stacked,
            "stacked device capacity must match the controller configuration"
        );
        assert_eq!(
            off_chip_dev.capacity, config.off_chip,
            "off-chip device capacity must match the controller configuration"
        );
        let stacked_lines = config.stacked.lines();
        let off_lines = config.off_chip.lines();
        assert!(stacked_lines > 0, "stacked capacity must be non-zero");
        assert!(
            off_lines > 0 && off_lines.is_multiple_of(stacked_lines),
            "off-chip capacity must be a positive multiple of stacked capacity"
        );
        let ratio = 1 + off_lines / stacked_lines;
        assert!(ratio <= 8, "congruence ratio {ratio} exceeds supported 8");
        let map = CongruenceMap::new(stacked_lines, ratio as u8);
        Self {
            map,
            llt: LineLocationTable::new(map),
            llp: LineLocationPredictor::for_ratio(config.cores, config.llp_entries, ratio as u8),
            stacked: Device::new(stacked_dev),
            off_chip: Device::new(off_chip_dev),
            stats: CameoStats::default(),
            config,
            swap_policy: SwapPolicy::Always,
            #[cfg(feature = "faults")]
            recovery: crate::recovery::RecoveryState::new(crate::recovery::RecoveryConfig::none()),
            // 64 K x 6-bit counters (48 KB) — big enough that aliasing
            // does not make every page look hot at memory-scale footprints.
            page_activity: PageActivityTable::new(64 * 1024),
            accesses_since_decay: 0,
            #[cfg(feature = "deep-audit")]
            auditor: crate::audit::InvariantAuditor::sampled(),
            #[cfg(feature = "deep-audit")]
            swaps_at_reset: 0,
            sink,
        }
    }

    /// Selects the swap policy (default [`SwapPolicy::Always`]). The
    /// frequency-filtered variant is the extension the paper sketches at
    /// the end of Section VI-D.
    pub fn set_swap_policy(&mut self, policy: SwapPolicy) {
        self.swap_policy = policy;
    }

    /// The active swap policy.
    pub fn swap_policy(&self) -> SwapPolicy {
        self.swap_policy
    }

    /// Records page activity and decides whether an off-chip hit on `line`
    /// should be swapped into stacked DRAM.
    fn should_swap(&mut self, line: LineAddr) -> bool {
        self.accesses_since_decay += 1;
        if self.accesses_since_decay >= 65_536 {
            self.accesses_since_decay = 0;
            self.page_activity.decay();
        }
        let count = self.page_activity.record(line);
        match self.swap_policy {
            SwapPolicy::Always => true,
            SwapPolicy::HotPagesOnly { threshold } => count >= threshold,
        }
    }

    /// The configuration this controller was built with.
    #[inline]
    pub fn config(&self) -> &CameoConfig {
        &self.config
    }

    /// Controller counters (service locations, prediction cases).
    #[inline]
    pub fn stats(&self) -> &CameoStats {
        &self.stats
    }

    /// The stacked-DRAM device (for bandwidth accounting).
    #[inline]
    pub fn stacked(&self) -> &Device {
        &self.stacked
    }

    /// The off-chip DRAM device (for bandwidth accounting).
    #[inline]
    pub fn off_chip(&self) -> &Device {
        &self.off_chip
    }

    /// Arms both devices with seeded fault injection: the stacked device
    /// gets the full configuration (its LEAD/LLT metadata is what flips and
    /// outages threaten), the off-chip device only the transport faults
    /// (drops/delays) — its data lines are ECC-protected end to end and it
    /// holds no location metadata.
    #[cfg(feature = "faults")]
    pub fn inject_faults(&mut self, cfg: cameo_memsim::faults::FaultConfig, seed: u64) {
        self.stacked.arm(cfg, seed);
        self.off_chip
            .arm(cfg.transport_only(), seed ^ 0x5EED_F417_0FFC_419B);
    }

    /// Selects the recovery policy applied to injected faults (default
    /// [`crate::recovery::RecoveryConfig::none`]). Resets recovery
    /// counters and the degradation latch.
    #[cfg(feature = "faults")]
    pub fn set_recovery(&mut self, cfg: crate::recovery::RecoveryConfig) {
        self.recovery = crate::recovery::RecoveryState::new(cfg);
    }

    /// Counters of recovery actions taken since [`Cameo::set_recovery`].
    #[cfg(feature = "faults")]
    pub fn recovery_stats(&self) -> &crate::recovery::RecoveryStats {
        self.recovery.stats()
    }

    /// Whether the controller has degraded to serial access because
    /// metadata became unreliable.
    #[cfg(feature = "faults")]
    pub fn degraded(&self) -> bool {
        self.recovery.degraded()
    }

    /// The Line Location Table contents.
    #[inline]
    pub fn llt(&self) -> &LineLocationTable {
        &self.llt
    }

    /// Resets controller and device counters, keeping all mapping state
    /// (used when the measured region starts after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CameoStats::default();
        self.stacked.reset_stats();
        self.off_chip.reset_stats();
        #[cfg(feature = "deep-audit")]
        {
            self.swaps_at_reset = self.llt.swaps();
        }
    }

    /// Overrides the audit sampling schedule (default: sampled every
    /// [`crate::audit::DEFAULT_SAMPLE_INTERVAL`] accesses). Property tests
    /// use [`crate::audit::InvariantAuditor::always`] to audit after every
    /// access.
    #[cfg(feature = "deep-audit")]
    pub fn set_auditor(&mut self, auditor: crate::audit::InvariantAuditor) {
        self.auditor = auditor;
    }

    /// Verifies every audit invariant immediately, regardless of the
    /// sampling schedule: LLT bijections, one stacked line per group,
    /// congruence round-trip, and counter conservation.
    #[cfg(feature = "deep-audit")]
    pub fn audit_now(&self) -> Result<(), crate::audit::AuditError> {
        crate::audit::check_llt(&self.llt)?;
        crate::audit::check_congruence(&self.map)?;
        crate::audit::check_stats(&self.stats, self.llt.swaps() - self.swaps_at_reset)
    }

    /// Charges the DRAM traffic of faulting a 4 KiB page *in* at requested
    /// physical page `page_first_line`: a bulk write to the device that
    /// holds the page's identity location (all 64 lines of a page share one
    /// way, so they home to one device; individual lines that have been
    /// swapped elsewhere make this an approximation of the device split,
    /// not of the total bytes).
    pub fn bulk_page_write(&mut self, now: Cycle, page_first_line: LineAddr) {
        let group = self.map.group_of(page_first_line);
        let way = page_first_line.raw() / self.map.groups();
        if way == 0 {
            self.stacked
                .access(now, group, true, cameo_types::PAGE_BYTES as u32);
        } else {
            let dev = (way - 1) * self.map.groups() + group;
            self.off_chip
                .access(now, dev, true, cameo_types::PAGE_BYTES as u32);
        }
    }

    /// Charges the DRAM traffic of reading a dirty 4 KiB page *out* before
    /// eviction to storage. Same device-homing rule as
    /// [`Cameo::bulk_page_write`].
    pub fn bulk_page_read(&mut self, now: Cycle, page_first_line: LineAddr) {
        let group = self.map.group_of(page_first_line);
        let way = page_first_line.raw() / self.map.groups();
        if way == 0 {
            self.stacked
                .access(now, group, false, cameo_types::PAGE_BYTES as u32);
        } else {
            let dev = (way - 1) * self.map.groups() + group;
            self.off_chip
                .access(now, dev, false, cameo_types::PAGE_BYTES as u32);
        }
    }

    /// OS-visible capacity: total memory minus what the LLT design reserves
    /// (none for Ideal, `stacked/64` for Embedded — the 64 MB table of the
    /// paper's 4 GB + 12 GB system — and `stacked/32` for Co-Located, the
    /// one-line-in-32 sacrificed per row for LEAD storage).
    pub fn visible_capacity(&self) -> ByteSize {
        let total = self.config.stacked + self.config.off_chip;
        let reserve = match self.config.llt {
            // Ideal is free; SRAM spends on-chip storage, not memory space.
            LltDesign::Ideal | LltDesign::Sram => ByteSize::ZERO,
            LltDesign::Embedded => self.config.stacked.scale_down(64),
            LltDesign::CoLocated => self.config.stacked.scale_down(32),
        };
        total - reserve
    }

    /// Device line of the LEAD for `group` under the co-located layout:
    /// 31 LEADs per 32-line row, via the paper's `X + X/31` fixup
    /// (footnote 5), wrapped to the device size.
    fn lead_line(&self, group: u64) -> u64 {
        (group + div31(group)) % self.map.groups()
    }

    /// Device line of the Embedded-LLT entry for `group`: one-byte entries,
    /// 64 per line, in the reserved region at the start of the device.
    fn embedded_llt_line(&self, group: u64) -> u64 {
        group / 64
    }

    /// Services one post-LLC request, charging all timing and swap traffic.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line lies outside the visible space.
    pub fn access(&mut self, now: Cycle, access: &Access) -> AccessResult {
        debug_assert!(
            access.line.raw() < self.map.total_lines(),
            "line outside memory space"
        );
        if access.kind.is_write() {
            self.stats.demand_writes += 1;
            return self.write(now, access);
        }
        self.stats.demand_reads += 1;
        let rows_before = if S::ENABLED {
            Some((
                row_counters(self.stacked.stats()),
                row_counters(self.off_chip.stats()),
            ))
        } else {
            None
        };
        let result = match self.config.llt {
            LltDesign::Ideal => self.read_ideal(now, access.line),
            LltDesign::Sram => self.read_ideal(now + Cycle::new(SRAM_LLT_CYCLES), access.line),
            LltDesign::Embedded => self.read_embedded(now, access.line),
            LltDesign::CoLocated => self.read_co_located(now, access),
        };
        match result.serviced_by {
            MemKind::Stacked => self.stats.serviced_stacked += 1,
            MemKind::OffChip => self.stats.serviced_off_chip += 1,
        }
        if S::ENABLED {
            self.sink.emit(
                now,
                TraceEvent::Service {
                    stacked: result.serviced_by == MemKind::Stacked,
                },
            );
            if let Some((stacked_before, off_before)) = rows_before {
                self.emit_row_delta(now, true, stacked_before);
                self.emit_row_delta(now, false, off_before);
            }
        }
        #[cfg(feature = "deep-audit")]
        if self.auditor.tick() {
            if let Err(violation) = self.audit_now() {
                // An audit failure is a simulator bug; continuing would
                // corrupt every number downstream. lint: allow(no-panic)
                panic!("deep-audit: {violation}");
            }
        }
        result
    }

    /// Emits the row-buffer outcome delta one demand access produced on one
    /// device. Only called with tracing armed (`S::ENABLED`); silent when
    /// the access opened no row on that device.
    fn emit_row_delta(&mut self, now: Cycle, stacked: bool, before: (u64, u64, u64)) {
        let stats = if stacked {
            self.stacked.stats()
        } else {
            self.off_chip.stats()
        };
        let (hits, closed, conflicts) = (
            stats.row_hits - before.0,
            stats.row_closed - before.1,
            stats.row_conflicts - before.2,
        );
        if hits + closed + conflicts == 0 {
            return;
        }
        let clamp = |v: u64| u16::try_from(v).unwrap_or(u16::MAX);
        self.sink.emit(
            now,
            TraceEvent::RowBufferOutcome {
                stacked,
                hits: clamp(hits),
                closed: clamp(closed),
                conflicts: clamp(conflicts),
            },
        );
    }

    /// Performs the swap bookkeeping after an off-chip demand read: promote
    /// the line in the LLT, install it in stacked DRAM, write the displaced
    /// line to the vacated off-chip slot. `victim_in_hand` is true when the
    /// displaced line's data already arrived with a LEAD probe.
    fn swap_after_off_chip_read(
        &mut self,
        at: Cycle,
        line: LineAddr,
        group: u64,
        vacated: Slot,
        victim_in_hand: bool,
    ) {
        // Corrupted, unrepaired metadata cannot be trusted to swap: the
        // entry's inverse permutation is undefined. Leave the line where
        // it is; the audit layer (or a later scrub) reports the damage.
        #[cfg(feature = "faults")]
        if !self.llt.entry(group).is_permutation() {
            return;
        }
        let promoted = self.llt.promote(line);
        debug_assert!(promoted.is_some(), "line was off-chip; promote must swap");
        if S::ENABLED {
            self.sink.emit(at, TraceEvent::Swap { group });
        }
        if !victim_in_hand {
            // Read the displaced line out of stacked DRAM before overwriting.
            self.stacked.read_line(at, group);
        }
        match self.config.llt {
            LltDesign::Ideal | LltDesign::Sram => {
                self.stacked.write_line(at, group);
            }
            LltDesign::Embedded => {
                self.stacked.write_line(at, group);
                // Update the table entry in the reserved region.
                self.stacked.write_line(at, self.embedded_llt_line(group));
            }
            LltDesign::CoLocated => {
                // One LEAD write carries both the data and the entry.
                self.stacked
                    .access(at, self.lead_line(group), true, LEAD_BYTES);
            }
        }
        // Install the displaced line into the slot the requested line left.
        self.off_chip
            .write_line(at, self.map.device_line(group, vacated));
    }

    /// Reads the metadata line backing `group`'s LLT entry (the LEAD or
    /// the embedded-table line). With fault injection compiled in, the
    /// read goes through the recovery policy: drops are retried, flips are
    /// ECC-corrected or — when they escape — applied to the in-table entry
    /// and, if scrubbing is enabled, repaired from the group's data-line
    /// tags before the entry is trusted.
    fn meta_read(&mut self, now: Cycle, group: u64, line: u64, bytes: u32) -> Cycle {
        if S::ENABLED {
            self.sink.emit(now, TraceEvent::LltProbe { group });
        }
        #[cfg(not(feature = "faults"))]
        {
            let _ = group;
            self.stacked.access(now, line, false, bytes)
        }
        #[cfg(feature = "faults")]
        {
            let (done, escaped) =
                self.recovery
                    .read_meta(&mut self.stacked, now, line, bytes, &mut self.sink);
            if let Some(bit) = escaped {
                self.recovery.save_truth(group, self.llt.entry(group));
                self.llt.corrupt_entry_bit(group, bit);
            }
            if self.recovery.scrub_enabled() && !self.llt.entry(group).is_permutation() {
                return self.scrub_group(done, group);
            }
            done
        }
    }

    /// Rebuilds `group`'s permutation from the address tags its data lines
    /// carry: reads every slot of the group (one stacked line, `ratio - 1`
    /// off-chip lines), then rewrites the repaired metadata where the
    /// active LLT design stores it. Returns when the repaired entry is
    /// usable.
    #[cfg(feature = "faults")]
    fn scrub_group(&mut self, now: Cycle, group: u64) -> Cycle {
        let ratio = self.map.ratio();
        let mut done =
            self.recovery
                .read_data(&mut self.stacked, now, group, LINE_BYTES, &mut self.sink);
        for slot in 1..ratio {
            let line = self.map.device_line(group, Slot::new(slot));
            done = done.later(self.recovery.read_data(
                &mut self.off_chip,
                now,
                line,
                LINE_BYTES,
                &mut self.sink,
            ));
        }
        match self.config.llt {
            LltDesign::CoLocated => {
                self.stacked
                    .access(done, self.lead_line(group), true, LEAD_BYTES);
            }
            LltDesign::Embedded => {
                self.stacked.write_line(done, self.embedded_llt_line(group));
            }
            // No DRAM-resident copy to rewrite.
            LltDesign::Ideal | LltDesign::Sram => {}
        }
        let restored = self
            .recovery
            .take_truth(group)
            .expect("a scrub only triggers after a corruption that saved the entry");
        self.llt.restore_entry(group, restored);
        self.recovery.record_scrub();
        if S::ENABLED {
            self.sink.emit(
                done,
                TraceEvent::RecoveryAction {
                    kind: RecoveryKind::Scrub,
                },
            );
        }
        done
    }

    /// Demand-reads a data line from the stacked device. Under fault
    /// injection, drops/delays go through the recovery policy; data-line
    /// bit flips are absorbed by the device's in-band ECC.
    fn stacked_data_read(&mut self, now: Cycle, line: u64) -> Cycle {
        #[cfg(not(feature = "faults"))]
        {
            self.stacked.read_line(now, line)
        }
        #[cfg(feature = "faults")]
        {
            self.recovery
                .read_data(&mut self.stacked, now, line, LINE_BYTES, &mut self.sink)
        }
    }

    /// Demand-reads a data line from the off-chip device (same recovery
    /// semantics as [`Cameo::stacked_data_read`]).
    fn off_chip_data_read(&mut self, now: Cycle, line: u64) -> Cycle {
        #[cfg(not(feature = "faults"))]
        {
            self.off_chip.read_line(now, line)
        }
        #[cfg(feature = "faults")]
        {
            self.recovery
                .read_data(&mut self.off_chip, now, line, LINE_BYTES, &mut self.sink)
        }
    }

    fn read_ideal(&mut self, now: Cycle, line: LineAddr) -> AccessResult {
        let group = self.map.group_of(line);
        let slot = self.llt.locate(line);
        if slot.is_stacked() {
            AccessResult {
                completion: self.stacked_data_read(now, group),
                serviced_by: MemKind::Stacked,
                case: None,
            }
        } else {
            let completion = self.off_chip_data_read(now, self.map.device_line(group, slot));
            if self.should_swap(line) {
                self.swap_after_off_chip_read(now, line, group, slot, false);
            }
            AccessResult {
                completion,
                serviced_by: MemKind::OffChip,
                case: None,
            }
        }
    }

    fn read_embedded(&mut self, now: Cycle, line: LineAddr) -> AccessResult {
        let group = self.map.group_of(line);
        let table_line = self.embedded_llt_line(group);
        let lookup_done = self.meta_read(now, group, table_line, LINE_BYTES);
        let slot = self.llt.locate(line);
        if slot.is_stacked() {
            AccessResult {
                completion: self.stacked_data_read(lookup_done, group),
                serviced_by: MemKind::Stacked,
                case: None,
            }
        } else {
            let completion =
                self.off_chip_data_read(lookup_done, self.map.device_line(group, slot));
            if self.should_swap(line) {
                self.swap_after_off_chip_read(lookup_done, line, group, slot, false);
            }
            AccessResult {
                completion,
                serviced_by: MemKind::OffChip,
                case: None,
            }
        }
    }

    fn read_co_located(&mut self, now: Cycle, access: &Access) -> AccessResult {
        let line = access.line;
        let group = self.map.group_of(line);
        let predicted = match self.config.predictor {
            PredictorKind::SerialAccess => Slot::STACKED,
            PredictorKind::Llp => self.llp.predict(access.core, access.pc),
            PredictorKind::Perfect => self.llt.locate(line),
        };
        // Once metadata has proven unreliable, stop trusting predictions:
        // probe stacked first like SAM and never launch parallel fetches.
        #[cfg(feature = "faults")]
        let predicted = if self.recovery.degraded() {
            Slot::STACKED
        } else {
            predicted
        };
        // Clamp predictions outside this configuration's ratio (can happen
        // when a smaller ratio reuses a trained table) to serial access.
        let predicted = if predicted.raw() >= self.map.ratio() {
            Slot::STACKED
        } else {
            predicted
        };

        // The verifying LEAD probe always happens; it is the read that
        // returns the entry, so the true location is resolved after it —
        // including any corruption or scrub the probe suffered. The probe
        // and the parallel fetch below both issue at `now` on independent
        // devices, so code order does not affect timing.
        let lead = self.lead_line(group);
        let probe_done = self.meta_read(now, group, lead, LEAD_BYTES);
        let actual = self.llt.locate(line);
        let case = PredictionCase::classify(predicted, actual);
        self.stats.cases.record(case);
        if S::ENABLED {
            self.sink.emit(
                now,
                TraceEvent::LlpPredict {
                    correct: case.is_accurate(),
                },
            );
        }
        if case.wastes_bandwidth() {
            self.stats.wasted_off_chip_fetches += 1;
        }
        if matches!(self.config.predictor, PredictorKind::Llp) {
            self.llp.train(access.core, access.pc, actual);
        }

        // A predicted-off-chip fetch launches in parallel with the probe.
        // A fetch the LLT verification disproves is squashed at the bank
        // queue: it wastes bus bandwidth (Table IV) but does not hold a
        // bank against later demand reads.
        let parallel_fetch = (!predicted.is_stacked()).then(|| {
            let target = self.map.device_line(group, predicted);
            if case == PredictionCase::OffChipPredictedCorrect {
                self.off_chip_data_read(now, target)
            } else {
                self.off_chip.read_squashed(now, target)
            }
        });

        let (completion, serviced_by) = match case {
            PredictionCase::StackedPredictedStacked | PredictionCase::StackedPredictedOffChip => {
                (probe_done, MemKind::Stacked)
            }
            PredictionCase::OffChipPredictedCorrect => {
                let fetch = parallel_fetch.expect("off-chip prediction fetched");
                // Data usable once the LLT entry has verified the prediction.
                (probe_done.later(fetch), MemKind::OffChip)
            }
            PredictionCase::OffChipPredictedStacked | PredictionCase::OffChipPredictedWrong => {
                // Serialized correct fetch after the probe reveals the slot.
                let fetch =
                    self.off_chip_data_read(probe_done, self.map.device_line(group, actual));
                (fetch, MemKind::OffChip)
            }
        };
        if serviced_by == MemKind::OffChip && self.should_swap(line) {
            // The LEAD probe already delivered the displaced line's data.
            self.swap_after_off_chip_read(now, line, group, actual, true);
        }
        AccessResult {
            completion,
            serviced_by,
            case: Some(case),
        }
    }

    /// Writes (LLC dirty writebacks) update the line in place — a line
    /// being evicted from the LLC is not evidence of reuse, so CAMEO does
    /// not promote on writes.
    fn write(&mut self, now: Cycle, access: &Access) -> AccessResult {
        let line = access.line;
        let group = self.map.group_of(line);
        let slot = self.llt.locate(line);
        // The write's location lookup is free training data for the LLP.
        if matches!(self.config.predictor, PredictorKind::Llp) {
            self.llp.train(access.core, access.pc, slot);
        }
        let (completion, serviced_by) = match self.config.llt {
            LltDesign::Ideal | LltDesign::Sram => {
                let start = if self.config.llt == LltDesign::Sram {
                    now + Cycle::new(SRAM_LLT_CYCLES)
                } else {
                    now
                };
                if slot.is_stacked() {
                    (self.stacked.write_line(start, group), MemKind::Stacked)
                } else {
                    (
                        self.off_chip
                            .write_line(start, self.map.device_line(group, slot)),
                        MemKind::OffChip,
                    )
                }
            }
            LltDesign::Embedded => {
                let table_line = self.embedded_llt_line(group);
                let lookup = self.meta_read(now, group, table_line, LINE_BYTES);
                if slot.is_stacked() {
                    (self.stacked.write_line(lookup, group), MemKind::Stacked)
                } else {
                    (
                        self.off_chip
                            .write_line(lookup, self.map.device_line(group, slot)),
                        MemKind::OffChip,
                    )
                }
            }
            LltDesign::CoLocated => {
                // Locate by probing the LEAD, then write in place.
                let lead = self.lead_line(group);
                let probe = self.meta_read(now, group, lead, LEAD_BYTES);
                if slot.is_stacked() {
                    (
                        self.stacked
                            .access(probe, self.lead_line(group), true, LEAD_BYTES),
                        MemKind::Stacked,
                    )
                } else {
                    (
                        self.off_chip
                            .write_line(probe, self.map.device_line(group, slot)),
                        MemKind::OffChip,
                    )
                }
            }
        };
        AccessResult {
            completion,
            serviced_by,
            case: None,
        }
    }
}

/// Snapshot of one device's row-buffer outcome counters, diffed around a
/// demand access to recover that access's contribution.
fn row_counters(stats: &cameo_memsim::DramStats) -> (u64, u64, u64) {
    (stats.row_hits, stats.row_closed, stats.row_conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::CoreId;

    fn cameo(llt: LltDesign, predictor: PredictorKind) -> Cameo {
        Cameo::new(CameoConfig {
            stacked: ByteSize::from_kib(64), // 1024 lines
            off_chip: ByteSize::from_kib(192),
            llt,
            predictor,
            cores: 2,
            llp_entries: 64,
        })
    }

    fn read(line: u64) -> Access {
        Access::read(CoreId(0), LineAddr::new(line), 0x400000 + line * 4)
    }

    #[test]
    fn ratio_and_visibility() {
        let c = cameo(LltDesign::CoLocated, PredictorKind::Llp);
        assert_eq!(c.map.ratio(), 4);
        assert_eq!(
            c.visible_capacity(),
            ByteSize::from_kib(256) - ByteSize::from_kib(2)
        );
        let e = cameo(LltDesign::Embedded, PredictorKind::SerialAccess);
        assert_eq!(
            e.visible_capacity(),
            ByteSize::from_kib(256) - ByteSize::from_kib(1)
        );
        let i = cameo(LltDesign::Ideal, PredictorKind::Perfect);
        assert_eq!(i.visible_capacity(), ByteSize::from_kib(256));
    }

    #[test]
    fn off_chip_read_swaps_line_in() {
        let mut c = cameo(LltDesign::Ideal, PredictorKind::SerialAccess);
        let line = 2048; // way 2, group 0
        let r1 = c.access(Cycle::ZERO, &read(line));
        assert_eq!(r1.serviced_by, MemKind::OffChip);
        // Second access to the same line is now stacked-resident.
        let r2 = c.access(r1.completion, &read(line));
        assert_eq!(r2.serviced_by, MemKind::Stacked);
        assert_eq!(c.llt().swaps(), 1);
        // The displaced line (way 0, group 0) is now off-chip at slot 2.
        let r3 = c.access(r2.completion, &read(0));
        assert_eq!(r3.serviced_by, MemKind::OffChip);
    }

    #[test]
    fn stacked_read_is_faster_than_off_chip() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::SerialAccess);
        let hit = c.access(Cycle::ZERO, &read(5)).completion;
        let mut c2 = cameo(LltDesign::CoLocated, PredictorKind::SerialAccess);
        let miss = c2.access(Cycle::ZERO, &read(5 + 2048)).completion;
        assert!(hit < miss, "hit {hit:?} vs miss {miss:?}");
    }

    #[test]
    fn embedded_serializes_even_hits() {
        let mut e = cameo(LltDesign::Embedded, PredictorKind::SerialAccess);
        let mut cl = cameo(LltDesign::CoLocated, PredictorKind::SerialAccess);
        let hit_embedded = e.access(Cycle::ZERO, &read(5)).completion;
        let hit_colocated = cl.access(Cycle::ZERO, &read(5)).completion;
        assert!(hit_colocated < hit_embedded);
    }

    #[test]
    fn perfect_prediction_hides_serialization() {
        let line = 7 + 1024; // off-chip way 1
        let mut serial = cameo(LltDesign::CoLocated, PredictorKind::SerialAccess);
        let mut perfect = cameo(LltDesign::CoLocated, PredictorKind::Perfect);
        let t_serial = serial.access(Cycle::ZERO, &read(line)).completion;
        let t_perfect = perfect.access(Cycle::ZERO, &read(line)).completion;
        assert!(t_perfect < t_serial);
        assert_eq!(
            perfect
                .stats()
                .cases
                .count(PredictionCase::OffChipPredictedCorrect),
            1
        );
        assert_eq!(perfect.stats().cases.accuracy(), Some(1.0));
    }

    #[test]
    fn llp_learns_last_location() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::Llp);
        // Same PC touches two off-chip lines of different groups, same way:
        // after the first (mispredicted serial), the second is predicted.
        let a = Access::read(CoreId(0), LineAddr::new(1024 + 1), 0x88);
        let b = Access::read(CoreId(0), LineAddr::new(1024 + 2), 0x88);
        let r1 = c.access(Cycle::ZERO, &a);
        assert_eq!(r1.case, Some(PredictionCase::OffChipPredictedStacked));
        let r2 = c.access(r1.completion, &b);
        assert_eq!(r2.case, Some(PredictionCase::OffChipPredictedCorrect));
    }

    #[test]
    fn wrong_off_chip_prediction_counts_waste() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::Llp);
        // Train PC to slot 1, then access a line residing at slot 2.
        let train = Access::read(CoreId(0), LineAddr::new(1024), 0x44); // way 1
        let r1 = c.access(Cycle::ZERO, &train);
        assert_eq!(r1.serviced_by, MemKind::OffChip);
        let other = Access::read(CoreId(0), LineAddr::new(2048 + 5), 0x44); // way 2
        let r2 = c.access(r1.completion, &other);
        assert_eq!(r2.case, Some(PredictionCase::OffChipPredictedWrong));
        assert_eq!(c.stats().wasted_off_chip_fetches, 1);
    }

    #[test]
    fn stacked_resident_wrong_prediction_wastes_bandwidth_only() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::Llp);
        // Train PC to an off-chip slot...
        let r1 = c.access(
            Cycle::ZERO,
            &Access::read(CoreId(0), LineAddr::new(1024), 0x44),
        );
        // ...then access a stacked-resident line with the same PC.
        let r2 = c.access(
            r1.completion,
            &Access::read(CoreId(0), LineAddr::new(7), 0x44),
        );
        assert_eq!(r2.case, Some(PredictionCase::StackedPredictedOffChip));
        assert_eq!(r2.serviced_by, MemKind::Stacked);
    }

    #[test]
    fn writes_do_not_promote() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::SerialAccess);
        let w = Access::write(CoreId(0), LineAddr::new(1024 + 9), 0x10);
        let r = c.access(Cycle::ZERO, &w);
        assert_eq!(r.serviced_by, MemKind::OffChip);
        assert_eq!(c.llt().swaps(), 0);
        assert_eq!(c.stats().demand_writes, 1);
        // Still off-chip on a subsequent read.
        let rd = c.access(r.completion, &read(1024 + 9));
        assert_eq!(rd.serviced_by, MemKind::OffChip);
    }

    #[test]
    fn service_counters_partition_reads() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::Llp);
        let mut now = Cycle::ZERO;
        for i in 0..50u64 {
            let r = c.access(now, &read(i * 37 % 4096));
            now = r.completion;
        }
        let s = c.stats();
        assert_eq!(s.demand_reads, 50);
        assert_eq!(s.serviced_stacked + s.serviced_off_chip, 50);
        assert_eq!(s.cases.total(), 50);
    }

    #[test]
    fn swap_traffic_reaches_devices() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::SerialAccess);
        c.access(Cycle::ZERO, &read(1024)); // off-chip: swap
                                            // Stacked: LEAD probe (read) + LEAD install (write).
        assert_eq!(c.stacked().stats().demand_reads, 1);
        assert_eq!(c.stacked().stats().writes, 1);
        // Off-chip: demand read + displaced-line install.
        assert_eq!(c.off_chip().stats().demand_reads, 1);
        assert_eq!(c.off_chip().stats().writes, 1);
    }

    #[test]
    fn ideal_swap_reads_victim() {
        let mut c = cameo(LltDesign::Ideal, PredictorKind::SerialAccess);
        c.access(Cycle::ZERO, &read(1024));
        // Victim must be read out of stacked before being overwritten.
        assert_eq!(c.stacked().stats().demand_reads, 1);
        assert_eq!(c.stacked().stats().writes, 1);
    }

    #[test]
    fn embedded_write_serializes_behind_lookup() {
        let mut e = cameo(LltDesign::Embedded, PredictorKind::SerialAccess);
        let mut i = cameo(LltDesign::Ideal, PredictorKind::SerialAccess);
        let w = Access::write(CoreId(0), LineAddr::new(5), 0x10);
        let t_embedded = e.access(Cycle::ZERO, &w).completion;
        let t_ideal = i.access(Cycle::ZERO, &w).completion;
        assert!(t_embedded > t_ideal, "{t_embedded:?} !> {t_ideal:?}");
        // The lookup is a stacked read even though the payload is a write.
        assert_eq!(e.stacked().stats().demand_reads, 1);
    }

    #[test]
    fn bulk_page_traffic_routes_by_way() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::Llp);
        // Way 0 page: stacked device.
        c.bulk_page_write(Cycle::ZERO, LineAddr::new(0));
        assert_eq!(c.stacked().stats().bytes_written, 4096);
        assert_eq!(c.off_chip().stats().bytes_written, 0);
        // Way 2 page: off-chip device.
        c.bulk_page_write(Cycle::ZERO, LineAddr::new(2048));
        assert_eq!(c.off_chip().stats().bytes_written, 4096);
        // Reads likewise.
        c.bulk_page_read(Cycle::ZERO, LineAddr::new(1024));
        assert_eq!(c.off_chip().stats().bytes_read, 4096);
        c.bulk_page_read(Cycle::ZERO, LineAddr::new(64));
        assert_eq!(c.stacked().stats().bytes_read, 4096);
    }

    #[test]
    fn reset_stats_preserves_llt_state() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::SerialAccess);
        let r = c.access(Cycle::ZERO, &read(1024));
        assert_eq!(r.serviced_by, MemKind::OffChip);
        c.reset_stats();
        assert_eq!(c.stats().demand_reads, 0);
        assert_eq!(c.stacked().stats().accesses(), 0);
        // The promoted line is still stacked-resident.
        let r2 = c.access(Cycle::new(1), &read(1024));
        assert_eq!(r2.serviced_by, MemKind::Stacked);
        assert_eq!(c.llt().swaps(), 1); // swap count is mapping state, kept
    }

    #[test]
    fn llp_trains_on_writes() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::Llp);
        // A write locates an off-chip line (no promotion), teaching the LLP.
        let w = Access::write(CoreId(0), LineAddr::new(1024 + 7), 0x60);
        c.access(Cycle::ZERO, &w);
        // A read from the same PC to a line at the same slot is predicted.
        let r = c.access(
            Cycle::new(1000),
            &Access::read(CoreId(0), LineAddr::new(1024 + 8), 0x60),
        );
        assert_eq!(r.case, Some(PredictionCase::OffChipPredictedCorrect));
    }

    #[test]
    fn squashed_speculation_still_counts_waste() {
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::Llp);
        // Train to off-chip slot 1, then touch a stacked-resident line from
        // the same PC: the wasted fetch consumes off-chip read bandwidth.
        let r1 = c.access(
            Cycle::ZERO,
            &Access::read(CoreId(0), LineAddr::new(1024), 0x44),
        );
        let before = c.off_chip().stats().bytes_read;
        let r2 = c.access(
            r1.completion,
            &Access::read(CoreId(0), LineAddr::new(3), 0x44),
        );
        assert_eq!(r2.case, Some(PredictionCase::StackedPredictedOffChip));
        assert!(c.off_chip().stats().bytes_read > before);
        assert_eq!(c.stats().wasted_off_chip_fetches, 1);
    }

    #[test]
    fn hot_pages_only_filters_cold_swaps() {
        use crate::swap_filter::SwapPolicy;
        let mut c = cameo(LltDesign::CoLocated, PredictorKind::SerialAccess);
        c.set_swap_policy(SwapPolicy::HotPagesOnly { threshold: 3 });
        let line = 1024 + 9;
        // First two reads: page not hot yet — serviced off-chip, no swap.
        let r1 = c.access(Cycle::ZERO, &read(line));
        let r2 = c.access(r1.completion, &read(line));
        assert_eq!(r2.serviced_by, MemKind::OffChip);
        assert_eq!(c.llt().swaps(), 0);
        // Third read crosses the threshold: the line is promoted.
        let r3 = c.access(r2.completion, &read(line));
        assert_eq!(r3.serviced_by, MemKind::OffChip); // promoted *after* service
        let r4 = c.access(r3.completion, &read(line));
        assert_eq!(r4.serviced_by, MemKind::Stacked);
        assert_eq!(c.llt().swaps(), 1);
    }

    #[test]
    fn sram_llt_between_ideal_and_embedded() {
        let hit_latency = |llt| {
            let mut c = cameo(llt, PredictorKind::SerialAccess);
            c.access(Cycle::ZERO, &read(5)).completion.raw()
        };
        let ideal = hit_latency(LltDesign::Ideal);
        let sram = hit_latency(LltDesign::Sram);
        assert_eq!(sram, ideal + SRAM_LLT_CYCLES);
        // For an off-chip line the SRAM lookup (24 cycles) beats the
        // Embedded design's DRAM lookup (~40 cycles).
        let miss_latency = |llt| {
            let mut c = cameo(llt, PredictorKind::SerialAccess);
            c.access(Cycle::ZERO, &read(5 + 1024)).completion.raw()
        };
        assert!(
            miss_latency(LltDesign::Sram) < miss_latency(LltDesign::Embedded),
            "sram miss {} !< embedded miss {}",
            miss_latency(LltDesign::Sram),
            miss_latency(LltDesign::Embedded)
        );
        // SRAM spends no memory capacity.
        let c = cameo(LltDesign::Sram, PredictorKind::SerialAccess);
        assert_eq!(c.visible_capacity(), ByteSize::from_kib(256));
    }

    #[test]
    fn always_policy_is_default() {
        let c = cameo(LltDesign::CoLocated, PredictorKind::Llp);
        assert_eq!(c.swap_policy(), crate::swap_filter::SwapPolicy::Always);
    }

    #[test]
    #[should_panic(expected = "multiple of stacked")]
    fn non_multiple_capacity_rejected() {
        Cameo::new(CameoConfig {
            stacked: ByteSize::from_kib(64),
            off_chip: ByteSize::from_kib(100),
            llt: LltDesign::Ideal,
            predictor: PredictorKind::SerialAccess,
            cores: 1,
            llp_entries: 64,
        });
    }
}
