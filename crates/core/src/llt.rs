//! The Line Location Table (paper Section IV-B): per-group permutation of
//! line locations.
//!
//! Each congruence group's entry records, for every way of the group, the
//! physical *slot* the way's line currently occupies. Slot 0 is the group's
//! stacked-DRAM location; slots `1..ratio` are its off-chip locations. The
//! entry is always a permutation — swapping preserves the
//! exactly-one-copy-of-every-line invariant that distinguishes CAMEO from a
//! cache.

use cameo_types::LineAddr;

use crate::congruence::CongruenceMap;

/// A physical slot within a congruence group. Slot 0 is stacked DRAM.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Slot(u8);

impl Slot {
    /// The stacked-DRAM slot of every group.
    pub const STACKED: Slot = Slot(0);

    /// Wraps a raw slot index.
    #[inline]
    pub const fn new(raw: u8) -> Self {
        Self(raw)
    }

    /// Returns the raw slot index.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Whether this is the group's stacked-DRAM slot.
    #[inline]
    pub const fn is_stacked(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_stacked() {
            f.write_str("slot0(stacked)")
        } else {
            write!(f, "slot{}(off-chip)", self.0)
        }
    }
}

/// One LLT entry: the way→slot permutation of a congruence group, packed
/// four bits per way (supports ratios up to 8; the paper's configuration
/// uses ratio 4 with two bits per way and one byte per entry).
///
/// # Examples
///
/// ```
/// use cameo::llt::{LltEntry, Slot};
///
/// let mut e = LltEntry::identity(4);
/// assert_eq!(e.slot_of(2), Slot::new(2));
/// e.promote(2); // swap way 2 into the stacked slot
/// assert_eq!(e.slot_of(2), Slot::STACKED);
/// assert_eq!(e.slot_of(0), Slot::new(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LltEntry {
    packed: u32,
    ratio: u8,
}

impl LltEntry {
    /// The identity permutation: way `i` at slot `i`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= ratio <= 8`.
    pub fn identity(ratio: u8) -> Self {
        assert!((2..=8).contains(&ratio), "ratio must be in 2..=8");
        let mut packed = 0u32;
        for way in 0..ratio {
            packed |= u32::from(way) << (way * 4);
        }
        Self { packed, ratio }
    }

    /// Ways in this entry's group.
    #[inline]
    pub fn ratio(&self) -> u8 {
        self.ratio
    }

    /// Physical slot of `way`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `way` is out of range.
    #[inline]
    pub fn slot_of(&self, way: u8) -> Slot {
        debug_assert!(way < self.ratio, "way out of range");
        Slot(((self.packed >> (way * 4)) & 0xF) as u8)
    }

    /// Way currently occupying `slot` (the inverse permutation).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn way_at(&self, slot: Slot) -> u8 {
        assert!(slot.0 < self.ratio, "slot out of range");
        (0..self.ratio)
            .find(|&w| self.slot_of(w) == slot)
            .expect("entry is a permutation")
    }

    fn set_slot(&mut self, way: u8, slot: Slot) {
        let shift = way * 4;
        self.packed = (self.packed & !(0xF << shift)) | (u32::from(slot.0) << shift);
    }

    /// Swaps `way` into the stacked slot (slot 0), displacing whichever way
    /// was there into `way`'s old slot. Returns the displaced way and the
    /// slot it moved to.
    ///
    /// Calling this on a way already in the stacked slot is a no-op and
    /// returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn promote(&mut self, way: u8) -> Option<(u8, Slot)> {
        assert!(way < self.ratio, "way out of range");
        let old_slot = self.slot_of(way);
        if old_slot.is_stacked() {
            return None;
        }
        let displaced = self.way_at(Slot::STACKED);
        self.set_slot(way, Slot::STACKED);
        self.set_slot(displaced, old_slot);
        #[cfg(feature = "deep-audit")]
        assert!(
            self.is_permutation(),
            "deep-audit: promote({way}) broke the permutation invariant: {self:?}"
        );
        Some((displaced, old_slot))
    }

    /// Checks the permutation invariant (every slot held by exactly one
    /// way). Intended for tests and debug assertions.
    pub fn is_permutation(&self) -> bool {
        let mut seen = 0u16;
        for way in 0..self.ratio {
            let s = self.slot_of(way).0;
            if s >= self.ratio || seen & (1 << s) != 0 {
                return false;
            }
            seen |= 1 << s;
        }
        true
    }

    /// Flips one bit of the packed encoding, modeling a transient metadata
    /// fault that escaped correction. The index is folded into the nibbles
    /// the entry actually uses, so every flip is observable — and, because
    /// a permutation differs from every other permutation in at least two
    /// nibble values, a single-bit flip always breaks
    /// [`LltEntry::is_permutation`].
    #[cfg(feature = "faults")]
    pub fn flip_bit(&mut self, bit: u8) {
        self.packed ^= 1 << (bit % (self.ratio * 4));
    }

    /// Serializes to the byte the paper stores per entry (two bits per way,
    /// valid only for ratio ≤ 4).
    ///
    /// # Panics
    ///
    /// Panics if `ratio > 4`.
    pub fn to_paper_byte(&self) -> u8 {
        assert!(self.ratio <= 4, "paper encoding is two bits per way");
        let mut b = 0u8;
        for way in 0..self.ratio {
            b |= self.slot_of(way).0 << (way * 2);
        }
        b
    }

    /// The raw packed nibbles. The structure-of-arrays table stores only
    /// this word per group; the ratio is table-wide.
    #[inline]
    pub(crate) fn packed_bits(&self) -> u32 {
        self.packed
    }

    /// Reassembles an entry from its packed word and the table's ratio.
    #[inline]
    pub(crate) fn from_packed(packed: u32, ratio: u8) -> Self {
        Self { packed, ratio }
    }
}

/// The full Line Location Table: one entry per congruence group,
/// initialized to the identity mapping (paper Figure 5's starting state).
///
/// Storage is structure-of-arrays: the table keeps only each group's
/// packed permutation word, with the (table-wide) ratio hoisted out of
/// the per-group entries. An array-of-[`LltEntry`] costs 8 bytes per
/// group (4 packed + 1 ratio + padding); the flat `Vec<u32>` costs 4 —
/// halving the table's footprint and doubling how many groups fit per
/// cache line on the per-access `locate` path, where the simulator
/// spends most of its time. [`LltEntry`] remains the manipulation API;
/// [`LineLocationTable::entry`] materializes one *by value* on demand.
///
/// This is the *contents* of the table; where those contents physically
/// live (SRAM, a reserved stacked region, or co-located LEADs) — and what
/// latency that costs — is decided by the controller's
/// [`LltDesign`](crate::LltDesign).
#[derive(Clone, Debug)]
pub struct LineLocationTable {
    map: CongruenceMap,
    packed: Vec<u32>,
    ratio: u8,
    swaps: u64,
}

impl LineLocationTable {
    /// Creates an identity-mapped table for `map`.
    pub fn new(map: CongruenceMap) -> Self {
        let ratio = map.ratio();
        let identity = LltEntry::identity(ratio).packed_bits();
        Self {
            map,
            packed: vec![identity; map.groups() as usize],
            ratio,
            swaps: 0,
        }
    }

    /// The congruence mapping this table is built over.
    #[inline]
    pub fn congruence(&self) -> &CongruenceMap {
        &self.map
    }

    /// Total swaps performed since construction.
    #[inline]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Entry of `group`, materialized by value from the packed store.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[inline]
    pub fn entry(&self, group: u64) -> LltEntry {
        LltEntry::from_packed(self.packed[group as usize], self.ratio)
    }

    /// Physical slot of a requested line: one 4-byte word read and a
    /// nibble extract — the hot path of every post-L3 access.
    #[inline]
    pub fn locate(&self, line: LineAddr) -> Slot {
        let group = self.map.group_of(line);
        let way = self.map.way_of(line);
        Slot::new(((self.packed[group as usize] >> (way * 4)) & 0xF) as u8)
    }

    /// Swaps `line` into its group's stacked slot, returning the requested
    /// address of the displaced line and the off-chip slot it moved to, or
    /// `None` if `line` was already stacked-resident.
    pub fn promote(&mut self, line: LineAddr) -> Option<(LineAddr, Slot)> {
        let group = self.map.group_of(line);
        let way = self.map.way_of(line);
        let mut entry = self.entry(group);
        let (displaced_way, slot) = entry.promote(way)?;
        self.packed[group as usize] = entry.packed_bits();
        self.swaps += 1;
        Some((self.map.line_of(group, displaced_way), slot))
    }

    /// Corrupts one bit of `group`'s entry, modeling an uncorrected
    /// metadata fault reaching the table.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[cfg(feature = "faults")]
    pub fn corrupt_entry_bit(&mut self, group: u64, bit: u8) {
        let mut entry = self.entry(group);
        entry.flip_bit(bit);
        self.packed[group as usize] = entry.packed_bits();
    }

    /// Overwrites `group`'s entry wholesale — the final step of a scrub
    /// that re-derived the true permutation from the group's data-line
    /// tags.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range, or if `entry` was built for a
    /// different ratio than this table's.
    #[cfg(feature = "faults")]
    pub fn restore_entry(&mut self, group: u64, entry: LltEntry) {
        assert_eq!(
            entry.ratio(),
            self.ratio,
            "restored entry must match the table's ratio"
        );
        self.packed[group as usize] = entry.packed_bits();
    }

    /// Fraction of groups still in their identity mapping (useful to watch
    /// swap churn in experiments).
    pub fn identity_fraction(&self) -> f64 {
        let identity = LltEntry::identity(self.ratio).packed_bits();
        let n = self.packed.iter().filter(|&&p| p == identity).count();
        n as f64 / self.packed.len() as f64
    }

    /// Storage the table would occupy with the paper's one-byte entries.
    pub fn storage_bytes(&self) -> u64 {
        self.packed.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_entry() {
        let e = LltEntry::identity(4);
        for w in 0..4 {
            assert_eq!(e.slot_of(w), Slot::new(w));
            assert_eq!(e.way_at(Slot::new(w)), w);
        }
        assert!(e.is_permutation());
        assert_eq!(e.to_paper_byte(), 0b11_10_01_00);
    }

    #[test]
    fn promote_swaps_with_stacked() {
        let mut e = LltEntry::identity(4);
        let (displaced, slot) = e.promote(3).expect("way 3 was off-chip");
        assert_eq!(displaced, 0);
        assert_eq!(slot, Slot::new(3));
        assert_eq!(e.slot_of(3), Slot::STACKED);
        assert_eq!(e.slot_of(0), Slot::new(3));
        assert!(e.is_permutation());
        // Promoting the stacked way is a no-op.
        assert_eq!(e.promote(3), None);
    }

    #[test]
    fn figure5_request_sequence() {
        // Paper Figure 5: identity; request B (way 1) → A and B swap;
        // request D (way 3) → B and D swap; B ends at D's old slot.
        let mut e = LltEntry::identity(4);
        e.promote(1);
        assert_eq!(e.slot_of(1), Slot::STACKED); // B in stacked
        assert_eq!(e.slot_of(0), Slot::new(1)); // A at B's old slot
        e.promote(3);
        assert_eq!(e.slot_of(3), Slot::STACKED); // D in stacked
        assert_eq!(e.slot_of(1), Slot::new(3)); // B moved within off-chip
        assert_eq!(e.slot_of(0), Slot::new(1));
        assert_eq!(e.slot_of(2), Slot::new(2)); // C untouched
        assert!(e.is_permutation());
    }

    #[test]
    fn table_locate_and_promote() {
        let map = CongruenceMap::new(8, 4);
        let mut llt = LineLocationTable::new(map);
        let line = map.line_of(5, 2);
        assert_eq!(llt.locate(line), Slot::new(2));
        let (displaced, slot) = llt.promote(line).expect("off-chip line");
        assert_eq!(displaced, map.line_of(5, 0));
        assert_eq!(slot, Slot::new(2));
        assert_eq!(llt.locate(line), Slot::STACKED);
        assert_eq!(llt.locate(displaced), Slot::new(2));
        assert_eq!(llt.swaps(), 1);
    }

    #[test]
    fn identity_fraction_decreases() {
        let map = CongruenceMap::new(4, 4);
        let mut llt = LineLocationTable::new(map);
        assert_eq!(llt.identity_fraction(), 1.0);
        llt.promote(map.line_of(0, 1));
        assert_eq!(llt.identity_fraction(), 0.75);
    }

    #[test]
    fn storage_is_one_byte_per_group() {
        // At the paper's scale (64 M groups) this is the 64 MB table of
        // Section IV-C; here verified on a small instance.
        let map = CongruenceMap::new(4096, 4);
        let llt = LineLocationTable::new(map);
        assert_eq!(llt.storage_bytes(), 4096);
    }

    #[test]
    fn slot_display() {
        assert_eq!(Slot::STACKED.to_string(), "slot0(stacked)");
        assert_eq!(Slot::new(2).to_string(), "slot2(off-chip)");
    }

    #[test]
    #[should_panic(expected = "ratio must be in 2..=8")]
    fn huge_ratio_rejected() {
        LltEntry::identity(9);
    }
}
