//! The Line Location Table (paper Section IV-B): per-group permutation of
//! line locations.
//!
//! Each congruence group's entry records, for every way of the group, the
//! physical *slot* the way's line currently occupies. Slot 0 is the group's
//! stacked-DRAM location; slots `1..ratio` are its off-chip locations. The
//! entry is always a permutation — swapping preserves the
//! exactly-one-copy-of-every-line invariant that distinguishes CAMEO from a
//! cache.

use cameo_types::{DetHashMap, LineAddr};

use crate::congruence::CongruenceMap;

/// A physical slot within a congruence group. Slot 0 is stacked DRAM.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Slot(u8);

impl Slot {
    /// The stacked-DRAM slot of every group.
    pub const STACKED: Slot = Slot(0);

    /// Wraps a raw slot index.
    #[inline]
    pub const fn new(raw: u8) -> Self {
        Self(raw)
    }

    /// Returns the raw slot index.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Whether this is the group's stacked-DRAM slot.
    #[inline]
    pub const fn is_stacked(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_stacked() {
            f.write_str("slot0(stacked)")
        } else {
            write!(f, "slot{}(off-chip)", self.0)
        }
    }
}

/// One LLT entry: the way→slot permutation of a congruence group, packed
/// four bits per way (supports ratios up to 8; the paper's configuration
/// uses ratio 4 with two bits per way and one byte per entry).
///
/// # Examples
///
/// ```
/// use cameo::llt::{LltEntry, Slot};
///
/// let mut e = LltEntry::identity(4);
/// assert_eq!(e.slot_of(2), Slot::new(2));
/// e.promote(2); // swap way 2 into the stacked slot
/// assert_eq!(e.slot_of(2), Slot::STACKED);
/// assert_eq!(e.slot_of(0), Slot::new(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LltEntry {
    packed: u32,
    ratio: u8,
}

impl LltEntry {
    /// The identity permutation: way `i` at slot `i`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= ratio <= 8`.
    pub fn identity(ratio: u8) -> Self {
        assert!((2..=8).contains(&ratio), "ratio must be in 2..=8");
        let mut packed = 0u32;
        for way in 0..ratio {
            packed |= u32::from(way) << (way * 4);
        }
        Self { packed, ratio }
    }

    /// Ways in this entry's group.
    #[inline]
    pub fn ratio(&self) -> u8 {
        self.ratio
    }

    /// Physical slot of `way`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `way` is out of range.
    #[inline]
    pub fn slot_of(&self, way: u8) -> Slot {
        debug_assert!(way < self.ratio, "way out of range");
        Slot(((self.packed >> (way * 4)) & 0xF) as u8)
    }

    /// Way currently occupying `slot` (the inverse permutation).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn way_at(&self, slot: Slot) -> u8 {
        assert!(slot.0 < self.ratio, "slot out of range");
        (0..self.ratio)
            .find(|&w| self.slot_of(w) == slot)
            .expect("entry is a permutation")
    }

    fn set_slot(&mut self, way: u8, slot: Slot) {
        let shift = way * 4;
        self.packed = (self.packed & !(0xF << shift)) | (u32::from(slot.0) << shift);
    }

    /// Swaps `way` into the stacked slot (slot 0), displacing whichever way
    /// was there into `way`'s old slot. Returns the displaced way and the
    /// slot it moved to.
    ///
    /// Calling this on a way already in the stacked slot is a no-op and
    /// returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn promote(&mut self, way: u8) -> Option<(u8, Slot)> {
        assert!(way < self.ratio, "way out of range");
        let old_slot = self.slot_of(way);
        if old_slot.is_stacked() {
            return None;
        }
        let displaced = self.way_at(Slot::STACKED);
        self.set_slot(way, Slot::STACKED);
        self.set_slot(displaced, old_slot);
        #[cfg(feature = "deep-audit")]
        assert!(
            self.is_permutation(),
            "deep-audit: promote({way}) broke the permutation invariant: {self:?}"
        );
        Some((displaced, old_slot))
    }

    /// Checks the permutation invariant (every slot held by exactly one
    /// way). Intended for tests and debug assertions.
    pub fn is_permutation(&self) -> bool {
        let mut seen = 0u16;
        for way in 0..self.ratio {
            let s = self.slot_of(way).0;
            if s >= self.ratio || seen & (1 << s) != 0 {
                return false;
            }
            seen |= 1 << s;
        }
        true
    }

    /// Flips one bit of the packed encoding, modeling a transient metadata
    /// fault that escaped correction. The index is folded into the nibbles
    /// the entry actually uses, so every flip is observable — and, because
    /// a permutation differs from every other permutation in at least two
    /// nibble values, a single-bit flip always breaks
    /// [`LltEntry::is_permutation`].
    #[cfg(feature = "faults")]
    pub fn flip_bit(&mut self, bit: u8) {
        self.packed ^= 1 << (bit % (self.ratio * 4));
    }

    /// Serializes to the byte the paper stores per entry (two bits per way,
    /// valid only for ratio ≤ 4).
    ///
    /// # Panics
    ///
    /// Panics if `ratio > 4`.
    pub fn to_paper_byte(&self) -> u8 {
        assert!(self.ratio <= 4, "paper encoding is two bits per way");
        let mut b = 0u8;
        for way in 0..self.ratio {
            b |= self.slot_of(way).0 << (way * 2);
        }
        b
    }

    /// The raw packed nibbles. The structure-of-arrays table stores only
    /// this word per group; the ratio is table-wide.
    #[inline]
    pub(crate) fn packed_bits(&self) -> u32 {
        self.packed
    }

    /// Reassembles an entry from its packed word and the table's ratio.
    #[inline]
    pub(crate) fn from_packed(packed: u32, ratio: u8) -> Self {
        Self { packed, ratio }
    }
}

/// `n!` for the group sizes the table supports (`n <= 8`).
fn factorial(n: u8) -> u32 {
    (1..=u32::from(n)).product()
}

/// Decodes a Lehmer (factorial-number-system) index into the packed
/// nibble word of the permutation it names. Index 0 is the identity.
fn packed_of_lehmer(mut index: u32, ratio: u8) -> u32 {
    let mut remaining: Vec<u8> = (0..ratio).collect();
    let mut packed = 0u32;
    for way in 0..ratio {
        let base = factorial(ratio - 1 - way);
        let digit = (index / base) as usize;
        index %= base;
        let slot = remaining.remove(digit);
        packed |= u32::from(slot) << (way * 4);
    }
    packed
}

/// Bits needed to name any of the `ratio!` permutations of a group:
/// 1 bit at ratio 2, 5 bits at the paper's ratio 4, 16 bits at ratio 8.
fn lehmer_bits(ratio: u8) -> u8 {
    let max = factorial(ratio) - 1;
    if max == 0 {
        1
    } else {
        (32 - max.leading_zeros()) as u8
    }
}

/// The full Line Location Table: one entry per congruence group,
/// initialized to the identity mapping (paper Figure 5's starting state).
///
/// Storage is a *permutation-index* table: a ratio-`r` group can only ever
/// hold one of the `r!` way→slot permutations, so the store keeps a
/// Lehmer index per group — ⌈log₂ r!⌉ bits (5 bits at the paper's ratio
/// 4, against 16 for the packed nibbles and 32 for a whole word) —
/// bit-packed into a flat `Vec<u64>`. A table-wide decode LUT (`r!`
/// entries, ≤ 160 KiB at ratio 8) turns an index back into the packed
/// nibble word in one load, and its inverse map re-encodes updated
/// entries. At the paper's full scale (64 M ratio-4 groups) this is
/// ~40 MiB of host memory instead of 256 MiB. [`LltEntry`] remains the
/// manipulation API; [`LineLocationTable::entry`] materializes one *by
/// value* on demand, and `entry()`/`locate()` behave exactly as they did
/// over the nibble store.
///
/// Fault injection can leave a group holding a *non*-permutation, which
/// no index can name; those groups are parked verbatim in a sparse
/// override map until a scrub restores a real permutation.
///
/// This is the *contents* of the table; where those contents physically
/// live (SRAM, a reserved stacked region, or co-located LEADs) — and what
/// latency that costs — is decided by the controller's
/// [`LltDesign`](crate::LltDesign).
#[derive(Clone, Debug)]
pub struct LineLocationTable {
    map: CongruenceMap,
    /// Lehmer indices, `index_bits` bits per group, little-endian within
    /// and across words, plus one guard word so straddling reads never
    /// index past the end.
    store: Vec<u64>,
    /// Lehmer index → packed nibble word; `decode[0]` is the identity.
    decode: Vec<u32>,
    /// Packed nibble word → Lehmer index (the inverse of `decode`).
    encode: DetHashMap<u32, u32>,
    index_bits: u8,
    ratio: u8,
    swaps: u64,
    /// Groups whose entry is not a permutation (fault injection only):
    /// raw packed nibble words, consulted before the index store.
    #[cfg(feature = "faults")]
    corrupted: DetHashMap<u64, u32>,
}

impl LineLocationTable {
    /// Creates an identity-mapped table for `map`.
    pub fn new(map: CongruenceMap) -> Self {
        let ratio = map.ratio();
        let index_bits = lehmer_bits(ratio);
        let perms = factorial(ratio);
        let decode: Vec<u32> = (0..perms).map(|i| packed_of_lehmer(i, ratio)).collect();
        let mut encode = DetHashMap::default();
        for (i, &packed) in decode.iter().enumerate() {
            encode.insert(packed, i as u32);
        }
        debug_assert_eq!(decode[0], LltEntry::identity(ratio).packed_bits());
        let bits = map.groups() * u64::from(index_bits);
        // Identity is index 0, so the zeroed store *is* the initial state.
        let store = vec![0u64; usize::try_from(bits.div_ceil(64) + 1).expect("the group count was validated to fit host memory at construction")];
        Self {
            map,
            store,
            decode,
            encode,
            index_bits,
            ratio,
            swaps: 0,
            #[cfg(feature = "faults")]
            corrupted: DetHashMap::default(),
        }
    }

    /// The congruence mapping this table is built over.
    #[inline]
    pub fn congruence(&self) -> &CongruenceMap {
        &self.map
    }

    /// Total swaps performed since construction.
    #[inline]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Reads `group`'s Lehmer index out of the bit-packed store.
    #[inline]
    fn read_index(&self, group: u64) -> u32 {
        let bits = u64::from(self.index_bits);
        let pos = group * bits;
        let word = usize::try_from(pos >> 6).expect("bit positions stay within the store sized for every group");
        let shift = (pos & 63) as u32;
        let mask = (1u64 << bits) - 1;
        let mut v = self.store[word] >> shift;
        if u64::from(shift) + bits > 64 {
            // Straddles into the next word (shift > 0 here, so 64 - shift
            // is a valid shift amount).
            v |= self.store[word + 1] << (64 - shift);
        }
        (v & mask) as u32
    }

    /// Writes `group`'s Lehmer index into the bit-packed store.
    fn write_index(&mut self, group: u64, index: u32) {
        let bits = u64::from(self.index_bits);
        let pos = group * bits;
        let word = usize::try_from(pos >> 6).expect("bit positions stay within the store sized for every group");
        let shift = (pos & 63) as u32;
        let mask = (1u64 << bits) - 1;
        self.store[word] =
            (self.store[word] & !(mask << shift)) | (u64::from(index) << shift);
        if u64::from(shift) + bits > 64 {
            let spill = 64 - shift;
            self.store[word + 1] =
                (self.store[word + 1] & !(mask >> spill)) | (u64::from(index) >> spill);
        }
    }

    /// The effective packed nibble word of `group`: the corruption
    /// override when fault injection has broken the permutation, else the
    /// decoded index.
    #[inline]
    fn packed_of(&self, group: u64) -> u32 {
        #[cfg(feature = "faults")]
        if !self.corrupted.is_empty() {
            if let Some(&packed) = self.corrupted.get(&group) {
                return packed;
            }
        }
        self.decode[self.read_index(group) as usize]
    }

    /// Stores a packed nibble word for `group`: permutations re-encode to
    /// their index; anything else (reachable only through fault
    /// injection) parks in the override map.
    fn write_packed(&mut self, group: u64, packed: u32) {
        if let Some(&index) = self.encode.get(&packed) {
            self.write_index(group, index);
            #[cfg(feature = "faults")]
            self.corrupted.remove(&group);
        } else {
            #[cfg(feature = "faults")]
            self.corrupted.insert(group, packed);
            #[cfg(not(feature = "faults"))]
            unreachable!("only permutations are written without the faults feature");
        }
    }

    /// Entry of `group`, materialized by value from the index store.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[inline]
    pub fn entry(&self, group: u64) -> LltEntry {
        LltEntry::from_packed(self.packed_of(group), self.ratio)
    }

    /// Physical slot of a requested line: a bit-field extract, one decode
    /// LUT load and a nibble extract — the hot path of every post-L3
    /// access.
    #[inline]
    pub fn locate(&self, line: LineAddr) -> Slot {
        let group = self.map.group_of(line);
        let way = self.map.way_of(line);
        Slot::new(((self.packed_of(group) >> (way * 4)) & 0xF) as u8)
    }

    /// Swaps `line` into its group's stacked slot, returning the requested
    /// address of the displaced line and the off-chip slot it moved to, or
    /// `None` if `line` was already stacked-resident.
    pub fn promote(&mut self, line: LineAddr) -> Option<(LineAddr, Slot)> {
        let group = self.map.group_of(line);
        let way = self.map.way_of(line);
        let mut entry = self.entry(group);
        let (displaced_way, slot) = entry.promote(way)?;
        self.write_packed(group, entry.packed_bits());
        self.swaps += 1;
        Some((self.map.line_of(group, displaced_way), slot))
    }

    /// Corrupts one bit of `group`'s entry, modeling an uncorrected
    /// metadata fault reaching the table.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    #[cfg(feature = "faults")]
    pub fn corrupt_entry_bit(&mut self, group: u64, bit: u8) {
        let mut entry = self.entry(group);
        entry.flip_bit(bit);
        self.write_packed(group, entry.packed_bits());
    }

    /// Overwrites `group`'s entry wholesale — the final step of a scrub
    /// that re-derived the true permutation from the group's data-line
    /// tags.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range, or if `entry` was built for a
    /// different ratio than this table's.
    #[cfg(feature = "faults")]
    pub fn restore_entry(&mut self, group: u64, entry: LltEntry) {
        assert_eq!(
            entry.ratio(),
            self.ratio,
            "restored entry must match the table's ratio"
        );
        self.write_packed(group, entry.packed_bits());
    }

    /// Fraction of groups still in their identity mapping (useful to watch
    /// swap churn in experiments).
    pub fn identity_fraction(&self) -> f64 {
        let identity = self.decode[0];
        let n = (0..self.map.groups())
            .filter(|&g| self.packed_of(g) == identity)
            .count();
        n as f64 / self.map.groups() as f64
    }

    /// Storage the table would occupy with the paper's one-byte entries.
    pub fn storage_bytes(&self) -> u64 {
        self.map.groups()
    }

    /// Bits of host storage per group in the permutation-index encoding
    /// (5 at the paper's ratio 4).
    pub fn index_bits(&self) -> u8 {
        self.index_bits
    }

    /// Host bytes actually resident for the table's per-group state (the
    /// bit-packed index store; the decode LUT and its inverse are
    /// table-wide constants independent of group count).
    pub fn host_resident_bytes(&self) -> u64 {
        self.store.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_entry() {
        let e = LltEntry::identity(4);
        for w in 0..4 {
            assert_eq!(e.slot_of(w), Slot::new(w));
            assert_eq!(e.way_at(Slot::new(w)), w);
        }
        assert!(e.is_permutation());
        assert_eq!(e.to_paper_byte(), 0b11_10_01_00);
    }

    #[test]
    fn promote_swaps_with_stacked() {
        let mut e = LltEntry::identity(4);
        let (displaced, slot) = e.promote(3).expect("way 3 was off-chip");
        assert_eq!(displaced, 0);
        assert_eq!(slot, Slot::new(3));
        assert_eq!(e.slot_of(3), Slot::STACKED);
        assert_eq!(e.slot_of(0), Slot::new(3));
        assert!(e.is_permutation());
        // Promoting the stacked way is a no-op.
        assert_eq!(e.promote(3), None);
    }

    #[test]
    fn figure5_request_sequence() {
        // Paper Figure 5: identity; request B (way 1) → A and B swap;
        // request D (way 3) → B and D swap; B ends at D's old slot.
        let mut e = LltEntry::identity(4);
        e.promote(1);
        assert_eq!(e.slot_of(1), Slot::STACKED); // B in stacked
        assert_eq!(e.slot_of(0), Slot::new(1)); // A at B's old slot
        e.promote(3);
        assert_eq!(e.slot_of(3), Slot::STACKED); // D in stacked
        assert_eq!(e.slot_of(1), Slot::new(3)); // B moved within off-chip
        assert_eq!(e.slot_of(0), Slot::new(1));
        assert_eq!(e.slot_of(2), Slot::new(2)); // C untouched
        assert!(e.is_permutation());
    }

    #[test]
    fn table_locate_and_promote() {
        let map = CongruenceMap::new(8, 4);
        let mut llt = LineLocationTable::new(map);
        let line = map.line_of(5, 2);
        assert_eq!(llt.locate(line), Slot::new(2));
        let (displaced, slot) = llt.promote(line).expect("off-chip line");
        assert_eq!(displaced, map.line_of(5, 0));
        assert_eq!(slot, Slot::new(2));
        assert_eq!(llt.locate(line), Slot::STACKED);
        assert_eq!(llt.locate(displaced), Slot::new(2));
        assert_eq!(llt.swaps(), 1);
    }

    #[test]
    fn identity_fraction_decreases() {
        let map = CongruenceMap::new(4, 4);
        let mut llt = LineLocationTable::new(map);
        assert_eq!(llt.identity_fraction(), 1.0);
        llt.promote(map.line_of(0, 1));
        assert_eq!(llt.identity_fraction(), 0.75);
    }

    #[test]
    fn storage_is_one_byte_per_group() {
        // At the paper's scale (64 M groups) this is the 64 MB table of
        // Section IV-C; here verified on a small instance.
        let map = CongruenceMap::new(4096, 4);
        let llt = LineLocationTable::new(map);
        assert_eq!(llt.storage_bytes(), 4096);
    }

    #[test]
    fn slot_display() {
        assert_eq!(Slot::STACKED.to_string(), "slot0(stacked)");
        assert_eq!(Slot::new(2).to_string(), "slot2(off-chip)");
    }

    #[test]
    #[should_panic(expected = "ratio must be in 2..=8")]
    fn huge_ratio_rejected() {
        LltEntry::identity(9);
    }

    #[test]
    fn lehmer_codec_is_a_bijection_over_permutations() {
        for ratio in 2..=8u8 {
            let perms = factorial(ratio);
            let mut seen = std::collections::HashSet::new();
            for i in 0..perms {
                let packed = packed_of_lehmer(i, ratio);
                let entry = LltEntry::from_packed(packed, ratio);
                assert!(entry.is_permutation(), "index {i} at ratio {ratio}");
                assert!(seen.insert(packed), "index {i} collides at ratio {ratio}");
            }
        }
        // Index 0 is the identity at every ratio (the zeroed store is the
        // initial table state).
        for ratio in 2..=8u8 {
            assert_eq!(
                packed_of_lehmer(0, ratio),
                LltEntry::identity(ratio).packed_bits()
            );
        }
    }

    #[test]
    fn index_width_matches_group_factorial() {
        let widths = [(2u8, 1u8), (3, 3), (4, 5), (5, 7), (6, 10), (7, 13), (8, 16)];
        for (ratio, bits) in widths {
            assert_eq!(lehmer_bits(ratio), bits, "ratio {ratio}");
        }
    }

    #[test]
    fn host_storage_shrinks_to_index_bits() {
        // 4096 ratio-4 groups: 5 bits each = 20480 bits = 321 words
        // (+ guard) against 16 KiB of packed nibbles before the recode.
        let llt = LineLocationTable::new(CongruenceMap::new(4096, 4));
        assert_eq!(llt.index_bits(), 5);
        assert_eq!(llt.host_resident_bytes(), (4096 * 5u64).div_ceil(64) * 8 + 8);
        assert!(llt.host_resident_bytes() < 4096 * 4 / 2);
        // The paper-model gauge is unchanged: one byte per group.
        assert_eq!(llt.storage_bytes(), 4096);
    }

    /// The nibble-packed store this PR replaced, kept verbatim as the
    /// reference model: one u32 of packed way→slot nibbles per group.
    struct NibbleTable {
        map: CongruenceMap,
        packed: Vec<u32>,
        ratio: u8,
    }

    impl NibbleTable {
        fn new(map: CongruenceMap) -> Self {
            let ratio = map.ratio();
            let identity = LltEntry::identity(ratio).packed_bits();
            Self {
                map,
                packed: vec![identity; map.groups() as usize],
                ratio,
            }
        }

        fn entry(&self, group: u64) -> LltEntry {
            LltEntry::from_packed(self.packed[group as usize], self.ratio)
        }

        fn locate(&self, line: LineAddr) -> Slot {
            let group = self.map.group_of(line);
            let way = self.map.way_of(line);
            Slot::new(((self.packed[group as usize] >> (way * 4)) & 0xF) as u8)
        }

        fn promote(&mut self, line: LineAddr) -> Option<(LineAddr, Slot)> {
            let group = self.map.group_of(line);
            let way = self.map.way_of(line);
            let mut entry = self.entry(group);
            let (displaced_way, slot) = entry.promote(way)?;
            self.packed[group as usize] = entry.packed_bits();
            Some((self.map.line_of(group, displaced_way), slot))
        }

        fn identity_fraction(&self) -> f64 {
            let identity = LltEntry::identity(self.ratio).packed_bits();
            let n = self.packed.iter().filter(|&&p| p == identity).count();
            n as f64 / self.packed.len() as f64
        }
    }

    proptest::proptest! {
        /// The permutation-index table is observation-equivalent to the
        /// nibble table over arbitrary promote sequences: every locate,
        /// every entry, every promote return value, and the identity
        /// fraction agree, at every ratio (1-bit through 16-bit indices,
        /// covering word-straddling bit fields).
        #[test]
        fn permutation_index_matches_nibble_table(
            ratio in 2u8..=8,
            groups in 1u64..50,
            ops in proptest::collection::vec((0u64..50, 0u8..8), 0..200),
        ) {
            let map = CongruenceMap::new(groups, ratio);
            let mut coded = LineLocationTable::new(map);
            let mut nibble = NibbleTable::new(map);
            for (g, w) in ops {
                let line = map.line_of(g % groups, w % ratio);
                proptest::prop_assert_eq!(coded.promote(line), nibble.promote(line));
                proptest::prop_assert_eq!(coded.locate(line), nibble.locate(line));
            }
            for g in 0..groups {
                proptest::prop_assert_eq!(coded.entry(g), nibble.entry(g));
                proptest::prop_assert!(coded.entry(g).is_permutation());
            }
            for w in 0..ratio {
                let line = map.line_of(groups - 1, w);
                proptest::prop_assert_eq!(coded.locate(line), nibble.locate(line));
            }
            proptest::prop_assert_eq!(coded.identity_fraction(), nibble.identity_fraction());
        }
    }

    #[cfg(feature = "faults")]
    mod faults {
        use super::*;

        /// Corrupted (non-permutation) entries cannot be index-coded; the
        /// override map must carry them verbatim and drain on restore.
        #[test]
        fn corrupt_entries_round_trip_through_overrides() {
            let map = CongruenceMap::new(16, 4);
            let mut llt = LineLocationTable::new(map);
            let before = llt.entry(3);
            llt.corrupt_entry_bit(3, 2);
            let corrupt = llt.entry(3);
            assert_ne!(corrupt, before);
            assert!(!corrupt.is_permutation());
            // Reads of the corrupted group see the raw flipped word; other
            // groups are untouched.
            assert_eq!(llt.locate(map.line_of(3, 0)), corrupt.slot_of(0));
            assert_eq!(llt.entry(4), LltEntry::identity(4));
            llt.restore_entry(3, before);
            assert_eq!(llt.entry(3), before);
            assert!(llt.corrupted.is_empty(), "restore must drain the override");
        }

        /// A second flip of the same bit restores the permutation, which
        /// must migrate back from the override map into the index store.
        #[test]
        fn double_flip_returns_to_the_index_store() {
            let map = CongruenceMap::new(8, 4);
            let mut llt = LineLocationTable::new(map);
            llt.corrupt_entry_bit(5, 7);
            assert!(!llt.corrupted.is_empty());
            llt.corrupt_entry_bit(5, 7);
            assert!(llt.corrupted.is_empty());
            assert_eq!(llt.entry(5), LltEntry::identity(4));
        }
    }
}
