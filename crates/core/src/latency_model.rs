//! The abstract latency analysis of the paper's Figure 8.
//!
//! A single request serviced in isolation, with stacked DRAM costing one
//! unit and off-chip DRAM two units. `H` is a line resident in stacked
//! memory, `M` one resident off-chip. This closed-form model is what the
//! `fig08_llt_latency` bench binary prints; the cycle-level controller in
//! [`crate::Cameo`] is the executable counterpart.

/// Latency of one stacked-DRAM access, in abstract units.
pub const STACKED_UNIT: u32 = 1;

/// Latency of one off-chip access, in abstract units.
pub const OFF_CHIP_UNIT: u32 = 2;

/// Cycles to run a SECDED syndrome check and correct a single flipped bit
/// of an LLT/LEAD metadata word — a short combinational path plus a mux,
/// comparable to a couple of pipeline stages at 3.2 GHz.
pub const ECC_CORRECT_CYCLES: u64 = 6;

/// Cycles the controller waits before declaring a DRAM response lost and
/// eligible for retry. Far above any legitimate queued completion time at
/// simulated load, far below the watchdog horizon.
pub const DROP_TIMEOUT_CYCLES: u64 = 1_000;

/// Base backoff between retry attempts of a dropped response; attempt `n`
/// waits `n` times this.
pub const RETRY_BACKOFF_CYCLES: u64 = 50;

/// The memory-system designs compared in Figure 8.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LatencyDesign {
    /// No stacked DRAM: every access is off-chip.
    Baseline,
    /// Zero-cost oracle LLT.
    IdealLlt,
    /// LLT stored in a reserved stacked region; every access pays the
    /// lookup first.
    EmbeddedLlt,
    /// LLT entry co-located with the stacked data line (LEAD).
    CoLocatedLlt,
    /// Co-Located LLT plus a correct off-chip location prediction
    /// (the LLT lookup overlaps the off-chip fetch).
    CoLocatedPredicted,
}

impl LatencyDesign {
    /// All designs, in Figure 8's presentation order.
    pub const ALL: [LatencyDesign; 5] = [
        LatencyDesign::Baseline,
        LatencyDesign::IdealLlt,
        LatencyDesign::EmbeddedLlt,
        LatencyDesign::CoLocatedLlt,
        LatencyDesign::CoLocatedPredicted,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            LatencyDesign::Baseline => "Baseline (no stacked)",
            LatencyDesign::IdealLlt => "Ideal-LLT",
            LatencyDesign::EmbeddedLlt => "Embedded-LLT",
            LatencyDesign::CoLocatedLlt => "Co-Located LLT",
            LatencyDesign::CoLocatedPredicted => "Co-Located LLT + correct LLP",
        }
    }
}

/// Latency in abstract units for a request whose line is stacked-resident
/// (`resident_stacked = true`, case H) or off-chip (case M).
pub fn latency_units(design: LatencyDesign, resident_stacked: bool) -> u32 {
    match (design, resident_stacked) {
        // No stacked DRAM: the H case cannot arise; both are off-chip.
        (LatencyDesign::Baseline, _) => OFF_CHIP_UNIT,
        (LatencyDesign::IdealLlt, true) => STACKED_UNIT,
        (LatencyDesign::IdealLlt, false) => OFF_CHIP_UNIT,
        // Lookup (stacked) then data.
        (LatencyDesign::EmbeddedLlt, true) => STACKED_UNIT + STACKED_UNIT,
        (LatencyDesign::EmbeddedLlt, false) => STACKED_UNIT + OFF_CHIP_UNIT,
        // LEAD probe returns entry + data in one transfer when resident.
        (LatencyDesign::CoLocatedLlt, true) => STACKED_UNIT,
        (LatencyDesign::CoLocatedLlt, false) => STACKED_UNIT + OFF_CHIP_UNIT,
        // Parallel verify: max(probe, off-chip fetch).
        (LatencyDesign::CoLocatedPredicted, true) => STACKED_UNIT,
        (LatencyDesign::CoLocatedPredicted, false) => STACKED_UNIT.max(OFF_CHIP_UNIT),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_values() {
        use LatencyDesign::*;
        // The exact unit numbers from Figure 8's bars.
        assert_eq!(latency_units(Baseline, false), 2);
        assert_eq!(latency_units(IdealLlt, true), 1);
        assert_eq!(latency_units(IdealLlt, false), 2);
        assert_eq!(latency_units(EmbeddedLlt, true), 2);
        assert_eq!(latency_units(EmbeddedLlt, false), 3);
        assert_eq!(latency_units(CoLocatedLlt, true), 1);
        assert_eq!(latency_units(CoLocatedLlt, false), 3);
        assert_eq!(latency_units(CoLocatedPredicted, false), 2);
    }

    #[test]
    fn colocated_beats_embedded_on_hits() {
        use LatencyDesign::*;
        assert!(latency_units(CoLocatedLlt, true) < latency_units(EmbeddedLlt, true));
    }

    #[test]
    fn prediction_recovers_ideal_miss_latency() {
        use LatencyDesign::*;
        assert_eq!(
            latency_units(CoLocatedPredicted, false),
            latency_units(IdealLlt, false)
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            LatencyDesign::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), LatencyDesign::ALL.len());
    }
}
