//! Runtime invariant auditing (compiled only with the `deep-audit`
//! feature).
//!
//! CAMEO's correctness rests on a small set of structural invariants that
//! no single unit test can pin down across arbitrary access interleavings:
//!
//! * every [`LltEntry`](crate::llt::LltEntry) is a **bijection** between
//!   ways and slots — the exactly-one-copy property that distinguishes
//!   CAMEO from a cache (paper Section IV-B);
//! * consequently exactly **one line per congruence group** is
//!   stacked-resident (holds slot 0);
//! * the congruence decomposition **round-trips**: every line address maps
//!   to a `(group, way)` pair that reconstructs the same address;
//! * controller counters **conserve**: stacked- and off-chip-serviced
//!   reads partition demand reads, prediction cases never outnumber reads,
//!   and swaps never exceed off-chip-serviced reads (a swap is only ever
//!   triggered by an off-chip demand read).
//!
//! The [`InvariantAuditor`] provides the sampling schedule: property tests
//! audit after *every* event ([`InvariantAuditor::always`]), while release
//! simulations sample every N events to keep the O(groups) LLT sweep off
//! the critical path. The checks themselves are free functions returning
//! [`AuditError`] so callers choose between propagating and aborting.

use std::fmt;

use crate::congruence::CongruenceMap;
use crate::controller::CameoStats;
use crate::llt::LineLocationTable;

/// A violated invariant, with enough detail to debug the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// Short name of the invariant that failed.
    pub invariant: &'static str,
    /// What was observed.
    pub detail: String,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.detail
        )
    }
}

impl std::error::Error for AuditError {}

/// Decides *when* to audit: every `interval`-th call to
/// [`InvariantAuditor::tick`] returns `true`.
///
/// The default used by the controller is [`InvariantAuditor::sampled`];
/// tests that want a check after every mutation use
/// [`InvariantAuditor::always`].
#[derive(Debug, Clone)]
pub struct InvariantAuditor {
    interval: u64,
    since_last: u64,
    audits: u64,
}

/// Default sampling interval of release simulations: frequent enough to
/// catch drift within a benchmark, rare enough that the O(groups) sweep
/// does not dominate runtime.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 1024;

impl InvariantAuditor {
    /// Audits on every tick.
    pub fn always() -> Self {
        Self::every(1)
    }

    /// Audits at the release-simulation sampling rate.
    pub fn sampled() -> Self {
        Self::every(DEFAULT_SAMPLE_INTERVAL)
    }

    /// Audits every `interval`-th tick.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn every(interval: u64) -> Self {
        assert!(interval > 0, "audit interval must be at least 1");
        Self {
            interval,
            since_last: 0,
            audits: 0,
        }
    }

    /// Registers one event; returns `true` when an audit is due.
    pub fn tick(&mut self) -> bool {
        self.since_last += 1;
        if self.since_last >= self.interval {
            self.since_last = 0;
            self.audits += 1;
            true
        } else {
            false
        }
    }

    /// Number of audits signalled so far.
    pub fn audits(&self) -> u64 {
        self.audits
    }
}

impl Default for InvariantAuditor {
    fn default() -> Self {
        Self::sampled()
    }
}

/// Verifies that every LLT entry is a bijection and that exactly one way
/// per congruence group occupies the stacked slot.
pub fn check_llt(llt: &LineLocationTable) -> Result<(), AuditError> {
    let groups = llt.congruence().groups();
    for group in 0..groups {
        let entry = llt.entry(group);
        if !entry.is_permutation() {
            return Err(AuditError {
                invariant: "llt-bijection",
                detail: format!("group {group} entry is not a way↔slot bijection: {entry:?}"),
            });
        }
        let stacked_ways = (0..entry.ratio())
            .filter(|&w| entry.slot_of(w).is_stacked())
            .count();
        if stacked_ways != 1 {
            return Err(AuditError {
                invariant: "one-stacked-line-per-group",
                detail: format!(
                    "group {group} has {stacked_ways} stacked-resident ways, expected 1"
                ),
            });
        }
    }
    Ok(())
}

/// Verifies the congruence round-trip `line_of(group_of(l), way_of(l)) == l`
/// over a deterministic sample of the line space (exhaustive when the space
/// has at most 4096 lines).
pub fn check_congruence(map: &CongruenceMap) -> Result<(), AuditError> {
    let total = map.total_lines();
    let step = (total / 4096).max(1);
    let mut raw = 0u64;
    while raw < total {
        let line = cameo_types::LineAddr::new(raw);
        let group = map.group_of(line);
        let way = map.way_of(line);
        let back = map.line_of(group, way);
        if back != line {
            return Err(AuditError {
                invariant: "congruence-round-trip",
                detail: format!(
                    "line {raw} decomposes to (group {group}, way {way}) but \
                     reconstructs to {}",
                    back.raw()
                ),
            });
        }
        raw += step;
    }
    Ok(())
}

/// Verifies controller counter conservation. `swaps_since_reset` is the
/// LLT swap count re-baselined at the last stats reset (the swap counter
/// itself is mapping state and survives resets).
pub fn check_stats(stats: &CameoStats, swaps_since_reset: u64) -> Result<(), AuditError> {
    let serviced = stats.serviced_stacked + stats.serviced_off_chip;
    if serviced != stats.demand_reads {
        return Err(AuditError {
            invariant: "reads-partitioned",
            detail: format!(
                "serviced_stacked {} + serviced_off_chip {} != demand_reads {}",
                stats.serviced_stacked, stats.serviced_off_chip, stats.demand_reads
            ),
        });
    }
    if stats.cases.total() > stats.demand_reads {
        return Err(AuditError {
            invariant: "cases-bounded-by-reads",
            detail: format!(
                "prediction cases {} exceed demand reads {}",
                stats.cases.total(),
                stats.demand_reads
            ),
        });
    }
    if swaps_since_reset > stats.serviced_off_chip {
        return Err(AuditError {
            invariant: "swaps-bounded-by-off-chip-reads",
            detail: format!(
                "{swaps_since_reset} swaps since reset exceed {} off-chip-serviced reads",
                stats.serviced_off_chip
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auditor_schedules() {
        let mut a = InvariantAuditor::every(3);
        let fired: Vec<bool> = (0..7).map(|_| a.tick()).collect();
        assert_eq!(fired, [false, false, true, false, false, true, false]);
        assert_eq!(a.audits(), 2);
        let mut always = InvariantAuditor::always();
        assert!(always.tick() && always.tick());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_interval_rejected() {
        InvariantAuditor::every(0);
    }

    #[test]
    fn clean_llt_passes() {
        let map = CongruenceMap::new(16, 4);
        let mut llt = LineLocationTable::new(map);
        check_llt(&llt).expect("identity table is a bijection");
        llt.promote(map.line_of(3, 2));
        check_llt(&llt).expect("promotion preserves the bijection");
    }

    #[test]
    fn congruence_round_trips() {
        for ratio in 2..=8u8 {
            let map = CongruenceMap::new(64, ratio);
            check_congruence(&map).expect("decomposition must round-trip");
        }
        // A space larger than the exhaustive bound exercises sampling.
        let big = CongruenceMap::new(1 << 16, 4);
        check_congruence(&big).expect("sampled round-trip over a large space");
    }

    #[test]
    fn stats_conservation() {
        let mut s = CameoStats {
            demand_reads: 10,
            serviced_stacked: 7,
            serviced_off_chip: 3,
            ..CameoStats::default()
        };
        check_stats(&s, 3).expect("balanced counters pass");
        check_stats(&s, 4).expect_err("swaps cannot exceed off-chip reads");
        s.serviced_stacked = 8;
        let err = check_stats(&s, 0).expect_err("reads no longer partitioned");
        assert_eq!(err.invariant, "reads-partitioned");
        assert!(err.to_string().contains("reads-partitioned"));
    }
}
