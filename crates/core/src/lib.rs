//! CAMEO: a CAche-like MEmory Organization (Chou, Jaleel & Qureshi,
//! MICRO 2014) — the primary contribution of the reproduced paper.
//!
//! CAMEO makes die-stacked DRAM part of the OS-visible address space while
//! managing it in hardware at cache-line granularity:
//!
//! * the combined line space is partitioned into [**congruence
//!   groups**](congruence) of `ratio` lines that all map to the same
//!   stacked-DRAM location;
//! * on an access to an off-chip line, CAMEO **swaps** it with the
//!   stacked-resident line of its group, so exactly one copy of every line
//!   exists and hot lines migrate into fast memory;
//! * a [**Line Location Table**](llt) tracks the resulting permutation of
//!   each group; three hardware designs are modeled ([`LltDesign`]):
//!   `Ideal` (free oracle), `Embedded` (LLT in a reserved stacked region,
//!   serializing every access) and `CoLocated` (the LLT entry travels with
//!   the stacked data line as a 66-byte LEAD);
//! * a [**Line Location Predictor**](llp) — per-core, PC-indexed tables of
//!   2-bit last-location registers — lets off-chip accesses launch in
//!   parallel with the verifying stacked probe instead of serializing
//!   behind it.
//!
//! The [`Cameo`] controller glues these to the two DRAM timing models from
//! [`cameo_memsim`] and accounts for the prediction-outcome taxonomy of the
//! paper's Table III.
//!
//! # Examples
//!
//! ```
//! use cameo::{Cameo, CameoConfig, LltDesign, PredictorKind};
//! use cameo_types::{Access, ByteSize, CoreId, Cycle, LineAddr};
//!
//! let mut cameo = Cameo::new(CameoConfig {
//!     stacked: ByteSize::from_mib(1),
//!     off_chip: ByteSize::from_mib(3),
//!     llt: LltDesign::CoLocated,
//!     predictor: PredictorKind::Llp,
//!     cores: 2,
//!     llp_entries: 256,
//! });
//! let access = Access::read(CoreId(0), LineAddr::new(49_999), 0x400b00);
//! let result = cameo.access(Cycle::ZERO, &access);
//! assert!(result.completion > Cycle::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "deep-audit")]
pub mod audit;
pub mod congruence;
mod controller;
pub mod latency_model;
pub mod llp;
pub mod llt;
#[cfg(feature = "faults")]
pub mod recovery;
pub mod swap_filter;

pub use controller::{
    AccessResult, Cameo, CameoConfig, CameoStats, LltDesign, PredictorKind, SRAM_LLT_CYCLES,
};
pub use llp::{LineLocationPredictor, PredictionCase, PredictionCaseCounts};
pub use llt::{LineLocationTable, LltEntry, Slot};
pub use swap_filter::SwapPolicy;
