//! Congruence-group address arithmetic (paper Section IV-A).
//!
//! With `N` lines of stacked DRAM and a total visible space of `ratio × N`
//! lines, every requested line address decomposes into a *group*
//! (`line % N` — the paper's "bottom log2(N) bits") and a *way*
//! (`line / N`). All lines of a group contend for the single stacked slot
//! of that group, exactly like lines contending for a set in a cache.

use cameo_types::LineAddr;

use crate::llt::Slot;

/// Maps requested line addresses to (congruence group, way) pairs and back.
///
/// # Examples
///
/// ```
/// use cameo::congruence::CongruenceMap;
/// use cameo_types::LineAddr;
///
/// let map = CongruenceMap::new(1024, 4);
/// let line = LineAddr::new(3 * 1024 + 17);
/// assert_eq!(map.group_of(line), 17);
/// assert_eq!(map.way_of(line), 3);
/// assert_eq!(map.line_of(17, 3), line);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CongruenceMap {
    groups: u64,
    ratio: u8,
}

impl CongruenceMap {
    /// Creates a map with `groups` congruence groups (the stacked line
    /// count) and `ratio` ways per group (total / stacked capacity).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero or `ratio < 2` (a ratio of 1 would mean
    /// no off-chip memory and nothing to swap).
    pub fn new(groups: u64, ratio: u8) -> Self {
        assert!(groups > 0, "need at least one congruence group");
        assert!(ratio >= 2, "ratio must be at least 2");
        Self { groups, ratio }
    }

    /// Number of congruence groups (== stacked lines).
    #[inline]
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// Lines per congruence group.
    #[inline]
    pub fn ratio(&self) -> u8 {
        self.ratio
    }

    /// Total visible lines (`groups × ratio`).
    #[inline]
    pub fn total_lines(&self) -> u64 {
        self.groups * u64::from(self.ratio)
    }

    /// Congruence group of a requested line.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is outside the visible space.
    #[inline]
    pub fn group_of(&self, line: LineAddr) -> u64 {
        debug_assert!(line.raw() < self.total_lines(), "line out of space");
        line.raw() % self.groups
    }

    /// Way (position within the group) of a requested line.
    #[inline]
    pub fn way_of(&self, line: LineAddr) -> u8 {
        debug_assert!(line.raw() < self.total_lines(), "line out of space");
        // lint: allow(addr-cast) — way = line/groups < ratio ≤ 15 (checked above)
        (line.raw() / self.groups) as u8
    }

    /// Reconstructs the requested line address of `(group, way)`.
    ///
    /// # Panics
    ///
    /// Panics if `group` or `way` is out of range.
    #[inline]
    pub fn line_of(&self, group: u64, way: u8) -> LineAddr {
        assert!(group < self.groups, "group out of range");
        assert!(way < self.ratio, "way out of range");
        let line = LineAddr::new(u64::from(way) * self.groups + group);
        #[cfg(feature = "deep-audit")]
        assert!(
            self.group_of(line) == group && self.way_of(line) == way,
            "deep-audit: congruence decomposition does not round-trip for \
             (group {group}, way {way})"
        );
        line
    }

    /// Device-local line a physical slot of `group` refers to: slot 0 is
    /// stacked-DRAM line `group`; slot `k ≥ 1` is off-chip line
    /// `(k−1) × groups + group`.
    #[inline]
    pub fn device_line(&self, group: u64, slot: Slot) -> u64 {
        match slot.raw() {
            0 => group,
            k => u64::from(k - 1) * self.groups + group,
        }
    }
}

/// Divides by 31 using the residue trick the paper's footnote 5 describes
/// (31 = 32 − 1), suitable for a few adders in hardware: repeatedly add the
/// quotient's spill until the remainder settles.
///
/// Used to locate a congruence group's LEAD within the 31-LEADs-per-row
/// co-located layout. Matches `x / 31` exactly.
///
/// # Examples
///
/// ```
/// use cameo::congruence::div31;
///
/// assert_eq!(div31(0), 0);
/// assert_eq!(div31(30), 0);
/// assert_eq!(div31(31), 1);
/// assert_eq!(div31(123_456_789), 123_456_789 / 31);
/// ```
pub fn div31(x: u64) -> u64 {
    // q ≈ x/32 + x/32² + x/32³ ... converges because 1/31 = Σ 1/32^k.
    let mut q = 0u64;
    let mut r = x;
    while r >= 31 {
        let step = r >> 5; // r / 32
        let step = step.max(1);
        q += step;
        r -= step * 31;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_way_round_trip() {
        let map = CongruenceMap::new(128, 4);
        for raw in [0u64, 1, 127, 128, 300, 511] {
            let line = LineAddr::new(raw);
            let g = map.group_of(line);
            let w = map.way_of(line);
            assert_eq!(map.line_of(g, w), line);
        }
    }

    #[test]
    fn paper_example_four_lines_per_group() {
        // 4 GB stacked, 12 GB off-chip: groups = stacked lines, ratio 4.
        let map = CongruenceMap::new(4, 4);
        // Lines A, B, C, D of Figure 4 are ways 0..4 of one group.
        let a = map.line_of(2, 0);
        let b = map.line_of(2, 1);
        assert_eq!(map.group_of(a), map.group_of(b));
        assert_ne!(map.way_of(a), map.way_of(b));
    }

    #[test]
    fn device_lines() {
        let map = CongruenceMap::new(100, 4);
        assert_eq!(map.device_line(7, Slot::new(0)), 7); // stacked
        assert_eq!(map.device_line(7, Slot::new(1)), 7); // first off-chip third
        assert_eq!(map.device_line(7, Slot::new(2)), 107);
        assert_eq!(map.device_line(7, Slot::new(3)), 207);
    }

    #[test]
    fn total_lines() {
        assert_eq!(CongruenceMap::new(10, 4).total_lines(), 40);
    }

    #[test]
    #[should_panic(expected = "ratio must be at least 2")]
    fn degenerate_ratio_rejected() {
        CongruenceMap::new(10, 1);
    }

    #[test]
    #[should_panic(expected = "way out of range")]
    fn way_bounds_checked() {
        CongruenceMap::new(10, 4).line_of(0, 4);
    }

    #[test]
    fn div31_matches_division() {
        for x in 0..10_000u64 {
            assert_eq!(div31(x), x / 31, "x = {x}");
        }
        for x in [u64::MAX, u64::MAX / 2, 1 << 40, (1 << 40) - 1] {
            assert_eq!(div31(x), x / 31, "x = {x}");
        }
    }
}
