//! Property-based tests for the Line Location Predictor: a 2-bit
//! last-location register can only replay slots it observed, so it can
//! never "invent" a location outside the congruence group, and under a
//! stable location it converges to correct predictions after one miss.

use cameo::llp::{LineLocationPredictor, PredictionCase};
use cameo::llt::Slot;
use cameo::{Cameo, CameoConfig, LltDesign, PredictorKind};
use cameo_types::{Access, ByteSize, CoreId, Cycle, LineAddr};
use proptest::prelude::*;

proptest! {
    /// Predictions never leave the congruence group: when every training
    /// observation is a valid slot (`< ratio`), every prediction — on any
    /// core, at any PC, trained or cold — is a valid slot too. A 2-bit LLR
    /// holds exactly one past observation; it has no way to fabricate a
    /// slot index the LLT never reported.
    #[test]
    fn predictions_stay_inside_the_congruence_group(
        ratio in 1u8..=4,
        cores in 1u16..=8,
        entries_log2 in 0u32..=8,
        ops in prop::collection::vec(
            (0u16..8, any::<u64>(), 0u8..4, any::<bool>()),
            1..300,
        ),
    ) {
        let mut llp = LineLocationPredictor::new(cores, 1 << entries_log2);
        for (core, pc, slot, is_train) in ops {
            let core = CoreId(core % cores);
            if is_train {
                llp.train(core, pc, Slot::new(slot % ratio));
            } else {
                let predicted = llp.predict(core, pc);
                prop_assert!(
                    predicted.raw() < ratio,
                    "predicted slot {} outside group of ratio {ratio}",
                    predicted.raw()
                );
            }
        }
    }

    /// Last-time prediction: after each training of a (core, PC) register,
    /// the very next prediction replays exactly that slot, however the
    /// location bounced around before — and repeated observations of a
    /// stable location therefore stay correct indefinitely.
    #[test]
    fn repeated_same_location_converges(
        cores in 1u16..=8,
        entries_log2 in 0u32..=8,
        core in 0u16..8,
        pc in any::<u64>(),
        history in prop::collection::vec(0u8..4, 0..50),
        stable in 0u8..4,
        repeats in 1usize..50,
    ) {
        let mut llp = LineLocationPredictor::new(cores, 1 << entries_log2);
        let core = CoreId(core % cores);
        // A churning location: the register always replays the last slot.
        for slot in history {
            llp.train(core, pc, Slot::new(slot));
            prop_assert_eq!(llp.predict(core, pc), Slot::new(slot));
        }
        // The location settles: every subsequent prediction is correct.
        for _ in 0..repeats {
            llp.train(core, pc, Slot::new(stable));
            prop_assert_eq!(llp.predict(core, pc), Slot::new(stable));
        }
    }

    /// End-to-end convergence through the controller: one PC re-reading
    /// one line mispredicts at most twice. The first access may find the
    /// line off-chip with a cold (predict-stacked) register; that read
    /// swaps the line into stacked DRAM but trains the LLR with the
    /// pre-swap location the LLT reported, so the second access can still
    /// replay the stale slot. From the third access on, the line is
    /// stacked-resident and so is the register — every prediction is a
    /// correct case 1.
    #[test]
    fn controller_repeated_reads_converge(
        line in 0u64..4096,
        pc in any::<u64>(),
        reads in 3u64..50,
    ) {
        let mut cameo = Cameo::new(CameoConfig {
            stacked: ByteSize::from_kib(64),
            off_chip: ByteSize::from_kib(192),
            llt: LltDesign::CoLocated,
            predictor: PredictorKind::Llp,
            cores: 1,
            llp_entries: 64,
        });
        let mut now = Cycle::ZERO;
        for _ in 0..reads {
            let r = cameo.access(now, &Access::read(CoreId(0), LineAddr::new(line), pc));
            now = r.completion;
        }
        let cases = cameo.stats().cases;
        prop_assert_eq!(cases.total(), reads);
        let correct = cases.count(PredictionCase::StackedPredictedStacked)
            + cases.count(PredictionCase::OffChipPredictedCorrect);
        prop_assert!(
            correct + 2 >= reads,
            "{correct} correct of {reads} repeated reads — the LLP failed to converge"
        );
    }
}
