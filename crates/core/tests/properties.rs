//! Property-based tests for CAMEO's core data structures and controller.

use cameo::congruence::{div31, CongruenceMap};
use cameo::llp::PredictionCase;
use cameo::llt::{LineLocationTable, LltEntry, Slot};
use cameo::{Cameo, CameoConfig, LltDesign, PredictorKind};
use cameo_types::{Access, ByteSize, CoreId, Cycle, LineAddr, MemKind};
use proptest::prelude::*;

proptest! {
    /// Any sequence of promotions keeps every entry a permutation — the
    /// exactly-one-copy invariant.
    #[test]
    fn llt_entries_stay_permutations(
        ratio in 2u8..=8,
        ways in prop::collection::vec(0u8..8, 1..200),
    ) {
        let mut e = LltEntry::identity(ratio);
        for w in ways {
            let w = w % ratio;
            e.promote(w);
            prop_assert!(e.is_permutation());
            prop_assert_eq!(e.slot_of(w), Slot::STACKED);
        }
    }

    /// The table locate/promote pair is consistent: after promoting, the
    /// promoted line is stacked and the displaced line sits at the exact
    /// slot the promoted line vacated.
    #[test]
    fn llt_swap_conservation(
        lines in prop::collection::vec(0u64..4096, 1..300),
    ) {
        let map = CongruenceMap::new(1024, 4);
        let mut llt = LineLocationTable::new(map);
        for l in lines {
            let line = LineAddr::new(l);
            let before = llt.locate(line);
            match llt.promote(line) {
                None => prop_assert!(before.is_stacked()),
                Some((displaced, slot)) => {
                    prop_assert_eq!(slot, before);
                    prop_assert_eq!(llt.locate(line), Slot::STACKED);
                    prop_assert_eq!(llt.locate(displaced), before);
                }
            }
        }
    }

    /// Every visible line remains reachable (locate never panics and every
    /// group's ways occupy distinct slots) after arbitrary swap traffic.
    #[test]
    fn all_lines_reachable_after_swaps(
        lines in prop::collection::vec(0u64..1024, 1..200),
    ) {
        let map = CongruenceMap::new(256, 4);
        let mut llt = LineLocationTable::new(map);
        for l in &lines {
            llt.promote(LineAddr::new(*l));
        }
        for g in 0..map.groups() {
            let mut seen = std::collections::HashSet::new();
            for w in 0..map.ratio() {
                let slot = llt.locate(map.line_of(g, w));
                prop_assert!(seen.insert(slot.raw()));
            }
        }
    }

    /// div31 equals integer division for arbitrary inputs.
    #[test]
    fn div31_arbitrary(x in any::<u64>()) {
        prop_assert_eq!(div31(x), x / 31);
    }

    /// Congruence (group, way) decomposition round-trips for arbitrary
    /// geometries across the full ratio range.
    #[test]
    fn congruence_round_trip(
        groups in 1u64..=4096,
        ratio in 2u8..=8,
        raw in any::<u64>(),
    ) {
        let map = CongruenceMap::new(groups, ratio);
        let line = LineAddr::new(raw % map.total_lines());
        let g = map.group_of(line);
        let w = map.way_of(line);
        prop_assert!(g < groups);
        prop_assert!(w < ratio);
        prop_assert_eq!(map.line_of(g, w), line);
    }

    /// Controller end-to-end: completions are monotone w.r.t. issue time,
    /// service counters partition reads, and the most recently *read* line
    /// of each group is stacked-resident.
    #[test]
    fn controller_invariants(
        design in prop_oneof![
            Just(LltDesign::Ideal),
            Just(LltDesign::Embedded),
            Just(LltDesign::CoLocated),
        ],
        predictor in prop_oneof![
            Just(PredictorKind::SerialAccess),
            Just(PredictorKind::Llp),
            Just(PredictorKind::Perfect),
        ],
        ops in prop::collection::vec((0u64..4096, any::<bool>(), 0u64..64), 1..200),
    ) {
        let mut cameo = Cameo::new(CameoConfig {
            stacked: ByteSize::from_kib(64),
            off_chip: ByteSize::from_kib(192),
            llt: design,
            predictor,
            cores: 2,
            llp_entries: 64,
        });
        let mut now = Cycle::ZERO;
        let mut reads = 0u64;
        let mut last_read_of_group: std::collections::HashMap<u64, u64> = Default::default();
        for (line, is_write, pc) in ops {
            let access = if is_write {
                Access::write(CoreId((line % 2) as u16), LineAddr::new(line), pc * 4)
            } else {
                reads += 1;
                last_read_of_group.insert(line % 1024, line);
                Access::read(CoreId((line % 2) as u16), LineAddr::new(line), pc * 4)
            };
            let r = cameo.access(now, &access);
            prop_assert!(r.completion > now);
            now += Cycle::new(1);
        }
        let s = cameo.stats();
        prop_assert_eq!(s.demand_reads, reads);
        prop_assert_eq!(s.serviced_stacked + s.serviced_off_chip, reads);
        // Reading any most-recently-read line again must hit stacked DRAM.
        for (_, line) in last_read_of_group {
            let r = cameo.access(now, &Access::read(CoreId(0), LineAddr::new(line), 0));
            prop_assert_eq!(r.serviced_by, MemKind::Stacked, "line {} not resident", line);
        }
    }

    /// With a perfect predictor, accuracy is exactly 1 and no bandwidth is
    /// wasted.
    #[test]
    fn perfect_prediction_never_wastes(
        lines in prop::collection::vec(0u64..4096, 1..200),
    ) {
        let mut cameo = Cameo::new(CameoConfig {
            stacked: ByteSize::from_kib(64),
            off_chip: ByteSize::from_kib(192),
            llt: LltDesign::CoLocated,
            predictor: PredictorKind::Perfect,
            cores: 1,
            llp_entries: 64,
        });
        let mut now = Cycle::ZERO;
        for l in &lines {
            let r = cameo.access(now, &Access::read(CoreId(0), LineAddr::new(*l), 0x40));
            now = r.completion;
        }
        prop_assert_eq!(cameo.stats().cases.accuracy(), Some(1.0));
        prop_assert_eq!(cameo.stats().wasted_off_chip_fetches, 0);
    }

    /// SAM never wastes bandwidth either (it never launches parallel
    /// fetches); its only penalty is latency (case 3).
    #[test]
    fn sam_never_fetches_speculatively(
        lines in prop::collection::vec(0u64..4096, 1..200),
    ) {
        let mut cameo = Cameo::new(CameoConfig {
            stacked: ByteSize::from_kib(64),
            off_chip: ByteSize::from_kib(192),
            llt: LltDesign::CoLocated,
            predictor: PredictorKind::SerialAccess,
            cores: 1,
            llp_entries: 64,
        });
        let mut now = Cycle::ZERO;
        for l in &lines {
            let r = cameo.access(now, &Access::read(CoreId(0), LineAddr::new(*l), 0x40));
            now = r.completion;
        }
        prop_assert_eq!(cameo.stats().wasted_off_chip_fetches, 0);
        let s = cameo.stats();
        prop_assert_eq!(
            s.cases.count(PredictionCase::OffChipPredictedStacked),
            s.serviced_off_chip
        );
    }
}

/// With `deep-audit` enabled, the controller re-verifies its invariants on
/// *every* access (not just the sampled schedule), so arbitrary traffic
/// that would corrupt the LLT, the congruence mapping, or the counters
/// panics inside the run rather than slipping through.
#[cfg(feature = "deep-audit")]
mod deep_audit {
    use super::*;
    use cameo::audit::InvariantAuditor;

    proptest! {
        /// Arbitrary mixed traffic through every LLT design keeps every
        /// audited invariant intact, both during the run (per-access audit)
        /// and at the end (explicit final audit).
        #[test]
        fn controller_survives_unconditional_audits(
            design in prop_oneof![
                Just(LltDesign::Ideal),
                Just(LltDesign::Sram),
                Just(LltDesign::Embedded),
                Just(LltDesign::CoLocated),
            ],
            ops in prop::collection::vec((0u64..4096, any::<bool>(), 0u64..64), 1..150),
        ) {
            let mut cameo = Cameo::new(CameoConfig {
                stacked: ByteSize::from_kib(64),
                off_chip: ByteSize::from_kib(192),
                llt: design,
                predictor: PredictorKind::Llp,
                cores: 2,
                llp_entries: 64,
            });
            cameo.set_auditor(InvariantAuditor::always());
            let mut now = Cycle::ZERO;
            for (line, is_write, pc) in ops {
                let core = CoreId((line % 2) as u16);
                let access = if is_write {
                    Access::write(core, LineAddr::new(line), pc * 4)
                } else {
                    Access::read(core, LineAddr::new(line), pc * 4)
                };
                cameo.access(now, &access);
                now += Cycle::new(1);
            }
            prop_assert!(cameo.audit_now().is_ok());
        }

        /// Resetting the statistics mid-run rebaselines the swap counter,
        /// so the swaps-bounded-by-off-chip-reads invariant keeps holding
        /// over the post-reset window.
        #[test]
        fn audits_survive_stats_reset(
            warm in prop::collection::vec(0u64..4096, 1..100),
            measured in prop::collection::vec(0u64..4096, 1..100),
        ) {
            let mut cameo = Cameo::new(CameoConfig {
                stacked: ByteSize::from_kib(64),
                off_chip: ByteSize::from_kib(192),
                llt: LltDesign::CoLocated,
                predictor: PredictorKind::SerialAccess,
                cores: 1,
                llp_entries: 64,
            });
            cameo.set_auditor(InvariantAuditor::always());
            let mut now = Cycle::ZERO;
            for l in warm {
                cameo.access(now, &Access::read(CoreId(0), LineAddr::new(l), 0x40));
                now += Cycle::new(1);
            }
            cameo.reset_stats();
            for l in measured {
                cameo.access(now, &Access::read(CoreId(0), LineAddr::new(l), 0x40));
                now += Cycle::new(1);
            }
            prop_assert!(cameo.audit_now().is_ok());
        }
    }
}
