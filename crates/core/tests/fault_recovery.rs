//! End-to-end fault→recovery tests on the controller: metadata bit flips
//! injected at the device layer either get corrected/rebuilt (leaving the
//! LLT invariants intact) or — with recovery off — are *detected* by the
//! deep-audit layer rather than silently corrupting results.
//!
//! Requires `--features faults`; the audit assertions additionally need
//! `--features deep-audit` (CI runs both together).
#![cfg(feature = "faults")]

use cameo::recovery::RecoveryConfig;
use cameo::{Cameo, CameoConfig, LltDesign, PredictorKind};
use cameo_memsim::faults::FaultConfig;
use cameo_types::{Access, ByteSize, CoreId, Cycle, LineAddr};

/// Every metadata read of the stacked device draws a single-bit flip.
const ALWAYS_FLIP: FaultConfig = FaultConfig {
    flip_ppm: 1_000_000,
    drop_ppm: 0,
    delay_ppm: 0,
    delay_cycles: 0,
    outage: None,
};

fn controller(recovery: RecoveryConfig) -> Cameo {
    let mut cameo = Cameo::new(CameoConfig {
        stacked: ByteSize::from_mib(1),
        off_chip: ByteSize::from_mib(3),
        llt: LltDesign::CoLocated,
        predictor: PredictorKind::Llp,
        cores: 2,
        llp_entries: 64,
    });
    cameo.inject_faults(ALWAYS_FLIP, 0xFA17);
    cameo.set_recovery(recovery);
    #[cfg(feature = "deep-audit")]
    cameo.set_auditor(cameo::audit::InvariantAuditor::always());
    cameo
}

/// Drives `n` reads over a spread of lines (stacked and off-chip ways
/// alike, so LEAD probes, swaps and parallel fetches all happen).
fn drive(cameo: &mut Cameo, n: u64) {
    let mut now = Cycle::ZERO;
    for i in 0..n {
        let line = LineAddr::new((i * 997) % 60_000);
        let access = Access::read(CoreId((i % 2) as u16), line, 0x400b00 + i);
        now = cameo.access(now, &access).completion;
    }
}

#[test]
fn ecc_corrects_every_flip_and_invariants_hold() {
    let mut cameo = controller(RecoveryConfig::ecc_only());
    drive(&mut cameo, 200);
    let stats = cameo.recovery_stats();
    assert!(
        stats.ecc_corrected > 0,
        "faults were injected and corrected"
    );
    assert_eq!(stats.flips_escaped, 0, "SECDED catches single-bit flips");
    assert!(!cameo.degraded());
    #[cfg(feature = "deep-audit")]
    cameo
        .audit_now()
        .expect("with ECC on, no flip reaches the LLT");
}

#[test]
fn scrub_rebuilds_corrupt_entries_without_ecc() {
    let mut cameo = controller(RecoveryConfig::scrub_only());
    drive(&mut cameo, 200);
    let stats = cameo.recovery_stats();
    assert!(stats.flips_escaped > 0, "without ECC every flip escapes");
    assert!(stats.scrubs > 0, "escaped flips trigger entry rebuilds");
    #[cfg(feature = "deep-audit")]
    cameo
        .audit_now()
        .expect("scrub restores every corrupted entry before use");
}

/// The negative control: with recovery off, injected flips must be
/// *detected* — the audited run panics with a deep-audit violation — and
/// never pass as a silently-wrong simulation result.
#[cfg(feature = "deep-audit")]
#[test]
fn unrecovered_corruption_is_detected_not_silent() {
    let outcome = std::panic::catch_unwind(|| {
        let mut cameo = controller(RecoveryConfig::none());
        drive(&mut cameo, 200);
        // If no access tripped the always-on auditor, the final sweep must.
        cameo.audit_now().is_err()
    });
    match outcome {
        Err(panic) => {
            let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("deep-audit"),
                "expected a deep-audit violation, got: {msg}"
            );
        }
        Ok(detected) => assert!(detected, "corruption must not go undetected"),
    }
}

/// Without deep-audit the `none` policy still *counts* the escapes, so a
/// plain build can observe that faults landed unchecked.
#[test]
fn disabled_recovery_reports_escaped_flips() {
    // The always-on auditor (when compiled in) would panic here by design;
    // this test only cares about the counters, so catch the unwind.
    let stats = std::panic::catch_unwind(|| {
        let mut cameo = controller(RecoveryConfig::none());
        drive(&mut cameo, 50);
        *cameo.recovery_stats()
    });
    if let Ok(stats) = stats {
        assert!(stats.flips_escaped > 0);
        assert_eq!(stats.ecc_corrected, 0);
    }
    // An Err means deep-audit killed the run first — also a pass: the
    // corruption was loudly detected (see the test above).
}
