//! Property-based tests for the trace generators.

use cameo_workloads::{suite, TraceConfig, TraceGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every benchmark's generator stays inside its footprint and produces
    /// positive gaps, for arbitrary seeds and scales.
    #[test]
    fn addresses_in_footprint(
        bench_idx in 0usize..17,
        seed in 0u64..1000,
        scale_pow in 6u32..13,
    ) {
        let spec = suite()[bench_idx];
        let mut g = TraceGenerator::new(spec, TraceConfig {
            scale: 1 << scale_pow,
            seed,
            core_offset_pages: 0,
        });
        let pages = g.footprint_pages();
        for _ in 0..2000 {
            let e = g.next_event();
            prop_assert!(e.line.page().raw() < pages);
            prop_assert!(e.gap_instructions >= 1);
        }
    }

    /// Observed MPKI converges to the configured Table II value for every
    /// benchmark in the suite.
    #[test]
    fn mpki_converges(bench_idx in 0usize..17, seed in 0u64..100) {
        let spec = suite()[bench_idx];
        let mut g = TraceGenerator::new(spec, TraceConfig {
            scale: 128,
            seed,
            core_offset_pages: 0,
        });
        for _ in 0..30_000 {
            g.next_event();
        }
        let observed = g.observed_mpki().unwrap();
        let err = (observed - spec.mpki).abs() / spec.mpki;
        prop_assert!(err < 0.1, "{}: {observed:.2} vs {}", spec.name, spec.mpki);
    }

    /// The offset shifts addresses without changing the stream shape: the
    /// same seed with different offsets yields identical page-relative
    /// sequences.
    #[test]
    fn offset_is_pure_translation(seed in 0u64..1000, offset in 1u64..1_000_000) {
        let spec = cameo_workloads::by_name("gcc").unwrap();
        let mk = |off| TraceGenerator::new(spec, TraceConfig {
            scale: 256,
            seed,
            core_offset_pages: off,
        });
        let mut a = mk(0);
        let mut b = mk(offset);
        for _ in 0..500 {
            let ea = a.next_event();
            let eb = b.next_event();
            prop_assert_eq!(ea.line.raw() + offset * 64, eb.line.raw());
            prop_assert_eq!(ea.pc, eb.pc);
            prop_assert_eq!(ea.is_write, eb.is_write);
            prop_assert_eq!(ea.gap_instructions, eb.gap_instructions);
        }
    }

    /// PCs always come from the benchmark's configured pool (4-byte spaced
    /// synthetic code region).
    #[test]
    fn pcs_within_pool(bench_idx in 0usize..17, seed in 0u64..100) {
        let spec = suite()[bench_idx];
        let mut g = TraceGenerator::new(spec, TraceConfig {
            scale: 256,
            seed,
            core_offset_pages: 0,
        });
        let base = 0x0040_0000u64;
        let span = spec.behavior.pc_pool as u64 * 4;
        for _ in 0..2000 {
            let e = g.next_event();
            prop_assert!(e.pc >= base && e.pc < base + span);
            prop_assert_eq!(e.pc % 4, 0);
        }
    }
}
