//! Synthetic SPEC CPU2006-like memory trace generators (paper Table II).
//!
//! The paper drives its memory system with post-L3 miss streams from
//! 20-billion-instruction SPEC slices in 32-copy rate mode. Those traces
//! are proprietary; this crate substitutes parameterized generators that
//! reproduce the properties the memory system reacts to:
//!
//! * **Miss density** — inter-miss instruction gaps are geometric with mean
//!   `1000 / MPKI`, matching each benchmark's Table II L3 MPKI.
//! * **Footprint** — virtual addresses span the benchmark's Table II
//!   footprint (scaled by the same factor as the memory capacities), which
//!   determines paging pressure.
//! * **Temporal locality** — a hot subset of pages absorbs most accesses
//!   (tunable fraction/probability), which sets the stacked-DRAM service
//!   rate that line migration can harvest.
//! * **Spatial locality** — a streaming component walks lines sequentially,
//!   and non-streamed accesses touch only a benchmark-specific fraction of
//!   each page's lines ("page density"; e.g. milc uses ~10 of 64 lines),
//!   which is what makes page-granularity TLM migration wasteful.
//! * **PC behavior** — accesses carry instruction addresses drawn from a
//!   small per-stream pool, giving the PC↔location correlation the Line
//!   Location Predictor exploits.
//!
//! # Examples
//!
//! ```
//! use cameo_workloads::{suite, TraceConfig, TraceGenerator};
//!
//! let spec = cameo_workloads::by_name("milc").unwrap();
//! let mut gen = TraceGenerator::new(spec, TraceConfig { scale: 64, seed: 1, core_offset_pages: 0 });
//! let ev = gen.next_event();
//! assert!(ev.gap_instructions >= 1);
//! assert_eq!(suite().len(), 17);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod suite;

pub use generator::{MissEvent, TraceConfig, TraceGenerator};
pub use suite::{by_name, require, suite, Behavior, BenchSpec, Category, UnknownBenchmark};

/// A source of post-L3 miss events — implemented by the synthetic
/// [`TraceGenerator`] and by recorded-trace replayers (`cameo-trace`), so
/// the simulation driver can run from either.
pub trait MissStream {
    /// Produces the next miss event. Streams are infinite from the
    /// runner's perspective; finite recordings wrap around.
    fn next_event(&mut self) -> MissEvent;

    /// Virtual footprint of this stream in pages (used for page prefill).
    fn footprint_pages(&self) -> u64;

    /// The virtual pages this stream will touch, for the runner's
    /// mid-slice prefill. Generators return their contiguous range;
    /// recorded traces return the distinct pages they contain.
    fn prefill_pages(&self) -> Vec<cameo_types::PageAddr> {
        (0..self.footprint_pages())
            .map(cameo_types::PageAddr::new)
            .collect()
    }
}

/// Boxed streams forward to their contents, so heterogeneous stream sets
/// (`Vec<Box<dyn MissStream>>`) satisfy generic `S: MissStream` bounds
/// while homogeneous sets stay fully devirtualized.
impl<M: MissStream + ?Sized> MissStream for Box<M> {
    fn next_event(&mut self) -> MissEvent {
        (**self).next_event()
    }

    fn footprint_pages(&self) -> u64 {
        (**self).footprint_pages()
    }

    fn prefill_pages(&self) -> Vec<cameo_types::PageAddr> {
        (**self).prefill_pages()
    }
}

impl MissStream for TraceGenerator {
    fn next_event(&mut self) -> MissEvent {
        TraceGenerator::next_event(self)
    }

    fn footprint_pages(&self) -> u64 {
        TraceGenerator::footprint_pages(self)
    }

    fn prefill_pages(&self) -> Vec<cameo_types::PageAddr> {
        let offset = self.offset_pages();
        (offset..offset + TraceGenerator::footprint_pages(self))
            .map(cameo_types::PageAddr::new)
            .collect()
    }
}
