//! The trace generator: turns a [`BenchSpec`]'s locality model into a
//! deterministic post-L3 miss stream.

use cameo_types::{LineAddr, LINES_PER_PAGE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::suite::BenchSpec;

/// Configuration of one generator instance (one core's copy in rate mode).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceConfig {
    /// Capacity scale factor shared with the memory configuration (the
    /// footprint is divided by it).
    pub scale: u64,
    /// RNG seed; distinct per core for distinct-but-statistically-identical
    /// rate-mode copies.
    pub seed: u64,
    /// Virtual-page offset of this copy, so rate-mode copies occupy
    /// disjoint address ranges (the paper's virtual-to-physical mapping
    /// "ensures that multiple benchmarks do not map to the same physical
    /// address").
    pub core_offset_pages: u64,
}

/// One L3 miss: how many instructions retired since the previous miss, and
/// the (virtual) access itself.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MissEvent {
    /// Instructions executed since the previous miss on the same core.
    pub gap_instructions: u64,
    /// Virtual line address.
    pub line: LineAddr,
    /// Instruction address that caused the miss.
    pub pc: u64,
    /// Whether this is a write (dirty writeback / store miss).
    pub is_write: bool,
}

/// Deterministic synthetic miss-stream generator for one benchmark copy.
///
/// See the crate docs for the modeled properties. Streams, hot-set reuse
/// and uniform cold accesses are mixed according to the benchmark's
/// [`Behavior`](crate::Behavior).
///
/// # Examples
///
/// ```
/// use cameo_workloads::{by_name, TraceConfig, TraceGenerator};
///
/// let spec = by_name("libquantum").unwrap();
/// let mut gen = TraceGenerator::new(spec, TraceConfig { scale: 64, seed: 9, core_offset_pages: 0 });
/// let events: Vec<_> = (0..100).map(|_| gen.next_event()).collect();
/// assert!(events.iter().all(|e| e.gap_instructions >= 1));
/// ```
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    spec: BenchSpec,
    cfg: TraceConfig,
    rng: SmallRng,
    /// Scaled footprint in pages (at least one).
    pages: u64,
    hot_pages: u64,
    /// Lines used per page (spatial density), at least one.
    used_lines: u64,
    mean_gap: f64,
    // Sequential-stream state.
    stream_page: u64,
    stream_line: u64,
    stream_remaining: u64,
    stream_pc: u64,
    // Cold-walk state: a pointer-walker dwells on a page for several
    // misses (its spatial locality) before moving to the next one, walking
    // the page's used lines in order.
    cold_page: u64,
    cold_remaining: u64,
    cold_pc: u64,
    cold_line: u64,
    // Hot-set dwell state.
    hot_page: u64,
    hot_remaining: u64,
    hot_pc: u64,
    // Running counters for calibration checks.
    instructions: u64,
    misses: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.scale` is zero.
    pub fn new(spec: BenchSpec, cfg: TraceConfig) -> Self {
        let pages = spec.scaled_footprint(cfg.scale).pages().max(1);
        let hot_pages = ((pages as f64 * spec.behavior.hot_fraction) as u64).max(1);
        let used_lines =
            ((LINES_PER_PAGE as f64 * spec.behavior.page_density).round() as u64).clamp(1, 64);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xCA3E0_CA3E0);
        let stream_page = rng.gen_range(0..pages);
        Self {
            spec,
            cfg,
            rng,
            pages,
            hot_pages,
            used_lines,
            mean_gap: 1000.0 / spec.mpki,
            stream_page,
            stream_line: 0,
            stream_remaining: 0,
            stream_pc: 0,
            cold_page: 0,
            cold_remaining: 0,
            cold_pc: 0,
            cold_line: 0,
            hot_page: 0,
            hot_remaining: 0,
            hot_pc: 0,
            instructions: 0,
            misses: 0,
        }
    }

    /// The benchmark this generator models.
    #[inline]
    pub fn spec(&self) -> &BenchSpec {
        &self.spec
    }

    /// Scaled footprint in pages.
    #[inline]
    pub fn footprint_pages(&self) -> u64 {
        self.pages
    }

    /// Virtual-page offset of this copy (rate-mode address partitioning).
    #[inline]
    pub fn offset_pages(&self) -> u64 {
        self.cfg.core_offset_pages
    }

    /// Running MPKI of the generated stream (sanity check against Table
    /// II); `None` before the first event.
    pub fn observed_mpki(&self) -> Option<f64> {
        (self.instructions > 0).then(|| self.misses as f64 * 1000.0 / self.instructions as f64)
    }

    /// Draws the next miss event.
    pub fn next_event(&mut self) -> MissEvent {
        let gap = self.sample_gap();
        let b = self.spec.behavior;
        let (page, line_in_page, pc) = if self.rng.gen_bool(b.stream_prob) {
            self.next_stream()
        } else if self.rng.gen_bool(b.hot_access_prob) {
            self.next_hot()
        } else {
            self.next_cold()
        };
        let is_write = self.rng.gen_bool(b.write_fraction);
        let line = LineAddr::new(
            (self.cfg.core_offset_pages + page) * LINES_PER_PAGE as u64 + line_in_page,
        );
        self.instructions += gap;
        self.misses += 1;
        MissEvent {
            gap_instructions: gap,
            line,
            pc,
            is_write,
        }
    }

    /// Geometric inter-miss gap with mean `1000 / MPKI`.
    fn sample_gap(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        ((-self.mean_gap * u.ln()) as u64).max(1)
    }

    fn pc_of(&self, pool_slot: usize) -> u64 {
        // Synthetic code region: 4-byte spaced "instructions".
        0x0040_0000 + (pool_slot as u64 % self.spec.behavior.pc_pool as u64) * 4
    }

    fn next_stream(&mut self) -> (u64, u64, u64) {
        if self.stream_remaining == 0 {
            // Start a new stream at a random page with a fresh loop PC.
            self.stream_page = self.rng.gen_range(0..self.pages);
            self.stream_line = 0;
            self.stream_remaining = self.rng.gen_range(64..512);
            self.stream_pc = self.rng.gen_range(0..4.min(self.spec.behavior.pc_pool)) as u64;
        }
        self.stream_remaining -= 1;
        let out = (
            self.stream_page,
            self.stream_line,
            self.pc_of(self.stream_pc as usize),
        );
        self.stream_line += 1;
        if self.stream_line >= LINES_PER_PAGE as u64 {
            self.stream_line = 0;
            self.stream_page = (self.stream_page + 1) % self.pages;
        }
        out
    }

    /// Slot ranges inside the PC pool: streams use the first few slots;
    /// hot-set loops and cold walkers split the remainder. Keeping them
    /// disjoint mirrors real programs, where the instructions that traverse
    /// a resident working set are not the ones paging through cold data —
    /// the separation is what makes PC-indexed last-location prediction
    /// effective (paper Section V-B).
    fn hot_pc_slot(&self, page: u64) -> usize {
        let span = ((self.spec.behavior.pc_pool.saturating_sub(4)) / 2).max(1);
        4 + (page % span as u64) as usize
    }

    fn cold_pc_slot(&self, page: u64) -> usize {
        let span = ((self.spec.behavior.pc_pool.saturating_sub(4)) / 2).max(1);
        4 + span + (page % span as u64) as usize
    }

    /// A skewed pick within the hot set: quadratic rank skew concentrates
    /// accesses on the hottest pages without a full Zipf sampler; short
    /// dwells model loop iterations touching a few lines of a page.
    fn next_hot(&mut self) -> (u64, u64, u64) {
        if self.hot_remaining == 0 {
            let u: f64 = self.rng.gen();
            self.hot_page = ((u * u) * self.hot_pages as f64) as u64 % self.hot_pages;
            self.hot_remaining = self.rng.gen_range(1..=4);
            self.hot_pc = self.pc_of(self.hot_pc_slot(self.hot_page));
        }
        self.hot_remaining -= 1;
        let line = self.line_within(self.hot_page);
        (self.hot_page, line, self.hot_pc)
    }

    /// A cold walker: picks a page uniformly over the footprint and dwells
    /// on it for several misses — a walker has spatial locality within a
    /// page even when the page itself is cold — before moving on. Lines
    /// are visited in order from the page's used-window start, so repeated
    /// visits re-walk the same prefix (the way real traversals re-walk the
    /// same fields of a record).
    fn next_cold(&mut self) -> (u64, u64, u64) {
        if self.cold_remaining == 0 {
            self.cold_page = self.rng.gen_range(0..self.pages);
            self.cold_remaining = self.rng.gen_range(2..=self.used_lines.max(2));
            self.cold_pc = self.pc_of(self.cold_pc_slot(self.cold_page));
            self.cold_line = self.window_start(self.cold_page);
        }
        self.cold_remaining -= 1;
        let line = self.cold_line.min(63);
        self.cold_line += 1;
        (self.cold_page, line, self.cold_pc)
    }

    /// Start of the page's deterministic used-lines window (partial page
    /// usage: only `used_lines` of the 64 lines are ever touched).
    fn window_start(&self, page: u64) -> u64 {
        let window = LINES_PER_PAGE as u64 - self.used_lines;
        if window == 0 {
            0
        } else {
            (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % (window + 1)
        }
    }

    /// Picks a line within the page's used-lines window, modeling partial
    /// page usage.
    fn line_within(&mut self, page: u64) -> u64 {
        self.window_start(page) + self.rng.gen_range(0..self.used_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::by_name;
    use std::collections::HashSet;

    fn generator(name: &str) -> TraceGenerator {
        TraceGenerator::new(
            by_name(name).unwrap(),
            TraceConfig {
                scale: 64,
                seed: 7,
                core_offset_pages: 0,
            },
        )
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = generator("mcf");
        let mut b = generator("mcf");
        for _ in 0..1000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = by_name("mcf").unwrap();
        let mut a = TraceGenerator::new(
            spec,
            TraceConfig {
                scale: 64,
                seed: 1,
                core_offset_pages: 0,
            },
        );
        let mut b = TraceGenerator::new(
            spec,
            TraceConfig {
                scale: 64,
                seed: 2,
                core_offset_pages: 0,
            },
        );
        let ea: Vec<_> = (0..100).map(|_| a.next_event()).collect();
        let eb: Vec<_> = (0..100).map(|_| b.next_event()).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn mpki_matches_table2() {
        for name in ["mcf", "libquantum", "astar", "gcc"] {
            let mut g = generator(name);
            for _ in 0..50_000 {
                g.next_event();
            }
            let target = g.spec().mpki;
            let observed = g.observed_mpki().unwrap();
            let err = (observed - target).abs() / target;
            assert!(err < 0.05, "{name}: observed {observed:.2} vs {target}");
        }
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let mut g = generator("sphinx3");
        let pages = g.footprint_pages();
        for _ in 0..10_000 {
            let e = g.next_event();
            assert!(e.line.page().raw() < pages);
        }
    }

    #[test]
    fn core_offset_separates_copies() {
        let spec = by_name("astar").unwrap();
        let mk = |offset| {
            TraceGenerator::new(
                spec,
                TraceConfig {
                    scale: 64,
                    seed: 3,
                    core_offset_pages: offset,
                },
            )
        };
        let mut a = mk(0);
        let pages = a.footprint_pages();
        let mut b = mk(pages);
        let pa: HashSet<u64> = (0..5000)
            .map(|_| a.next_event().line.page().raw())
            .collect();
        let pb: HashSet<u64> = (0..5000)
            .map(|_| b.next_event().line.page().raw())
            .collect();
        assert!(pa.is_disjoint(&pb));
    }

    #[test]
    fn page_density_respected() {
        // milc must touch few distinct lines per page; libquantum touches
        // essentially all.
        let count_density = |name: &str| {
            let mut g = generator(name);
            let mut lines_by_page: std::collections::HashMap<u64, HashSet<u64>> =
                Default::default();
            for _ in 0..200_000 {
                let e = g.next_event();
                lines_by_page
                    .entry(e.line.page().raw())
                    .or_default()
                    .insert(e.line.offset_in_page() as u64);
            }
            // Average distinct lines among well-touched pages.
            let touched: Vec<_> = lines_by_page
                .values()
                .filter(|s| s.len() > 1)
                .map(|s| s.len() as f64)
                .collect();
            touched.iter().sum::<f64>() / touched.len() as f64
        };
        let milc = count_density("milc");
        let libq = count_density("libquantum");
        assert!(milc < 16.0, "milc density too high: {milc}");
        assert!(libq > 32.0, "libquantum density too low: {libq}");
    }

    #[test]
    fn writes_present_but_minority() {
        let mut g = generator("gcc");
        let writes = (0..10_000).filter(|_| g.next_event().is_write).count();
        assert!(writes > 1000 && writes < 5000, "writes = {writes}");
    }

    #[test]
    fn pcs_come_from_small_pool() {
        let mut g = generator("libquantum");
        let pcs: HashSet<u64> = (0..10_000).map(|_| g.next_event().pc).collect();
        assert!(pcs.len() <= g.spec().behavior.pc_pool);
    }

    #[test]
    fn gap_mean_tracks_mpki() {
        // The geometric inter-miss gap must average ~1000/MPKI.
        let mut g = generator("omnetpp"); // MPKI 20.5
        let n = 100_000;
        let total: u64 = (0..n).map(|_| g.next_event().gap_instructions).sum();
        let mean = total as f64 / f64::from(n);
        let expected = 1000.0 / 20.5;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean gap {mean:.1} vs expected {expected:.1}"
        );
    }

    #[test]
    fn streams_are_sequential() {
        // libquantum is ~95% streaming: consecutive events are mostly
        // line+1 of the previous one.
        let mut g = generator("libquantum");
        let mut sequential = 0;
        let mut prev = g.next_event().line.raw();
        let n = 20_000;
        for _ in 0..n {
            let cur = g.next_event().line.raw();
            if cur == prev + 1 {
                sequential += 1;
            }
            prev = cur;
        }
        assert!(
            f64::from(sequential) / f64::from(n) > 0.8,
            "only {sequential}/{n} sequential"
        );
    }

    #[test]
    fn cold_walk_revisits_same_prefix() {
        // Two dwells on the same cold page start at the same line (the
        // walker re-walks the record's fields), which is what lets
        // last-time location prediction work on cold data. Use a pure-cold
        // behavior so every event comes from the cold walker.
        let mut spec = by_name("mcf").unwrap();
        spec.behavior.stream_prob = 0.0;
        spec.behavior.hot_access_prob = 0.0;
        let mut g = TraceGenerator::new(
            spec,
            TraceConfig {
                scale: 8192,
                seed: 5,
                core_offset_pages: 0,
            },
        );
        let mut first_lines: std::collections::HashMap<u64, u64> = Default::default();
        let mut prefix_repeats = 0;
        let mut revisits = 0;
        let mut prev_page = u64::MAX;
        for _ in 0..100_000 {
            let e = g.next_event();
            let page = e.line.page().raw();
            if page != prev_page {
                match first_lines.entry(page) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(e.line.offset_in_page() as u64);
                    }
                    std::collections::hash_map::Entry::Occupied(o) => {
                        revisits += 1;
                        if *o.get() == e.line.offset_in_page() as u64 {
                            prefix_repeats += 1;
                        }
                    }
                }
            }
            prev_page = page;
        }
        assert!(revisits > 50, "not enough revisits to judge: {revisits}");
        assert!(
            f64::from(prefix_repeats) / f64::from(revisits) > 0.9,
            "{prefix_repeats}/{revisits} prefix repeats"
        );
    }

    #[test]
    fn hot_set_concentrates_accesses() {
        let mut g = generator("astar"); // strong hot set
        let pages = g.footprint_pages();
        let mut counts: std::collections::HashMap<u64, u64> = Default::default();
        for _ in 0..100_000 {
            *counts.entry(g.next_event().line.page().raw()).or_insert(0) += 1;
        }
        // The top 30% of pages must absorb well over half the accesses.
        let mut by_count: Vec<u64> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = by_count.iter().take((pages as usize * 3 / 10).max(1)).sum();
        let total: u64 = by_count.iter().sum();
        assert!(top as f64 / total as f64 > 0.6);
    }
}
