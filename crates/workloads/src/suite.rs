//! The 17-benchmark workload suite of the paper's Table II, with per-
//! benchmark locality models.

use cameo_types::ByteSize;

/// Workload category from the paper: footprint above the 12 GB baseline
/// memory is Capacity-Limited; the rest (with L3 MPKI > 1) are
/// Latency-Limited.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Category {
    /// Footprint exceeds baseline off-chip memory; paging dominates.
    CapacityLimited,
    /// Fits in memory; DRAM latency/bandwidth dominates.
    LatencyLimited,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::CapacityLimited => f.write_str("Capacity"),
            Category::LatencyLimited => f.write_str("Latency"),
        }
    }
}

/// Locality model of one benchmark — the knobs that shape its miss stream.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Behavior {
    /// Fraction of the footprint forming the hot set.
    pub hot_fraction: f64,
    /// Probability a non-streamed access lands in the hot set.
    pub hot_access_prob: f64,
    /// Probability an access continues a sequential stream.
    pub stream_prob: f64,
    /// Fraction of each page's 64 lines the benchmark ever touches
    /// (spatial locality; milc's ~10/64 is the paper's example of a
    /// TLM-hostile workload).
    pub page_density: f64,
    /// Fraction of misses that are writes (dirty LLC victims / stores).
    pub write_fraction: f64,
    /// Distinct instruction addresses generating misses (loop points).
    pub pc_pool: usize,
}

impl Behavior {
    /// Checks that all knobs are within their valid ranges.
    ///
    /// # Panics
    ///
    /// Panics on any probability outside `[0, 1]`, a non-positive page
    /// density, or an empty PC pool.
    pub fn validate(&self) {
        for (name, v) in [
            ("hot_fraction", self.hot_fraction),
            ("hot_access_prob", self.hot_access_prob),
            ("stream_prob", self.stream_prob),
            ("page_density", self.page_density),
            ("write_fraction", self.write_fraction),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} out of [0,1]: {v}");
        }
        assert!(self.page_density > 0.0, "page_density must be positive");
        assert!(self.pc_pool > 0, "pc_pool must be non-empty");
    }
}

/// One benchmark of Table II: measured characteristics plus the locality
/// model that reproduces them synthetically.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BenchSpec {
    /// SPEC benchmark name.
    pub name: &'static str,
    /// Workload category.
    pub category: Category,
    /// L3 misses per thousand instructions (Table II).
    pub mpki: f64,
    /// Full-scale memory footprint (Table II).
    pub footprint: ByteSize,
    /// Locality model.
    pub behavior: Behavior,
}

impl BenchSpec {
    /// Footprint after dividing by the simulation scale factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn scaled_footprint(&self, scale: u64) -> ByteSize {
        self.footprint.scale_down(scale)
    }

    /// The static memory/cache split (percent of the stacked die left as
    /// OS-visible memory) this benchmark's Table II profile predicts a
    /// MemCache hybrid prefers: capacity-limited workloads page against
    /// off-chip memory, so every stacked gigabyte spent on cache costs
    /// them visible capacity — they want the largest memory split.
    /// Latency-limited workloads fit in memory regardless, so the die
    /// earns more as cache — they want the smallest.
    pub fn preferred_memcache_split(&self) -> u8 {
        match self.category {
            Category::CapacityLimited => 75,
            Category::LatencyLimited => 25,
        }
    }
}

const fn gb(tenths: u64) -> ByteSize {
    // Table II quotes decimal-looking "GB" figures; treat them as GiB
    // tenths for exact integer arithmetic.
    ByteSize::from_bytes(tenths * 1024 * 1024 * 1024 / 10)
}

/// The full Table II suite, in the paper's order.
pub fn suite() -> Vec<BenchSpec> {
    use Category::*;
    vec![
        // --- Capacity-Limited (footprint > 12 GB) ---
        BenchSpec {
            name: "mcf",
            category: CapacityLimited,
            mpki: 39.1,
            footprint: gb(524),
            behavior: Behavior {
                // Pointer-chasing over a huge graph: weak streams, a modest
                // hot set, sparse page usage.
                hot_fraction: 0.04,
                hot_access_prob: 0.55,
                stream_prob: 0.15,
                page_density: 0.30,
                write_fraction: 0.25,
                pc_pool: 64,
            },
        },
        BenchSpec {
            name: "lbm",
            category: CapacityLimited,
            mpki: 28.9,
            footprint: gb(128),
            behavior: Behavior {
                // Lattice-Boltzmann stencil: heavily streaming, dense pages.
                hot_fraction: 0.05,
                hot_access_prob: 0.30,
                stream_prob: 0.80,
                page_density: 1.0,
                write_fraction: 0.45,
                pc_pool: 16,
            },
        },
        BenchSpec {
            name: "GemsFDTD",
            category: CapacityLimited,
            mpki: 19.1,
            footprint: gb(252),
            behavior: Behavior {
                hot_fraction: 0.06,
                hot_access_prob: 0.40,
                stream_prob: 0.60,
                page_density: 0.80,
                write_fraction: 0.35,
                pc_pool: 32,
            },
        },
        BenchSpec {
            name: "bwaves",
            category: CapacityLimited,
            mpki: 6.3,
            footprint: gb(272),
            behavior: Behavior {
                hot_fraction: 0.05,
                hot_access_prob: 0.40,
                stream_prob: 0.70,
                page_density: 0.90,
                write_fraction: 0.30,
                pc_pool: 24,
            },
        },
        BenchSpec {
            name: "cactusADM",
            category: CapacityLimited,
            mpki: 4.9,
            footprint: gb(128),
            behavior: Behavior {
                hot_fraction: 0.10,
                hot_access_prob: 0.50,
                stream_prob: 0.50,
                page_density: 0.70,
                write_fraction: 0.35,
                pc_pool: 32,
            },
        },
        BenchSpec {
            name: "zeusmp",
            category: CapacityLimited,
            mpki: 5.0,
            footprint: gb(141),
            behavior: Behavior {
                hot_fraction: 0.08,
                hot_access_prob: 0.45,
                stream_prob: 0.60,
                page_density: 0.80,
                write_fraction: 0.30,
                pc_pool: 32,
            },
        },
        // --- Latency-Limited (footprint < 12 GB, MPKI > 1) ---
        BenchSpec {
            name: "gcc",
            category: LatencyLimited,
            mpki: 63.1,
            footprint: gb(28),
            behavior: Behavior {
                hot_fraction: 0.10,
                hot_access_prob: 0.70,
                stream_prob: 0.30,
                page_density: 0.50,
                write_fraction: 0.30,
                pc_pool: 128,
            },
        },
        BenchSpec {
            name: "milc",
            category: LatencyLimited,
            mpki: 31.9,
            footprint: gb(112),
            behavior: Behavior {
                // The paper's poster child for poor spatial locality:
                // ~10 of 64 lines per page are ever used.
                hot_fraction: 0.08,
                hot_access_prob: 0.50,
                stream_prob: 0.10,
                page_density: 0.16,
                write_fraction: 0.25,
                pc_pool: 48,
            },
        },
        BenchSpec {
            name: "soplex",
            category: LatencyLimited,
            mpki: 28.9,
            footprint: gb(76),
            behavior: Behavior {
                hot_fraction: 0.10,
                hot_access_prob: 0.55,
                stream_prob: 0.40,
                page_density: 0.60,
                write_fraction: 0.25,
                pc_pool: 64,
            },
        },
        BenchSpec {
            name: "libquantum",
            category: LatencyLimited,
            mpki: 25.4,
            footprint: gb(10),
            behavior: Behavior {
                // Pure streaming over a 1 GB vector.
                hot_fraction: 0.02,
                hot_access_prob: 0.10,
                stream_prob: 0.95,
                page_density: 1.0,
                write_fraction: 0.30,
                pc_pool: 4,
            },
        },
        BenchSpec {
            name: "xalancbmk",
            category: LatencyLimited,
            mpki: 23.7,
            footprint: gb(44),
            behavior: Behavior {
                hot_fraction: 0.10,
                hot_access_prob: 0.70,
                stream_prob: 0.20,
                page_density: 0.40,
                write_fraction: 0.25,
                pc_pool: 96,
            },
        },
        BenchSpec {
            name: "omnetpp",
            category: LatencyLimited,
            mpki: 20.5,
            footprint: gb(48),
            behavior: Behavior {
                hot_fraction: 0.10,
                hot_access_prob: 0.65,
                stream_prob: 0.15,
                page_density: 0.35,
                write_fraction: 0.30,
                pc_pool: 96,
            },
        },
        BenchSpec {
            name: "leslie3d",
            category: LatencyLimited,
            mpki: 15.8,
            footprint: gb(24),
            behavior: Behavior {
                hot_fraction: 0.08,
                hot_access_prob: 0.40,
                stream_prob: 0.70,
                page_density: 0.90,
                write_fraction: 0.30,
                pc_pool: 24,
            },
        },
        BenchSpec {
            name: "sphinx3",
            category: LatencyLimited,
            mpki: 13.5,
            footprint: gb(6),
            behavior: Behavior {
                hot_fraction: 0.20,
                hot_access_prob: 0.70,
                stream_prob: 0.40,
                page_density: 0.60,
                write_fraction: 0.15,
                pc_pool: 48,
            },
        },
        BenchSpec {
            name: "bzip2",
            category: LatencyLimited,
            mpki: 3.48,
            footprint: gb(11),
            behavior: Behavior {
                hot_fraction: 0.15,
                hot_access_prob: 0.60,
                stream_prob: 0.50,
                page_density: 0.70,
                write_fraction: 0.35,
                pc_pool: 32,
            },
        },
        BenchSpec {
            name: "dealII",
            category: LatencyLimited,
            mpki: 2.33,
            footprint: gb(9),
            behavior: Behavior {
                hot_fraction: 0.20,
                hot_access_prob: 0.70,
                stream_prob: 0.30,
                page_density: 0.60,
                write_fraction: 0.25,
                pc_pool: 64,
            },
        },
        BenchSpec {
            name: "astar",
            category: LatencyLimited,
            mpki: 1.81,
            footprint: gb(1),
            behavior: Behavior {
                hot_fraction: 0.30,
                hot_access_prob: 0.80,
                stream_prob: 0.10,
                page_density: 0.30,
                write_fraction: 0.25,
                pc_pool: 48,
            },
        },
    ]
}

/// Looks a benchmark up by its SPEC name.
pub fn by_name(name: &str) -> Option<BenchSpec> {
    suite().into_iter().find(|b| b.name == name)
}

/// A benchmark name that is not in the Table II suite.
///
/// Carries the rejected name and the full list of valid names so the error
/// message tells the caller exactly what to type instead.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnknownBenchmark {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = suite().iter().map(|b| b.name).collect();
        write!(
            f,
            "unknown benchmark {:?}; the Table II suite is: {}",
            self.name,
            names.join(", ")
        )
    }
}

impl std::error::Error for UnknownBenchmark {}

/// Looks a benchmark up by name, with a descriptive error naming the whole
/// suite on failure — use this instead of `by_name(..).unwrap()`.
///
/// # Errors
///
/// Returns [`UnknownBenchmark`] when `name` is not in the Table II suite.
pub fn require(name: &str) -> Result<BenchSpec, UnknownBenchmark> {
    by_name(name).ok_or_else(|| UnknownBenchmark {
        name: name.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_benchmarks() {
        assert_eq!(suite().len(), 17);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = suite().iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn categories_match_footprint_rule() {
        // Capacity-Limited iff footprint > 12 GB baseline memory.
        let baseline = ByteSize::from_gib(12);
        for b in suite() {
            let expected = if b.footprint > baseline {
                Category::CapacityLimited
            } else {
                Category::LatencyLimited
            };
            assert_eq!(b.category, expected, "{}", b.name);
        }
    }

    #[test]
    fn table2_values_spot_check() {
        let mcf = by_name("mcf").unwrap();
        assert_eq!(mcf.mpki, 39.1);
        assert!((mcf.footprint.as_gib() - 52.4).abs() < 0.01);
        let milc = by_name("milc").unwrap();
        assert!((milc.footprint.as_gib() - 11.2).abs() < 0.01);
        // milc touches ~10 of 64 lines per page in the paper.
        assert!((milc.behavior.page_density * 64.0 - 10.0).abs() < 1.0);
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn require_names_the_suite_on_failure() {
        assert_eq!(require("astar").map(|b| b.name), Ok("astar"));
        let err = require("asstar").expect_err("typo must not resolve");
        let msg = err.to_string();
        assert!(msg.contains("asstar"), "{msg}");
        assert!(msg.contains("astar") && msg.contains("mcf"), "{msg}");
    }

    #[test]
    fn behaviors_valid() {
        for b in suite() {
            b.behavior.validate();
            assert!(b.mpki > 1.0, "{} below the MPKI>1 cut", b.name);
        }
    }

    #[test]
    fn scaled_footprint_preserves_classification() {
        let scale = 64;
        let baseline = ByteSize::from_gib(12).scale_down(scale);
        for b in suite() {
            let capacity_limited = b.scaled_footprint(scale) > baseline;
            assert_eq!(
                capacity_limited,
                b.category == Category::CapacityLimited,
                "{}",
                b.name
            );
        }
    }

    #[test]
    fn preferred_split_follows_category() {
        for b in suite() {
            let split = b.preferred_memcache_split();
            assert!(matches!(split, 25 | 75), "{}: {split}", b.name);
            assert_eq!(
                split == 75,
                b.category == Category::CapacityLimited,
                "{}: capacity-limited workloads want the die as memory",
                b.name
            );
        }
    }

    #[test]
    fn category_display() {
        assert_eq!(Category::CapacityLimited.to_string(), "Capacity");
        assert_eq!(Category::LatencyLimited.to_string(), "Latency");
    }
}
