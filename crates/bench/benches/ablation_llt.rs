//! Ablation: LLT hardware designs (Ideal / Embedded / Co-Located) — the
//! burst-of-five LEAD overhead versus the reserved-region indirection.
//!
//! Criterion measures controller throughput per design; the isolated H/M
//! latencies (Figure 8) are printed alongside, so both the simulation cost
//! and the architectural latency of each design are in one log.

use cameo::{Cameo, CameoConfig, LltDesign, PredictorKind};
use cameo_types::{Access, AccessKind, ByteSize, CoreId, Cycle, LineAddr};
use cameo_workloads::{by_name, TraceConfig, TraceGenerator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn controller(llt: LltDesign) -> Cameo {
    Cameo::new(CameoConfig {
        stacked: ByteSize::from_mib(4),
        off_chip: ByteSize::from_mib(12),
        llt,
        predictor: PredictorKind::SerialAccess,
        cores: 1,
        llp_entries: 256,
    })
}

fn isolated_latencies(llt: LltDesign) -> (u64, u64) {
    let mut h = controller(llt);
    let hit = h
        .access(
            Cycle::ZERO,
            &Access::read(CoreId(0), LineAddr::new(7), 0x40),
        )
        .completion
        .raw();
    let mut m = controller(llt);
    let stacked_lines = ByteSize::from_mib(4).lines();
    let miss = m
        .access(
            Cycle::ZERO,
            &Access::read(CoreId(0), LineAddr::new(stacked_lines + 7), 0x40),
        )
        .completion
        .raw();
    (hit, miss)
}

fn ablate_llt_design(c: &mut Criterion) {
    let mut group = c.benchmark_group("llt_design");
    for (label, design) in [
        ("ideal", LltDesign::Ideal),
        ("embedded", LltDesign::Embedded),
        ("co_located", LltDesign::CoLocated),
    ] {
        let (h, m) = isolated_latencies(design);
        eprintln!("[ablation] {label}: isolated H {h} cycles, M {m} cycles");
        group.bench_function(label, |b| {
            let mut cameo = controller(design);
            let mut generator = TraceGenerator::new(
                by_name("xalancbmk").unwrap(),
                TraceConfig {
                    scale: 512,
                    seed: 3,
                    core_offset_pages: 0,
                },
            );
            let mut now = Cycle::ZERO;
            b.iter(|| {
                let e = generator.next_event();
                let access = Access {
                    core: CoreId(0),
                    line: e.line,
                    pc: e.pc,
                    kind: if e.is_write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                };
                now = black_box(cameo.access(now, &access)).completion;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ablate_llt_design);
criterion_main!(benches);
