//! Criterion micro-benchmarks of the hot data structures: LLT
//! lookup/promote, LLP predict/train, DRAM timing step, cache probes, and
//! trace generation.

use cameo::congruence::CongruenceMap;
use cameo::llp::LineLocationPredictor;
use cameo::llt::{LineLocationTable, Slot};
use cameo_cachesim::alloy::AlloyDirectory;
use cameo_cachesim::{CacheConfig, SetAssocCache};
use cameo_memsim::{Dram, DramConfig};
use cameo_types::{ByteSize, CoreId, Cycle, LineAddr};
use cameo_workloads::{by_name, TraceConfig, TraceGenerator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_llt(c: &mut Criterion) {
    let map = CongruenceMap::new(1 << 19, 4);
    let mut llt = LineLocationTable::new(map);
    let total = map.total_lines();
    let mut i = 0u64;
    c.bench_function("llt_locate", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(llt.locate(LineAddr::new(i % total)))
        });
    });
    c.bench_function("llt_promote", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(llt.promote(LineAddr::new(i % total)))
        });
    });
}

fn bench_llp(c: &mut Criterion) {
    let mut llp = LineLocationPredictor::new(16, 256);
    let mut pc = 0u64;
    c.bench_function("llp_predict", |b| {
        b.iter(|| {
            pc = pc.wrapping_add(4);
            black_box(llp.predict(CoreId((pc % 16) as u16), pc))
        });
    });
    c.bench_function("llp_train", |b| {
        b.iter(|| {
            pc = pc.wrapping_add(4);
            llp.train(CoreId((pc % 16) as u16), pc, Slot::new((pc % 4) as u8));
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    let mut dram = Dram::new(DramConfig::stacked(ByteSize::from_mib(32)));
    let lines = ByteSize::from_mib(32).lines();
    let mut now = Cycle::ZERO;
    let mut i = 0u64;
    c.bench_function("dram_read_line", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            now += Cycle::new(2);
            black_box(dram.read_line(now, i % lines))
        });
    });
}

fn bench_caches(c: &mut Criterion) {
    let mut l3 = SetAssocCache::new(CacheConfig {
        capacity: ByteSize::from_kib(256),
        ways: 16,
        latency: Cycle::new(24),
    });
    let mut dir = AlloyDirectory::new(1 << 19);
    let mut i = 0u64;
    c.bench_function("l3_access", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(l3.access(LineAddr::new(i % (1 << 20)), i.is_multiple_of(3)))
        });
    });
    c.bench_function("alloy_probe_fill", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            let line = LineAddr::new(i % (1 << 22));
            if !dir.probe(line) {
                dir.fill(line, false);
            }
            black_box(dir.set_of(line))
        });
    });
}

fn bench_tracegen(c: &mut Criterion) {
    let spec = by_name("gcc").unwrap();
    let mut generator = TraceGenerator::new(
        spec,
        TraceConfig {
            scale: 128,
            seed: 1,
            core_offset_pages: 0,
        },
    );
    c.bench_function("trace_next_event", |b| {
        b.iter(|| black_box(generator.next_event()));
    });
}

criterion_group!(
    benches,
    bench_llt,
    bench_llp,
    bench_dram,
    bench_caches,
    bench_tracegen
);
criterion_main!(benches);
