//! Ablation: Line Location Predictor table size (1 / 64 / 256 / 1024
//! entries per core) and predictor kind (SAM / LLP / Perfect).
//!
//! Criterion measures controller throughput per configuration; each run
//! also prints the resulting prediction accuracy so the quality side of the
//! trade-off (the paper settles on 256 entries) is visible in the bench
//! log.

use cameo::{Cameo, CameoConfig, LltDesign, PredictorKind};
use cameo_types::{Access, AccessKind, ByteSize, CoreId, Cycle};
use cameo_workloads::{by_name, TraceConfig, TraceGenerator};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn controller(entries: usize, predictor: PredictorKind) -> Cameo {
    Cameo::new(CameoConfig {
        stacked: ByteSize::from_mib(4),
        off_chip: ByteSize::from_mib(12),
        llt: LltDesign::CoLocated,
        predictor,
        cores: 1,
        llp_entries: entries,
    })
}

fn trace() -> TraceGenerator {
    TraceGenerator::new(
        by_name("omnetpp").unwrap(),
        TraceConfig {
            scale: 512,
            seed: 7,
            core_offset_pages: 0,
        },
    )
}

fn drive(cameo: &mut Cameo, generator: &mut TraceGenerator, events: usize) {
    let mut now = Cycle::ZERO;
    for _ in 0..events {
        let e = generator.next_event();
        let access = Access {
            core: CoreId(0),
            line: e.line,
            pc: e.pc,
            kind: if e.is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        };
        now = black_box(cameo.access(now, &access)).completion;
    }
}

fn ablate_table_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("llp_table_size");
    for entries in [1usize, 64, 256, 1024] {
        // Report the accuracy this table size reaches on the shared trace.
        let mut probe = controller(entries, PredictorKind::Llp);
        let mut generator = trace();
        drive(&mut probe, &mut generator, 100_000);
        eprintln!(
            "[ablation] llp entries {entries}: accuracy {:.1}% ({} bytes/core)",
            probe.stats().cases.accuracy().unwrap_or(0.0) * 100.0,
            entries * 2 / 8,
        );
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, &n| {
            let mut cameo = controller(n, PredictorKind::Llp);
            let mut generator = trace();
            b.iter(|| drive(&mut cameo, &mut generator, 256));
        });
    }
    group.finish();
}

fn ablate_predictor_kind(c: &mut Criterion) {
    let mut group = c.benchmark_group("llp_predictor_kind");
    for (label, kind) in [
        ("sam", PredictorKind::SerialAccess),
        ("llp", PredictorKind::Llp),
        ("perfect", PredictorKind::Perfect),
    ] {
        group.bench_function(label, |b| {
            let mut cameo = controller(256, kind);
            let mut generator = trace();
            b.iter(|| drive(&mut cameo, &mut generator, 256));
        });
    }
    group.finish();
}

criterion_group!(benches, ablate_table_size, ablate_predictor_kind);
criterion_main!(benches);
