//! Criterion benchmark of full-organization access throughput: how many
//! simulated memory accesses per second each design point sustains on the
//! host. Useful for keeping the simulator fast as it grows.

use cameo_sim::experiments::{build_org, OrgKind};
use cameo_sim::org::MemoryOrganization;
use cameo_sim::SystemConfig;
use cameo_types::{Access, AccessKind, CoreId, Cycle};
use cameo_workloads::{by_name, TraceConfig, TraceGenerator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn drive(org: &mut dyn MemoryOrganization, generator: &mut TraceGenerator, n: usize) {
    let mut now = Cycle::ZERO;
    for _ in 0..n {
        let e = generator.next_event();
        let access = Access {
            core: CoreId(0),
            line: e.line,
            pc: e.pc,
            kind: if e.is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        };
        let r = org.access(now, &access);
        now += Cycle::new(e.gap_instructions).later(r.completion.saturating_sub(Cycle::new(100)));
    }
}

fn bench_organizations(c: &mut Criterion) {
    let config = SystemConfig {
        scale: 512,
        cores: 1,
        ..SystemConfig::default()
    };
    let bench = by_name("omnetpp").unwrap();
    let mut group = c.benchmark_group("org_access");
    for kind in [
        OrgKind::Baseline,
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::TlmDynamic,
        OrgKind::cameo_default(),
        OrgKind::DoubleUse,
    ] {
        group.bench_function(kind.label(), |b| {
            let mut org = build_org(&bench, kind, &config);
            let mut generator = TraceGenerator::new(
                bench,
                TraceConfig {
                    scale: config.scale,
                    seed: 5,
                    core_offset_pages: 0,
                },
            );
            // Warm residency so the benchmark measures the steady state.
            drive(org.as_mut(), &mut generator, 20_000);
            b.iter(|| {
                drive(org.as_mut(), &mut generator, 64);
                black_box(org.faults())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_organizations);
criterion_main!(benches);
