//! Ablation: TLM-Freq epoch length — how often the OS rebalances hot pages
//! into stacked frames (paper Section VI-D ignores software cost; the
//! bandwidth cost of each choice is what this sweeps).

use cameo_sim::experiments::{run_benchmark, OrgKind};
use cameo_sim::SystemConfig;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn config(freq_epoch: u64) -> SystemConfig {
    SystemConfig {
        scale: 512,
        cores: 2,
        instructions_per_core: 300_000,
        freq_epoch,
        ..SystemConfig::default()
    }
}

fn ablate_freq_epoch(c: &mut Criterion) {
    let bench = cameo_workloads::by_name("xalancbmk").unwrap();
    let mut group = c.benchmark_group("tlm_freq_epoch");
    group.sample_size(10);
    for epoch in [5_000u64, 20_000, 80_000] {
        let cfg = config(epoch);
        let baseline = run_benchmark(&bench, OrgKind::Baseline, &cfg);
        let freq = run_benchmark(&bench, OrgKind::TlmFreq, &cfg);
        eprintln!(
            "[ablation] epoch {epoch}: speedup {:.2}x, migrated pages {}",
            freq.speedup_over(&baseline),
            freq.migrated_pages,
        );
        group.bench_with_input(BenchmarkId::from_parameter(epoch), &epoch, |b, &e| {
            let cfg = config(e);
            b.iter(|| black_box(run_benchmark(&bench, OrgKind::TlmFreq, &cfg)));
        });
    }
    group.finish();
}

fn ablate_dynamic_vs_static(c: &mut Criterion) {
    let bench = cameo_workloads::by_name("milc").unwrap();
    let mut group = c.benchmark_group("tlm_policy");
    group.sample_size(10);
    for (label, kind) in [
        ("static", OrgKind::TlmStatic),
        ("dynamic", OrgKind::TlmDynamic),
    ] {
        group.bench_function(label, |b| {
            let cfg = config(20_000);
            b.iter(|| black_box(run_benchmark(&bench, kind, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, ablate_freq_epoch, ablate_dynamic_vs_static);
criterion_main!(benches);
