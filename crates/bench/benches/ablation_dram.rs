//! Ablation: DRAM device fidelity knobs — row-buffer policy (open vs
//! closed page) and refresh (off, as in the paper, vs DDR3-class).
//!
//! Each configuration's isolated and streaming latencies are printed so
//! the architectural effect is visible next to the simulation cost.

use cameo_memsim::{Dram, DramConfig, RefreshParams, RowPolicy};
use cameo_types::{ByteSize, Cycle};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn stream_latency(config: DramConfig) -> f64 {
    let mut d = Dram::new(config);
    let mut now = Cycle::ZERO;
    let mut sum = 0u64;
    let n = 10_000u64;
    for i in 0..n {
        let done = d.read_line(now, i);
        sum += (done - now).raw();
        now += Cycle::new(20);
    }
    sum as f64 / n as f64
}

fn ablate_row_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_row_policy");
    for (label, policy) in [
        ("open_page", RowPolicy::OpenPage),
        ("closed_page", RowPolicy::ClosedPage),
    ] {
        let mut cfg = DramConfig::off_chip(ByteSize::from_mib(96));
        cfg.row_policy = policy;
        eprintln!(
            "[ablation] {label}: streaming avg latency {:.1} cycles",
            stream_latency(cfg)
        );
        group.bench_function(label, |b| {
            let mut d = Dram::new(cfg);
            let mut now = Cycle::ZERO;
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                now += Cycle::new(20);
                black_box(d.read_line(now, i % 100_000))
            });
        });
    }
    group.finish();
}

fn ablate_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_refresh");
    for (label, refresh) in [("off", None), ("ddr3", Some(RefreshParams::ddr3()))] {
        let mut cfg = DramConfig::off_chip(ByteSize::from_mib(96));
        cfg.refresh = refresh;
        eprintln!(
            "[ablation] refresh {label}: streaming avg latency {:.1} cycles",
            stream_latency(cfg)
        );
        group.bench_function(label, |b| {
            let mut d = Dram::new(cfg);
            let mut now = Cycle::ZERO;
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                now += Cycle::new(20);
                black_box(d.read_line(now, i % 100_000))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ablate_row_policy, ablate_refresh);
criterion_main!(benches);
