//! Chaos tests for the sweep daemon: a real `sweepd` process is
//! SIGKILLed at a seeded-random instant mid-sweep, restarted on the same
//! data directory, and must converge on a report byte-identical to an
//! uninterrupted run. A second test proves the content-addressed cache
//! serves repeated submissions without simulating anything.

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use cameo_sweepd::client::Client;
use cameo_sweepd::protocol::{JobSpec, Request, Response};
use cameo_types::SplitMix64;

const GIT_REV: &str = "chaos-fixed-rev";

fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cameo-sweepd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("mkdir");
    p
}

fn spawn_daemon(socket: &Path, data_dir: &Path, point_delay_ms: u64) -> Child {
    Command::new(env!("CARGO_BIN_EXE_sweepd"))
        .arg("--socket")
        .arg(socket)
        .arg("--data-dir")
        .arg(data_dir)
        .arg("--git-rev")
        .arg(GIT_REV)
        .arg("--jobs")
        .arg("1")
        .arg("--batch")
        .arg("1")
        .arg("--point-delay-ms")
        .arg(point_delay_ms.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sweepd")
}

fn wait_socket(socket: &Path) {
    for _ in 0..200 {
        if UnixStream::connect(socket).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("daemon never bound {}", socket.display());
}

fn micro_spec() -> JobSpec {
    JobSpec {
        name: "chaos".into(),
        benches: vec!["astar".into(), "mcf".into()],
        orgs: vec!["Baseline".into(), "CAMEO".into()],
        scale: 4096,
        cores: 1,
        instructions: 20_000,
        seed: 42,
        ..JobSpec::default()
    }
}

fn wait_terminal(client: &Client, job: &str) -> String {
    for _ in 0..600 {
        if let Ok(Response::Status(jobs)) = client.request(&Request::Status {
            job: Some(job.to_owned()),
        }) {
            if let Some(progress) = jobs.first() {
                if matches!(progress.state.as_str(), "done" | "degraded" | "failed") {
                    return progress.state.clone();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("job {job} never reached a terminal state");
}

/// Fetches a finished job's report in its canonical wire rendering.
fn report_line(client: &Client, job: &str) -> String {
    let response = client
        .request(&Request::Report {
            job: job.to_owned(),
        })
        .expect("report query");
    assert!(
        matches!(response, Response::Report { .. }),
        "expected a report, got {}",
        response.render()
    );
    response.render()
}

fn drain(client: &Client, daemon: &mut Child) {
    assert!(matches!(
        client.request(&Request::Drain),
        Ok(Response::Draining)
    ));
    daemon.wait().expect("daemon exit after drain");
}

#[test]
fn sigkill_mid_sweep_resumes_to_a_byte_identical_report() {
    // Uninterrupted reference run.
    let ref_dir = temp_dir("reference");
    let ref_socket = ref_dir.join("sweepd.sock");
    let mut ref_daemon = spawn_daemon(&ref_socket, &ref_dir.join("data"), 0);
    wait_socket(&ref_socket);
    let ref_client = Client::new(&ref_socket);
    let Ok(Response::Accepted { job, cached }) =
        ref_client.request(&Request::Submit(Box::new(micro_spec())))
    else {
        panic!("reference submit failed");
    };
    assert!(!cached);
    assert_eq!(wait_terminal(&ref_client, &job), "done");
    let reference = report_line(&ref_client, &job);
    drain(&ref_client, &mut ref_daemon);

    // Chaos run: per-batch delay widens the kill window, then SIGKILL at
    // a seeded-random instant while the sweep is demonstrably mid-job.
    let dir = temp_dir("victim");
    let socket = dir.join("sweepd.sock");
    let data = dir.join("data");
    let mut daemon = spawn_daemon(&socket, &data, 300);
    wait_socket(&socket);
    let client = Client::new(&socket);
    let Ok(Response::Accepted { job: chaos_job, .. }) =
        client.request(&Request::Submit(Box::new(micro_spec())))
    else {
        panic!("chaos submit failed");
    };
    assert_eq!(chaos_job, job, "same spec + rev must content-address alike");

    let mut rng = SplitMix64::new(0xC4A0_5EED);
    let kill_after_ms = 200 + rng.below(700);
    std::thread::sleep(Duration::from_millis(kill_after_ms));
    daemon.kill().expect("SIGKILL the daemon"); // SIGKILL on unix
    daemon.wait().expect("reap the killed daemon");

    // Restart on the same data dir: the journal replays the unfinished
    // job, its checkpoint turns re-running into resuming, and the final
    // report must match the uninterrupted run byte for byte.
    let mut revived = spawn_daemon(&socket, &data, 0);
    wait_socket(&socket);
    let client = Client::new(&socket);
    assert_eq!(wait_terminal(&client, &job), "done");
    let resumed = report_line(&client, &job);
    assert_eq!(
        resumed, reference,
        "kill -9 + resume must reproduce the uninterrupted report exactly"
    );
    drain(&client, &mut revived);

    std::fs::remove_dir_all(&ref_dir).expect("cleanup");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn resubmitting_a_finished_job_simulates_nothing() {
    let dir = temp_dir("cachehit");
    let socket = dir.join("sweepd.sock");
    let data = dir.join("data");
    let mut daemon = spawn_daemon(&socket, &data, 0);
    wait_socket(&socket);
    let client = Client::new(&socket);

    let Ok(Response::Accepted { job, cached }) =
        client.request(&Request::Submit(Box::new(micro_spec())))
    else {
        panic!("submit failed");
    };
    assert!(!cached);
    assert_eq!(wait_terminal(&client, &job), "done");
    let first_report = report_line(&client, &job);

    // Remove the job's checkpoint: if a resubmission simulated (or even
    // resumed) anything, the harness would have to recreate this file.
    let checkpoint = data.join("jobs").join(format!("{job}.ckpt.jsonl"));
    assert!(checkpoint.exists(), "finished job left its checkpoint");
    std::fs::remove_file(&checkpoint).expect("drop checkpoint");

    let Ok(Response::Accepted { job: again, cached }) =
        client.request(&Request::Submit(Box::new(micro_spec())))
    else {
        panic!("resubmit failed");
    };
    assert_eq!(again, job);
    assert!(cached, "finished work must be served from cache");
    assert_eq!(
        report_line(&client, &job),
        first_report,
        "cached report is byte-identical"
    );
    assert!(
        !checkpoint.exists(),
        "a cache hit must not touch the simulation stack (checkpoint recreated)"
    );

    // A submission under a different seed is different content: fresh work.
    let mut other = micro_spec();
    other.seed += 1;
    let Ok(Response::Accepted {
        job: other_job,
        cached,
    }) = client.request(&Request::Submit(Box::new(other)))
    else {
        panic!("different-spec submit failed");
    };
    assert_ne!(other_job, job);
    assert!(!cached);
    wait_terminal(&client, &other_job);

    drain(&client, &mut daemon);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
