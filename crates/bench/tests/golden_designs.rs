//! Golden-conformance route for `ext_designs`: the binary's exact point
//! set (the org × device design matrix over the calibration benchmark,
//! baseline included, under the device-encoded key scheme of
//! `designs::sweep_points`) replayed at the micro configuration and
//! byte-compared against a checked-in reference.
//!
//! This mirrors the fig09/fig12/fig13 and fullscale golden suites: per
//! point, the byte-exact checkpoint record and a trace-totals line, so
//! drift in either simulated results or event emission fails loudly.
//! Accept an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cameo-bench --test golden_designs
//! git diff crates/bench/tests/golden/   # review, then commit
//! ```

use std::path::PathBuf;

use cameo_bench::designs::{self, device_of_key};
use cameo_sim::checkpoint::{render_record, Json};
use cameo_sim::experiments::build_org_traced_on;
use cameo_sim::harness::{run_sweep_traced_with, SweepOptions, SweepPoint, SweepReport};
use cameo_sim::trace::{SharedSink, TraceData, TraceOptions};
use cameo_sim::SystemConfig;

/// The micro configuration shared with the other golden suites: small
/// enough for every `cargo test`, large enough that every design swaps,
/// predicts, caches and migrates.
fn micro() -> SweepOptions {
    SweepOptions {
        config: SystemConfig {
            scale: 512,
            cores: 2,
            instructions_per_core: 60_000,
            seed: 42,
            ..SystemConfig::default()
        },
        // One attempt, serial: a golden must fail, not retry-and-drift.
        max_attempts: 1,
        jobs: 1,
        ..SweepOptions::default()
    }
}

/// The point set `ext_designs` runs: the flat baseline plus the full
/// design matrix on the calibration benchmark, under device-encoded keys.
fn design_points() -> Vec<SweepPoint> {
    let benches = vec![cameo_workloads::require("mcf").expect("suite benchmark")];
    designs::sweep_points(&benches, &designs::designs())
}

/// Runs the design point set with tracing armed, building each point per
/// its `(organization, device)` pair exactly as `ext_designs` does.
fn run_design_sweep(opts: &SweepOptions) -> SweepReport {
    run_sweep_traced_with(&design_points(), opts, None, &|point, config| {
        let bench = cameo_workloads::require(&point.bench).expect("suite benchmark");
        let sink = SharedSink::new(TraceOptions::default());
        let org =
            build_org_traced_on(&bench, point.kind, device_of_key(&point.key), config, sink.clone());
        (org, Some(sink))
    })
    .expect("mcf resolves and the micro config is valid")
}

/// Event-recording totals rendered as one JSON line (the same shape as
/// the other golden suites' totals line).
fn totals_line(key: &str, trace: &TraceData) -> String {
    let t = trace.totals();
    Json::Obj(vec![
        ("key".to_owned(), Json::Str(key.to_owned())),
        ("events".to_owned(), Json::U64(trace.event_count())),
        ("epochs".to_owned(), Json::U64(trace.epochs.epoch_count())),
        ("swaps".to_owned(), Json::U64(t.swaps)),
        ("llt_probes".to_owned(), Json::U64(t.llt_probes)),
        ("predicts".to_owned(), Json::U64(t.predicts)),
        ("predicts_correct".to_owned(), Json::U64(t.predicts_correct)),
        ("stacked_serviced".to_owned(), Json::U64(t.stacked_serviced)),
        (
            "off_chip_serviced".to_owned(),
            Json::U64(t.off_chip_serviced),
        ),
        ("row_hits".to_owned(), Json::U64(t.row_hits)),
        ("row_closed".to_owned(), Json::U64(t.row_closed)),
        ("row_conflicts".to_owned(), Json::U64(t.row_conflicts)),
        ("migrated_pages".to_owned(), Json::U64(t.migrated_pages)),
        ("recovery_actions".to_owned(), Json::U64(t.recovery_actions)),
    ])
    .render()
}

/// Renders a finished sweep to the golden text: alternating checkpoint
/// record and trace-totals lines, in canonical point order.
fn render_report(report: &SweepReport) -> String {
    let mut out = String::new();
    for outcome in &report.outcomes {
        out.push_str(&render_record(&outcome.point.key, &outcome.record));
        out.push('\n');
        let trace = outcome
            .trace
            .as_ref()
            .expect("fresh serial traced sweeps record every point");
        out.push_str(&totals_line(&outcome.point.key, trace));
        out.push('\n');
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/designs.jsonl")
}

/// The `ext_designs` micro-sweep is bit-stable at micro scale.
#[test]
fn golden_designs_conformance() {
    let report = run_design_sweep(&micro());
    let rendered = render_report(&report);
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading golden {}: {e}\n\
             regenerate with: UPDATE_GOLDEN=1 cargo test -p cameo-bench --test golden_designs",
            path.display()
        )
    });
    if rendered != expected {
        for (i, (got, want)) in rendered.lines().zip(expected.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "golden designs drifted at line {}: simulated results or \
                 event counts changed; if intentional, regenerate with \
                 UPDATE_GOLDEN=1 and review the diff (DESIGN.md §17)",
                i + 1
            );
        }
        panic!(
            "golden designs: line count changed ({} now vs {} expected)",
            rendered.lines().count(),
            expected.lines().count()
        );
    }
}

/// The acceptance-criterion determinism check: the design sweep's report
/// is bit-identical at any `--jobs` / `--chunk` combination.
#[test]
fn design_sweep_is_identical_at_any_jobs_and_chunk() {
    let serial = run_design_sweep(&micro());
    let chunked = run_design_sweep(&SweepOptions {
        jobs: 4,
        chunk_accesses: Some(64),
        ..micro()
    });
    assert_eq!(serial, chunked, "jobs/chunk must be invisible in results");
    assert_eq!(render_report(&serial), render_report(&chunked));
}
