//! Golden-conformance route for `ext_fullscale`: the binary's exact point
//! set (the fig13 headline micro-slice, baseline included, under the
//! column-indexed key scheme of `SpeedupGrid::collect`) replayed at the
//! micro configuration and byte-compared against a checked-in reference.
//!
//! This mirrors the fig09/fig12/fig13 golden suite in
//! `tests/end_to_end.rs`: per point, the byte-exact checkpoint record and
//! a trace-totals line, so drift in either simulated results or event
//! emission fails loudly. Accept an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cameo-bench --test golden_fullscale
//! git diff crates/bench/tests/golden/   # review, then commit
//! ```

use std::path::PathBuf;

use cameo_bench::fullscale;
use cameo_sim::checkpoint::{render_record, Json};
use cameo_sim::experiments::OrgKind;
use cameo_sim::harness::{run_sweep_traced, SweepOptions, SweepPoint, SweepReport};
use cameo_sim::trace::{TraceData, TraceOptions};
use cameo_sim::SystemConfig;

/// The micro configuration shared with the root golden suite: small
/// enough for every `cargo test`, large enough that every design swaps,
/// predicts and migrates.
fn micro() -> SweepOptions {
    SweepOptions {
        config: SystemConfig {
            scale: 512,
            cores: 2,
            instructions_per_core: 60_000,
            seed: 42,
            ..SystemConfig::default()
        },
        // One attempt, serial: a golden must fail, not retry-and-drift.
        max_attempts: 1,
        jobs: 1,
        ..SweepOptions::default()
    }
}

/// The point set `ext_fullscale` runs at every rung: the calibration
/// benchmark against baseline plus the headline columns, under the
/// column-indexed keys `SpeedupGrid::collect` assigns.
fn fullscale_points() -> Vec<SweepPoint> {
    let mut points =
        vec![SweepPoint::new("mcf", OrgKind::Baseline).with_key("mcf::#base".to_owned())];
    for (col, kind) in fullscale::kinds().into_iter().enumerate() {
        points.push(SweepPoint::new("mcf", kind).with_key(format!("mcf::#{col}")));
    }
    points
}

/// Event-recording totals rendered as one JSON line (the same shape as
/// the root golden suite's totals line).
fn totals_line(key: &str, trace: &TraceData) -> String {
    let t = trace.totals();
    Json::Obj(vec![
        ("key".to_owned(), Json::Str(key.to_owned())),
        ("events".to_owned(), Json::U64(trace.event_count())),
        ("epochs".to_owned(), Json::U64(trace.epochs.epoch_count())),
        ("swaps".to_owned(), Json::U64(t.swaps)),
        ("llt_probes".to_owned(), Json::U64(t.llt_probes)),
        ("predicts".to_owned(), Json::U64(t.predicts)),
        ("predicts_correct".to_owned(), Json::U64(t.predicts_correct)),
        ("stacked_serviced".to_owned(), Json::U64(t.stacked_serviced)),
        (
            "off_chip_serviced".to_owned(),
            Json::U64(t.off_chip_serviced),
        ),
        ("row_hits".to_owned(), Json::U64(t.row_hits)),
        ("row_closed".to_owned(), Json::U64(t.row_closed)),
        ("row_conflicts".to_owned(), Json::U64(t.row_conflicts)),
        ("migrated_pages".to_owned(), Json::U64(t.migrated_pages)),
        ("recovery_actions".to_owned(), Json::U64(t.recovery_actions)),
    ])
    .render()
}

/// Renders a finished sweep to the golden text: alternating checkpoint
/// record and trace-totals lines, in canonical point order.
fn render_report(report: &SweepReport) -> String {
    let mut out = String::new();
    for outcome in &report.outcomes {
        out.push_str(&render_record(&outcome.point.key, &outcome.record));
        out.push('\n');
        let trace = outcome
            .trace
            .as_ref()
            .expect("fresh serial traced sweeps record every point");
        out.push_str(&totals_line(&outcome.point.key, trace));
        out.push('\n');
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fullscale.jsonl")
}

/// The `ext_fullscale` micro-slice is bit-stable at micro scale.
#[test]
fn golden_fullscale_conformance() {
    let report = run_sweep_traced(&fullscale_points(), &micro(), None, TraceOptions::default())
        .expect("mcf resolves and the micro config is valid");
    let rendered = render_report(&report);
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading golden {}: {e}\n\
             regenerate with: UPDATE_GOLDEN=1 cargo test -p cameo-bench --test golden_fullscale",
            path.display()
        )
    });
    if rendered != expected {
        for (i, (got, want)) in rendered.lines().zip(expected.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "golden fullscale drifted at line {}: simulated results or \
                 event counts changed; if intentional, regenerate with \
                 UPDATE_GOLDEN=1 and review the diff (DESIGN.md §11)",
                i + 1
            );
        }
        panic!(
            "golden fullscale: line count changed ({} now vs {} expected)",
            rendered.lines().count(),
            expected.lines().count()
        );
    }
}
