//! Memory flatness of the streaming trace path: on a run long enough to
//! evict many epochs from the bounded retention ring, the resident set
//! sampled at late evictions must stay within a small factor of the
//! early samples — i.e. RSS after epoch 2N looks like RSS after epoch N,
//! instead of growing with the epoch count as the unbounded series did.

use std::sync::{Arc, Mutex};

use cameo_bench::perf;
use cameo_sim::experiments::OrgKind;
use cameo_sim::harness::{run_sweep_traced_spilling, SweepOptions, SweepPoint};
use cameo_sim::trace::{EpochSpillFn, TraceOptions};
use cameo_sim::SystemConfig;

#[test]
fn rss_stays_flat_while_epochs_stream_out() {
    if !cfg!(target_os = "linux") {
        // The RSS gauges read /proc; elsewhere there is nothing to sample.
        return;
    }
    let opts = SweepOptions {
        config: SystemConfig {
            scale: 512,
            cores: 2,
            instructions_per_core: 400_000,
            seed: 42,
            ..SystemConfig::default()
        },
        max_attempts: 1,
        jobs: 1,
        ..SweepOptions::default()
    };
    // A tiny ring so the run evicts continuously: every epoch beyond the
    // eighth streams through the spill hook, where we sample RSS.
    let trace_opts = TraceOptions {
        max_epochs: 8,
        ..TraceOptions::default()
    };
    let samples: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&samples);
    let factory = move |_point: &SweepPoint| -> Option<EpochSpillFn> {
        let sink = Arc::clone(&sink);
        Some(Box::new(move |index, _counters| {
            if let Some(rss) = perf::current_rss_bytes() {
                sink.lock()
                    .expect("no spill sampler panicked while holding the lock")
                    .push((index, rss));
            }
        }))
    };
    let points = [SweepPoint::new("mcf", OrgKind::cameo_default())];
    run_sweep_traced_spilling(&points, &opts, None, trace_opts, &factory)
        .expect("mcf resolves and the flatness config is valid");

    let samples = samples
        .lock()
        .expect("no spill sampler panicked while holding the lock");
    assert!(
        samples.len() >= 16,
        "expected a long streaming run (>=16 evictions), got {} — \
         retune instructions_per_core or max_epochs",
        samples.len()
    );
    // Compare the mean RSS over the first quarter of evictions against
    // the last quarter. Flat means the late mean stays within 1.5x of
    // the early mean plus a small allocator-noise allowance; a series
    // that still accumulated epochs would grow linearly and blow past
    // this immediately.
    let quarter = samples.len() / 4;
    let mean = |s: &[(u64, u64)]| s.iter().map(|&(_, rss)| rss).sum::<u64>() / s.len() as u64;
    let early = mean(&samples[..quarter]);
    let late = mean(&samples[samples.len() - quarter..]);
    let limit = early + early / 2 + (32 << 20);
    assert!(
        late <= limit,
        "resident set grew across streamed epochs: early mean {early} B, \
         late mean {late} B (limit {limit} B over {} evictions)",
        samples.len()
    );
}
