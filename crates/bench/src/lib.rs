//! Shared harness for the figure/table binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale N          capacity scale factor (default 128)
//! --cores N          rate-mode cores (default 8)
//! --instructions N   measured+warmup instructions per core (default 12M)
//! --seed N           deterministic seed (default 42)
//! --bench NAME       restrict to one benchmark (repeatable)
//! --quick            small smoke-test configuration
//! --csv              emit CSV instead of an aligned table
//! ```
//!
//! and prints the regenerated rows/series of one paper table or figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use cameo_sim::experiments::{gmean, run_benchmark, OrgKind};
use cameo_sim::report::Table;
use cameo_sim::{RunStats, SystemConfig};
use cameo_workloads::{suite, BenchSpec, Category};

/// Parsed command line shared by all figure binaries.
#[derive(Clone, Debug)]
pub struct Cli {
    /// System configuration assembled from the flags.
    pub config: SystemConfig,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// The benchmarks to run.
    pub benches: Vec<BenchSpec>,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut config = SystemConfig::default();
        let mut csv = false;
        let mut names: Vec<String> = Vec::new();
        let mut it = args.into_iter();
        let need = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
            it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => config.scale = need(&mut it, "--scale").parse().expect("--scale"),
                "--cores" => config.cores = need(&mut it, "--cores").parse().expect("--cores"),
                "--instructions" => {
                    config.instructions_per_core = need(&mut it, "--instructions")
                        .parse()
                        .expect("--instructions");
                }
                "--seed" => config.seed = need(&mut it, "--seed").parse().expect("--seed"),
                "--mlp" => config.mlp = need(&mut it, "--mlp").parse().expect("--mlp"),
                "--ipc" => config.ipc = need(&mut it, "--ipc").parse().expect("--ipc"),
                "--bench" => names.push(need(&mut it, "--bench")),
                "--quick" => {
                    config.scale = 512;
                    config.cores = 2;
                    config.instructions_per_core = 200_000;
                }
                "--csv" => csv = true,
                "--help" | "-h" => {
                    println!(
                        "flags: --scale N --cores N --instructions N --seed N --mlp N \
                         --bench NAME (repeatable) --quick --csv"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid configuration from CLI flags: {e}"));
        let benches = if names.is_empty() {
            suite()
        } else {
            names
                .iter()
                .map(|n| {
                    cameo_workloads::require(n).unwrap_or_else(|e| panic!("{e}"))
                })
                .collect()
        };
        Self {
            config,
            csv,
            benches,
        }
    }

    /// Prints a table in the selected format.
    pub fn emit(&self, table: &Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            print!("{table}");
        }
    }
}

/// All per-benchmark runs of one experiment: `results[bench][kind]`.
pub struct SpeedupGrid {
    /// The organizations compared, in column order.
    pub kinds: Vec<OrgKind>,
    /// Per-benchmark baseline stats.
    pub baselines: BTreeMap<String, RunStats>,
    /// Per-benchmark, per-organization stats.
    pub runs: BTreeMap<String, Vec<RunStats>>,
    /// Benchmark order.
    pub order: Vec<BenchSpec>,
}

impl SpeedupGrid {
    /// Runs the baseline plus every `kind` for every benchmark in `cli`,
    /// printing progress to stderr.
    pub fn collect(kinds: &[OrgKind], cli: &Cli) -> Self {
        let mut baselines = BTreeMap::new();
        let mut runs = BTreeMap::new();
        for bench in &cli.benches {
            eprintln!("[run] {} baseline", bench.name);
            let base = run_benchmark(bench, OrgKind::Baseline, &cli.config);
            let mut row = Vec::with_capacity(kinds.len());
            for kind in kinds {
                eprintln!("[run] {} {}", bench.name, kind.label());
                row.push(run_benchmark(bench, *kind, &cli.config));
            }
            baselines.insert(bench.name.to_owned(), base);
            runs.insert(bench.name.to_owned(), row);
        }
        Self {
            kinds: kinds.to_vec(),
            baselines,
            runs,
            order: cli.benches.clone(),
        }
    }

    /// Speedup of `kind` (by column index) on `bench`.
    pub fn speedup(&self, bench: &str, col: usize) -> f64 {
        self.runs[bench][col].speedup_over(&self.baselines[bench])
    }

    /// Renders the classic per-benchmark speedup table with per-category
    /// and overall geometric means (the layout of Figures 2, 9, 12, 13,
    /// 15).
    pub fn speedup_table(&self) -> Table {
        let mut headers = vec!["bench".to_owned(), "category".to_owned()];
        headers.extend(self.kinds.iter().map(|k| k.label().to_owned()));
        let mut table = Table::new(headers);
        for bench in &self.order {
            let mut row = vec![bench.name.to_owned(), bench.category.to_string()];
            for col in 0..self.kinds.len() {
                row.push(format!("{:.2}x", self.speedup(bench.name, col)));
            }
            table.row(row);
        }
        for (label, filter) in [
            ("Gmean Capacity", Some(Category::CapacityLimited)),
            ("Gmean Latency", Some(Category::LatencyLimited)),
            ("Gmean ALL", None),
        ] {
            let selected: Vec<&BenchSpec> = self
                .order
                .iter()
                .filter(|b| filter.is_none_or(|c| b.category == c))
                .collect();
            if selected.is_empty() {
                continue;
            }
            let mut row = vec![label.to_owned(), String::new()];
            for col in 0..self.kinds.len() {
                let g = gmean(selected.iter().map(|b| self.speedup(b.name, col)))
                    .expect("non-empty category");
                row.push(format!("{g:.2}x"));
            }
            table.row(row);
        }
        table
    }

    /// Geometric-mean speedup of one column over all benchmarks.
    pub fn gmean_all(&self, col: usize) -> f64 {
        gmean(self.order.iter().map(|b| self.speedup(b.name, col))).expect("benchmarks present")
    }

    /// ASCII bar chart of the overall geometric means — a terminal
    /// rendition of the figure's summary bars.
    pub fn gmean_chart(&self) -> String {
        let rows: Vec<(String, f64)> = self
            .kinds
            .iter()
            .enumerate()
            .map(|(col, kind)| (kind.label().to_owned(), self.gmean_all(col)))
            .collect();
        cameo_sim::report::bar_chart(&rows, 40)
    }
}

/// Prints the standard experiment header (configuration echo) to stderr.
pub fn print_header(what: &str, cli: &Cli) {
    eprintln!(
        "== {what} | scale 1/{} ({} stacked + {} off-chip), {} cores, {} instr/core, seed {} ==",
        cli.config.scale,
        cli.config.stacked(),
        cli.config.off_chip(),
        cli.config.cores,
        cli.config.instructions_per_core,
        cli.config.seed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Cli {
        Cli::from_args(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn defaults() {
        let cli = args("");
        assert_eq!(cli.config.scale, 128);
        assert_eq!(cli.benches.len(), 17);
        assert!(!cli.csv);
    }

    #[test]
    fn flags_parse() {
        let cli = args("--scale 128 --cores 4 --instructions 1000000 --seed 7 --csv");
        assert_eq!(cli.config.scale, 128);
        assert_eq!(cli.config.cores, 4);
        assert_eq!(cli.config.instructions_per_core, 1_000_000);
        assert_eq!(cli.config.seed, 7);
        assert!(cli.csv);
    }

    #[test]
    fn bench_filter() {
        let cli = args("--bench mcf --bench milc");
        let names: Vec<&str> = cli.benches.iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["mcf", "milc"]);
    }

    #[test]
    fn quick_mode() {
        let cli = args("--quick");
        assert_eq!(cli.config.scale, 512);
        assert_eq!(cli.config.cores, 2);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_bench_rejected() {
        args("--bench nosuch");
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_rejected() {
        args("--frobnicate");
    }
}
