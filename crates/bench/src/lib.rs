//! Shared harness for the figure/table binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale N          capacity scale factor (default 128)
//! --cores N          rate-mode cores (default 8)
//! --instructions N   measured+warmup instructions per core (default 12M)
//! --seed N           deterministic seed (default 42)
//! --bench NAME       restrict to one benchmark (repeatable)
//! --jobs N           parallel sweep workers (default: all host cores; 0 = auto)
//! --chunk N          split each point into resumable chunks of N accesses so
//!                    idle workers can steal long points (default: off)
//! --bench-json PATH  write the machine-readable BENCH_sweep.json perf artifact
//! --trace-out PATH   arm event tracing; write PATH (JSONL) + PATH.chrome.json
//! --quick            small smoke-test configuration
//! --csv              emit CSV instead of an aligned table
//! ```
//!
//! and prints the regenerated rows/series of one paper table or figure.
//! Results are deterministic at any `--jobs` value: points are
//! independent and the harness reassembles them in canonical order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::path::PathBuf;

use cameo_sim::checkpoint::PointRecord;
use cameo_sim::experiments::{gmean, OrgKind};
use cameo_sim::harness::{
    run_sweep, run_sweep_traced_spilling, EpochSpillFactory, SweepOptions, SweepPoint, SweepReport,
};
use cameo_sim::report::Table;
use cameo_sim::trace::TraceOptions;
use cameo_sim::{RunStats, SystemConfig};
use cameo_workloads::{suite, BenchSpec, Category};

pub mod designs;
pub mod fullscale;
pub mod perf;
pub mod trace_export;

/// Parsed command line shared by all figure binaries.
#[derive(Clone, Debug)]
pub struct Cli {
    /// System configuration assembled from the flags.
    pub config: SystemConfig,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// The benchmarks to run.
    pub benches: Vec<BenchSpec>,
    /// Sweep worker threads (`--jobs`; defaults to the host's available
    /// parallelism).
    pub jobs: usize,
    /// Chunked execution: simulated accesses per scheduling chunk
    /// (`--chunk`); `None` drives each point to completion in one go.
    pub chunk: Option<u64>,
    /// Where to write the `BENCH_sweep.json` perf artifact, if anywhere.
    pub bench_json: Option<PathBuf>,
    /// Where to write the JSONL event dump (`--trace-out`); the
    /// Chrome-trace sibling lands next to it. `None` keeps the sweep on
    /// the no-op sink — tracing compiled to nothing.
    pub trace_out: Option<PathBuf>,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut config = SystemConfig::default();
        let mut csv = false;
        let mut names: Vec<String> = Vec::new();
        let mut jobs = 0usize; // 0 = auto (available parallelism)
        let mut chunk = None;
        let mut bench_json = None;
        let mut trace_out = None;
        let mut it = args.into_iter();
        let need = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
            it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => config.scale = need(&mut it, "--scale").parse().expect("--scale"),
                "--cores" => config.cores = need(&mut it, "--cores").parse().expect("--cores"),
                "--instructions" => {
                    config.instructions_per_core = need(&mut it, "--instructions")
                        .parse()
                        .expect("--instructions");
                }
                "--seed" => config.seed = need(&mut it, "--seed").parse().expect("--seed"),
                "--mlp" => config.mlp = need(&mut it, "--mlp").parse().expect("--mlp"),
                "--ipc" => config.ipc = need(&mut it, "--ipc").parse().expect("--ipc"),
                "--bench" => names.push(need(&mut it, "--bench")),
                "--jobs" => jobs = need(&mut it, "--jobs").parse().expect("--jobs"),
                "--chunk" => chunk = Some(need(&mut it, "--chunk").parse().expect("--chunk")),
                "--bench-json" => {
                    bench_json = Some(PathBuf::from(need(&mut it, "--bench-json")));
                }
                "--trace-out" => {
                    trace_out = Some(PathBuf::from(need(&mut it, "--trace-out")));
                }
                "--quick" => {
                    config.scale = 512;
                    config.cores = 2;
                    config.instructions_per_core = 200_000;
                }
                "--csv" => csv = true,
                "--help" | "-h" => {
                    println!(
                        "flags: --scale N --cores N --instructions N --seed N --mlp N \
                         --bench NAME (repeatable) --jobs N --chunk N --bench-json PATH \
                         --trace-out PATH --quick --csv"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid configuration from CLI flags: {e}"));
        let benches = if names.is_empty() {
            suite()
        } else {
            names
                .iter()
                .map(|n| cameo_workloads::require(n).unwrap_or_else(|e| panic!("{e}")))
                .collect()
        };
        if jobs == 0 {
            jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        }
        Self {
            config,
            csv,
            benches,
            jobs,
            chunk,
            bench_json,
            trace_out,
        }
    }

    /// Writes the `BENCH_sweep.json` perf artifact for a finished sweep
    /// if `--bench-json` was given, and echoes the throughput gauges to
    /// stderr either way.
    pub fn emit_perf(&self, sweep_name: &str, report: &SweepReport) {
        eprintln!(
            "[perf] {sweep_name}: {:.2}s wall, {} points ({} resumed), \
             {:.0} accesses/s, {:.0} cycles/s",
            report.wall_seconds(),
            report.outcomes.len(),
            report.resumed(),
            report.accesses_per_sec().unwrap_or(0.0),
            report.cycles_per_sec().unwrap_or(0.0),
        );
        if let Some(path) = &self.bench_json {
            perf::write_sweep_json(path, sweep_name, self.jobs, &self.config, report)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            eprintln!("[perf] wrote {}", path.display());
        }
    }

    /// Writes the `--trace-out` JSONL and Chrome-trace artifacts for a
    /// traced sweep, if the flag was given; a no-op otherwise.
    pub fn emit_trace(&self, sweep_name: &str, report: &SweepReport) {
        if let Some(path) = &self.trace_out {
            trace_export::write_trace_artifacts(path, sweep_name, report)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            eprintln!(
                "[trace] wrote {} and {}",
                path.display(),
                trace_export::chrome_path(path).display()
            );
        }
    }

    /// Prints a table in the selected format.
    pub fn emit(&self, table: &Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            print!("{table}");
        }
    }
}

/// All per-benchmark runs of one experiment: `results[bench][kind]`.
pub struct SpeedupGrid {
    /// The organizations compared, in column order.
    pub kinds: Vec<OrgKind>,
    /// Per-benchmark baseline stats.
    pub baselines: BTreeMap<String, RunStats>,
    /// Per-benchmark, per-organization stats.
    pub runs: BTreeMap<String, Vec<RunStats>>,
    /// Benchmark order.
    pub order: Vec<BenchSpec>,
    /// The underlying sweep report, carrying per-point and per-sweep
    /// wall-clock and throughput gauges (see [`Cli::emit_perf`]).
    pub report: SweepReport,
}

impl SpeedupGrid {
    /// Runs the baseline plus every `kind` for every benchmark in `cli`
    /// through the sweep harness, across [`Cli::jobs`] workers.
    ///
    /// # Panics
    ///
    /// Panics if any design point fails — figure binaries want broken
    /// points loud, not silently missing columns.
    pub fn collect(kinds: &[OrgKind], cli: &Cli) -> Self {
        Self::collect_spilling(kinds, cli, TraceOptions::default(), &|_| None)
    }

    /// [`SpeedupGrid::collect`], with explicit trace options and a
    /// per-point epoch-spill factory for the streaming flat-memory path:
    /// when `--trace-out` is armed, epochs evicted from the bounded
    /// retention ring are handed to the hook `spill` returns for the
    /// point instead of accumulating in the sink (see
    /// [`cameo_sim::trace::EpochSeries`]).
    ///
    /// # Panics
    ///
    /// Panics if any design point fails, like [`SpeedupGrid::collect`].
    pub fn collect_spilling(
        kinds: &[OrgKind],
        cli: &Cli,
        trace_opts: TraceOptions,
        spill: &EpochSpillFactory<'_>,
    ) -> Self {
        // Column-indexed keys: stable for checkpoints and immune to two
        // columns sharing an organization label.
        let mut points = Vec::with_capacity(cli.benches.len() * (kinds.len() + 1));
        for bench in &cli.benches {
            points.push(
                SweepPoint::new(bench.name, OrgKind::Baseline)
                    .with_key(format!("{}::#base", bench.name)),
            );
            for (col, kind) in kinds.iter().enumerate() {
                points.push(
                    SweepPoint::new(bench.name, *kind).with_key(format!("{}::#{col}", bench.name)),
                );
            }
        }
        eprintln!(
            "[sweep] {} points ({} benches x {} orgs) across {} worker(s)",
            points.len(),
            cli.benches.len(),
            kinds.len() + 1,
            cli.jobs.max(1),
        );
        let opts = SweepOptions {
            config: cli.config,
            max_attempts: 1,
            jobs: cli.jobs,
            chunk_accesses: cli.chunk,
            ..SweepOptions::default()
        };
        // `--trace-out` arms the recording sink; results are bit-identical
        // either way (the harness guarantees report equality).
        let report = if cli.trace_out.is_some() {
            run_sweep_traced_spilling(&points, &opts, None, trace_opts, spill)
        } else {
            run_sweep(&points, &opts, None)
        }
        .unwrap_or_else(|e| panic!("sweep failed before any checkpointing: {e}"));

        let mut outcomes = report.outcomes.iter();
        let mut take = || {
            let outcome = outcomes
                .next()
                .expect("the report has one outcome per submitted point");
            match &outcome.record {
                PointRecord::Done { stats, .. } => (**stats).clone(),
                PointRecord::Failed { error, .. } => {
                    panic!("design point {} failed: {error}", outcome.point.key)
                }
            }
        };
        let mut baselines = BTreeMap::new();
        let mut runs = BTreeMap::new();
        for bench in &cli.benches {
            let base = take();
            let row: Vec<RunStats> = kinds.iter().map(|_| take()).collect();
            baselines.insert(bench.name.to_owned(), base);
            runs.insert(bench.name.to_owned(), row);
        }
        Self {
            kinds: kinds.to_vec(),
            baselines,
            runs,
            order: cli.benches.clone(),
            report,
        }
    }

    /// Speedup of `kind` (by column index) on `bench`.
    pub fn speedup(&self, bench: &str, col: usize) -> f64 {
        self.runs[bench][col].speedup_over(&self.baselines[bench])
    }

    /// Renders the classic per-benchmark speedup table with per-category
    /// and overall geometric means (the layout of Figures 2, 9, 12, 13,
    /// 15).
    pub fn speedup_table(&self) -> Table {
        let mut headers = vec!["bench".to_owned(), "category".to_owned()];
        headers.extend(self.kinds.iter().map(|k| k.label().to_owned()));
        let mut table = Table::new(headers);
        for bench in &self.order {
            let mut row = vec![bench.name.to_owned(), bench.category.to_string()];
            for col in 0..self.kinds.len() {
                row.push(format!("{:.2}x", self.speedup(bench.name, col)));
            }
            table.row(row);
        }
        for (label, filter) in [
            ("Gmean Capacity", Some(Category::CapacityLimited)),
            ("Gmean Latency", Some(Category::LatencyLimited)),
            ("Gmean ALL", None),
        ] {
            let selected: Vec<&BenchSpec> = self
                .order
                .iter()
                .filter(|b| filter.is_none_or(|c| b.category == c))
                .collect();
            if selected.is_empty() {
                continue;
            }
            let mut row = vec![label.to_owned(), String::new()];
            for col in 0..self.kinds.len() {
                let g = gmean(selected.iter().map(|b| self.speedup(b.name, col)))
                    .expect("non-empty category");
                row.push(format!("{g:.2}x"));
            }
            table.row(row);
        }
        table
    }

    /// Geometric-mean speedup of one column over all benchmarks.
    pub fn gmean_all(&self, col: usize) -> f64 {
        gmean(self.order.iter().map(|b| self.speedup(b.name, col))).expect("benchmarks present")
    }

    /// ASCII bar chart of the overall geometric means — a terminal
    /// rendition of the figure's summary bars.
    pub fn gmean_chart(&self) -> String {
        let rows: Vec<(String, f64)> = self
            .kinds
            .iter()
            .enumerate()
            .map(|(col, kind)| (kind.label().to_owned(), self.gmean_all(col)))
            .collect();
        cameo_sim::report::bar_chart(&rows, 40)
    }
}

/// Prints the standard experiment header (configuration echo) to stderr.
pub fn print_header(what: &str, cli: &Cli) {
    eprintln!(
        "== {what} | scale 1/{} ({} stacked + {} off-chip), {} cores, {} instr/core, seed {} ==",
        cli.config.scale,
        cli.config.stacked(),
        cli.config.off_chip(),
        cli.config.cores,
        cli.config.instructions_per_core,
        cli.config.seed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Cli {
        Cli::from_args(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn defaults() {
        let cli = args("");
        assert_eq!(cli.config.scale, 128);
        assert_eq!(cli.benches.len(), 17);
        assert!(!cli.csv);
    }

    #[test]
    fn flags_parse() {
        let cli = args("--scale 128 --cores 4 --instructions 1000000 --seed 7 --csv");
        assert_eq!(cli.config.scale, 128);
        assert_eq!(cli.config.cores, 4);
        assert_eq!(cli.config.instructions_per_core, 1_000_000);
        assert_eq!(cli.config.seed, 7);
        assert!(cli.csv);
    }

    #[test]
    fn bench_filter() {
        let cli = args("--bench mcf --bench milc");
        let names: Vec<&str> = cli.benches.iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["mcf", "milc"]);
    }

    #[test]
    fn quick_mode() {
        let cli = args("--quick");
        assert_eq!(cli.config.scale, 512);
        assert_eq!(cli.config.cores, 2);
    }

    #[test]
    fn chunk_parses_and_defaults_off() {
        assert_eq!(args("--chunk 50000").chunk, Some(50_000));
        assert_eq!(args("").chunk, None);
    }

    #[test]
    fn jobs_and_bench_json_parse() {
        let cli = args("--jobs 3 --bench-json /tmp/b.json");
        assert_eq!(cli.jobs, 3);
        assert_eq!(
            cli.bench_json.as_deref(),
            Some(std::path::Path::new("/tmp/b.json"))
        );
        // `--jobs 0` (and the default) resolve to the host parallelism,
        // which is always at least one worker.
        assert!(args("--jobs 0").jobs >= 1);
        assert!(args("").jobs >= 1);
    }

    #[test]
    fn trace_out_parses_and_defaults_off() {
        let cli = args("--trace-out /tmp/fig.trace");
        assert_eq!(
            cli.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/fig.trace"))
        );
        assert!(args("").trace_out.is_none());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_bench_rejected() {
        args("--bench nosuch");
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_rejected() {
        args("--frobnicate");
    }
}
