//! Full-scale ladder support for the `ext_fullscale` binary.
//!
//! The paper's headline figure (fig13) is normally replayed at the scaled
//! default capacity (1/128). This module drives the same comparison down a
//! halving ladder of scales — 128 → 64 → … → the requested `--scale` — so
//! the repository can demonstrate that the permutation-coded LLT, the
//! sparse lazy page tables and the streaming trace path together keep a
//! **full paper-scale** run (`--scale 1`: 4 GiB stacked + 12 GiB off-chip,
//! ~256 Mi tracked lines) inside a flat, laptop-sized resident set.
//!
//! The point set per rung is the fig13 micro-slice: the headline
//! organizations over a calibrated short instruction slice. The slice is
//! deliberately small — the experiment measures *capacity* behaviour
//! (bytes of host memory per tracked line, via the RSS gauges in
//! `cameo-bench-sweep/1`), not throughput, so the instruction budget stays
//! fixed while the memory system underneath grows 128-fold.

use std::path::{Path, PathBuf};

use cameo_sim::experiments::OrgKind;
use cameo_sim::harness::SweepPoint;
use cameo_sim::trace::EpochSpillFn;
use cameo_sim::SystemConfig;

use crate::{trace_export, Cli};

/// The scale every ladder starts from: the default experiment capacity.
pub const LADDER_TOP: u64 = 128;

/// Calibrated micro-slice cores: enough for cross-core interleaving
/// without inflating the fixed instruction budget.
pub const MICRO_CORES: u16 = 2;

/// Calibrated micro-slice instruction budget per core. Small by design:
/// the ladder varies *capacity*, and the slice only has to exercise every
/// design's swap/predict/migrate machinery at each rung.
pub const MICRO_INSTRUCTIONS: u64 = 300_000;

/// The fig13 headline organizations, in column order. `ext_fullscale`
/// runs exactly this set at every rung, and the golden-conformance test
/// replays it at micro scale — change one, regenerate the other.
pub fn kinds() -> [OrgKind; 5] {
    [
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::TlmDynamic,
        OrgKind::cameo_default(),
        OrgKind::DoubleUse,
    ]
}

/// The halving scale ladder from [`LADDER_TOP`] down to `target`
/// (inclusive). A `target` at or above the top yields a single rung, and
/// a target off the power-of-two grid becomes the final rung after the
/// last larger power of two.
pub fn ladder(target: u64) -> Vec<u64> {
    let mut rungs = Vec::new();
    let mut scale = LADDER_TOP;
    while scale > target {
        rungs.push(scale);
        scale /= 2;
    }
    rungs.push(target);
    rungs
}

/// Applies the micro-slice calibration to a parsed [`Cli`]: fields still
/// at the *experiment default* (16 cores, 12 M instructions, the full
/// 17-benchmark suite) are replaced with the calibrated slice
/// ([`MICRO_CORES`], [`MICRO_INSTRUCTIONS`], `mcf` only). Any explicitly
/// non-default flag wins, so `--cores 4 --instructions 1000000 --bench
/// milc` still sizes the slice by hand.
///
/// # Panics
///
/// Panics only if the built-in calibration benchmark vanished from the
/// suite, which would be a workload-table bug.
pub fn calibrate(mut cli: Cli) -> Cli {
    let default = SystemConfig::default();
    if cli.config.cores == default.cores {
        cli.config.cores = MICRO_CORES;
    }
    if cli.config.instructions_per_core == default.instructions_per_core {
        cli.config.instructions_per_core = MICRO_INSTRUCTIONS;
    }
    if cli.benches.len() == cameo_workloads::suite().len() {
        cli.benches = vec![cameo_workloads::require("mcf")
            .expect("the calibration benchmark mcf is part of the Table II suite")];
    }
    cli
}

/// A sweep-point key reduced to a filesystem-safe stem (alphanumerics
/// kept, everything else mapped to `_`).
pub fn sanitize_key(key: &str) -> String {
    key.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// The sibling directory that holds per-point spilled-epoch files for a
/// `--trace-out PATH` run: `PATH.epochs/`.
pub fn epochs_dir(trace_out: &Path) -> PathBuf {
    let mut os = trace_out.as_os_str().to_owned();
    os.push(".epochs");
    PathBuf::from(os)
}

/// Builds the per-point epoch-spill factory for the streaming trace path:
/// each sweep point gets its own JSONL writer under
/// [`epochs_dir`]`(trace_out)`, so epochs evicted from the bounded
/// retention ring reach disk incrementally instead of accumulating in the
/// sink (see `cameo_sim::harness::run_sweep_traced_spilling`). Retries of
/// a point recreate (truncate) its file, keeping attempts unmixed.
///
/// # Errors
///
/// Returns the error from creating the epochs directory. A failure to
/// open one point's writer later is reported to stderr and that point
/// falls back to ring-only retention rather than failing the sweep.
pub fn epoch_spill_factory(
    trace_out: &Path,
    epoch_cycles: u64,
) -> std::io::Result<impl Fn(&SweepPoint) -> Option<EpochSpillFn> + Sync> {
    let dir = epochs_dir(trace_out);
    std::fs::create_dir_all(&dir)?;
    Ok(move |point: &SweepPoint| {
        let path = dir.join(format!("{}.jsonl", sanitize_key(&point.key)));
        match trace_export::epoch_spill_writer(&path, &point.key, epoch_cycles) {
            Ok(writer) => Some(writer),
            Err(e) => {
                eprintln!("[trace] spill writer {}: {e}", path.display());
                None
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_halves_to_the_target() {
        assert_eq!(ladder(1), vec![128, 64, 32, 16, 8, 4, 2, 1]);
        assert_eq!(ladder(16), vec![128, 64, 32, 16]);
        assert_eq!(ladder(128), vec![128]);
        assert_eq!(ladder(512), vec![512]);
        // Off-grid targets become the final rung.
        assert_eq!(ladder(100), vec![128, 100]);
    }

    #[test]
    fn calibrate_fills_defaults_and_keeps_explicit_flags() {
        let args = |s: &str| Cli::from_args(s.split_whitespace().map(str::to_owned));
        let c = calibrate(args("--scale 16"));
        assert_eq!(c.config.cores, MICRO_CORES);
        assert_eq!(c.config.instructions_per_core, MICRO_INSTRUCTIONS);
        assert_eq!(c.config.scale, 16);
        let names: Vec<&str> = c.benches.iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["mcf"]);

        let c = calibrate(args("--cores 4 --instructions 1000000 --bench milc"));
        assert_eq!(c.config.cores, 4);
        assert_eq!(c.config.instructions_per_core, 1_000_000);
        let names: Vec<&str> = c.benches.iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["milc"]);
    }

    #[test]
    fn keys_sanitize_to_filesystem_stems() {
        assert_eq!(sanitize_key("mcf::#base"), "mcf___base");
        assert_eq!(sanitize_key("mcf::#3"), "mcf___3");
    }

    #[test]
    fn epochs_dir_is_a_sibling_of_the_trace() {
        assert_eq!(
            epochs_dir(Path::new("/tmp/full.trace")),
            PathBuf::from("/tmp/full.trace.epochs")
        );
    }
}
