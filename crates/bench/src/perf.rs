//! The machine-readable host-performance artifact (`BENCH_sweep.json`).
//!
//! Every sweep binary can emit one JSON document (via `--bench-json PATH`,
//! see [`crate::Cli::emit_perf`]) recording how fast the *host* chewed
//! through the sweep: wall-clock per point and per sweep, and simulated
//! accesses/sec and cycles/sec throughput gauges. Checked-in artifacts
//! give future perf work a trajectory to regress against; `summarize
//! --perf-json PATH` renders any artifact as a table.
//!
//! Schema (`cameo-bench-sweep/1`): one object with sweep identity
//! (`sweep`, `jobs`, `config`), sweep totals (`wall_nanos`,
//! `sim_accesses`, `sim_cycles`, `accesses_per_sec`, `cycles_per_sec`,
//! `completed`/`failed`/`resumed`), host memory gauges
//! (`peak_rss_bytes`, `bytes_per_tracked_line` — `null` off Linux), and
//! a `point_metrics` array with one object per point (`key`,
//! `wall_nanos`, `accesses`, `cycles`, `resumed`). Simulated counters
//! are exact `u64`s; only derived rates are floats.

use std::path::Path;

use cameo_sim::checkpoint::{Json, PointRecord};
use cameo_sim::harness::{PointOutcome, SweepReport};
use cameo_sim::report::Table;
use cameo_sim::SystemConfig;

/// Schema identifier embedded in every artifact.
pub const SCHEMA: &str = "cameo-bench-sweep/1";

/// Peak resident-set size of this process in bytes, from the kernel's
/// high-water mark (`VmHWM` in `/proc/self/status`).
///
/// The kernel tracks the true peak continuously, so a single read at
/// artifact-write time covers the whole run — no sampling cadence to
/// miss a transient spike. `None` where procfs is absent (non-Linux).
pub fn peak_rss_bytes() -> Option<u64> {
    status_field_kb("VmHWM:")
}

/// Current resident-set size of this process in bytes, from
/// `/proc/self/statm` (resident pages × page size).
///
/// This is the cheap per-sample gauge — one small procfs read — that the
/// memory-flatness checks sample at epoch boundaries. `None` where
/// procfs is absent (non-Linux).
pub fn current_rss_bytes() -> Option<u64> {
    let pages = statm_resident_pages()?;
    Some(pages * page_size_bytes())
}

fn statm_resident_pages() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/statm").ok()?;
    text.split_whitespace().nth(1)?.parse().ok()
}

fn status_field_kb(field: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

/// The system page size, inferred once by ratioing `VmRSS` (exact kB)
/// against the `statm` resident page count — procfs exposes no direct
/// page-size field and the build pulls in no libc crate for `sysconf`.
/// Rounded to the nearest power of two (the two reads race against
/// allocation, so the raw ratio jitters); falls back to 4 KiB.
fn page_size_bytes() -> u64 {
    static PAGE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *PAGE.get_or_init(|| {
        let inferred = || {
            let pages = statm_resident_pages()?;
            let rss = status_field_kb("VmRSS:")?;
            if pages == 0 {
                return None;
            }
            let ratio = rss / pages;
            if ratio == 0 {
                return None;
            }
            let floor = 1u64 << (63 - ratio.leading_zeros());
            let ceil = floor << 1;
            Some(if ratio - floor < ceil - ratio { floor } else { ceil })
        };
        inferred().unwrap_or(4096)
    })
}

/// Per-point load imbalance: the ratio of the slowest to the fastest
/// point's wall time, over points completed fresh in this run.
///
/// A ratio near 1 means the work-stealing pool kept every worker busy;
/// a large ratio means one point dominated the sweep's wall clock (the
/// situation point chunking exists to fix). `None` with fewer than two
/// fresh completed points, or when a point's wall time is zero (clock
/// granularity) — a ratio against ~0 ns is noise, not signal. Resumed
/// points are excluded: they re-ran only the tail of their work, so
/// their wall times are not comparable to fresh points'.
pub fn imbalance(report: &SweepReport) -> Option<f64> {
    let walls = report
        .outcomes
        .iter()
        .filter(|o| !o.resumed && matches!(o.record, PointRecord::Done { .. }))
        .map(|o| o.wall_nanos);
    let (min, max, n) = walls.fold((u64::MAX, 0u64, 0u64), |(lo, hi, n), w| {
        (lo.min(w), hi.max(w), n + 1)
    });
    (n >= 2 && min > 0).then(|| max as f64 / min as f64)
}

/// Builds the artifact document for a finished sweep.
pub fn sweep_json(
    sweep_name: &str,
    jobs: usize,
    config: &SystemConfig,
    report: &SweepReport,
) -> Json {
    let rate = |quantity: u64, wall_nanos: u64| {
        if wall_nanos > 0 {
            Json::F64(quantity as f64 / (wall_nanos as f64 / 1e9))
        } else {
            Json::Null
        }
    };
    let point_metrics: Vec<Json> = report
        .outcomes
        .iter()
        .map(|o| point_json(o, &rate))
        .collect();
    // The memory gauges: what the run peaked at, and what that peak
    // costs per simulated 64-byte line at this scale — the number the
    // full-scale work drives toward flat-and-small.
    let peak_rss = peak_rss_bytes();
    let tracked_lines = config.total_memory().lines();
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("sweep".into(), Json::Str(sweep_name.into())),
        ("jobs".into(), Json::U64(jobs as u64)),
        (
            "config".into(),
            Json::Obj(vec![
                ("scale".into(), Json::U64(config.scale)),
                ("cores".into(), Json::U64(u64::from(config.cores))),
                (
                    "instructions_per_core".into(),
                    Json::U64(config.instructions_per_core),
                ),
                ("seed".into(), Json::U64(config.seed)),
            ]),
        ),
        ("points".into(), Json::U64(report.outcomes.len() as u64)),
        ("completed".into(), Json::U64(report.completed() as u64)),
        ("failed".into(), Json::U64(report.failed() as u64)),
        ("resumed".into(), Json::U64(report.resumed() as u64)),
        ("wall_nanos".into(), Json::U64(report.wall_nanos)),
        ("sim_accesses".into(), Json::U64(report.sim_accesses())),
        ("sim_cycles".into(), Json::U64(report.sim_cycles())),
        (
            "accesses_per_sec".into(),
            rate(report.sim_accesses(), report.wall_nanos),
        ),
        (
            "cycles_per_sec".into(),
            rate(report.sim_cycles(), report.wall_nanos),
        ),
        (
            "imbalance".into(),
            imbalance(report).map_or(Json::Null, Json::F64),
        ),
        (
            "peak_rss_bytes".into(),
            peak_rss.map_or(Json::Null, Json::U64),
        ),
        (
            "bytes_per_tracked_line".into(),
            match (peak_rss, tracked_lines) {
                (Some(rss), lines) if lines > 0 => Json::F64(rss as f64 / lines as f64),
                _ => Json::Null,
            },
        ),
        ("point_metrics".into(), Json::Arr(point_metrics)),
    ])
}

fn point_json(outcome: &PointOutcome, rate: &impl Fn(u64, u64) -> Json) -> Json {
    let mut fields = vec![
        ("key".into(), Json::Str(outcome.point.key.clone())),
        ("resumed".into(), Json::Bool(outcome.resumed)),
        ("wall_nanos".into(), Json::U64(outcome.wall_nanos)),
    ];
    match &outcome.record {
        PointRecord::Done { stats, .. } => {
            fields.push(("accesses".into(), Json::U64(stats.accesses())));
            fields.push(("cycles".into(), Json::U64(stats.execution_cycles)));
            fields.push((
                "accesses_per_sec".into(),
                rate(stats.accesses(), outcome.wall_nanos),
            ));
        }
        PointRecord::Failed { error, .. } => {
            fields.push(("error".into(), Json::Str(error.clone())));
        }
    }
    Json::Obj(fields)
}

/// Renders and writes the artifact for a finished sweep.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_sweep_json(
    path: &Path,
    sweep_name: &str,
    jobs: usize,
    config: &SystemConfig,
    report: &SweepReport,
) -> std::io::Result<()> {
    let mut text = sweep_json(sweep_name, jobs, config, report).render();
    text.push('\n');
    std::fs::write(path, text)
}

/// Reads an artifact back into its [`Json`] document.
///
/// # Errors
///
/// Returns a description of the I/O or parse failure.
pub fn read_sweep_json(path: &Path) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

fn u64_of(json: &Json, key: &str) -> u64 {
    match json.get(key) {
        Some(Json::U64(v)) => *v,
        _ => 0,
    }
}

fn str_of<'j>(json: &'j Json, key: &str) -> &'j str {
    match json.get(key) {
        Some(Json::Str(s)) => s,
        _ => "?",
    }
}

fn seconds(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

fn rate_cell(quantity: u64, wall_nanos: u64) -> String {
    if wall_nanos == 0 {
        return "-".to_owned();
    }
    format!("{:.0}", quantity as f64 / seconds(wall_nanos))
}

/// Renders an artifact as a per-point throughput / wall-time table with a
/// sweep-total footer row.
pub fn perf_table(doc: &Json) -> Table {
    let mut table = Table::new(vec![
        "point".to_owned(),
        "wall s".to_owned(),
        "accesses".to_owned(),
        "acc/s".to_owned(),
        "note".to_owned(),
    ]);
    if let Some(Json::Arr(points)) = doc.get("point_metrics") {
        for p in points {
            let note = if matches!(p.get("resumed"), Some(Json::Bool(true))) {
                "resumed"
            } else if p.get("error").is_some() {
                "FAILED"
            } else {
                ""
            };
            table.row(vec![
                str_of(p, "key").to_owned(),
                format!("{:.3}", seconds(u64_of(p, "wall_nanos"))),
                u64_of(p, "accesses").to_string(),
                rate_cell(u64_of(p, "accesses"), u64_of(p, "wall_nanos")),
                note.to_owned(),
            ]);
        }
    }
    let wall = u64_of(doc, "wall_nanos");
    let imbalance_note = match doc.get("imbalance") {
        Some(Json::F64(r)) => format!(" / imbalance {r:.2}x"),
        _ => String::new(),
    };
    let rss_note = match doc.get("peak_rss_bytes") {
        Some(Json::U64(rss)) => {
            let per_line = match doc.get("bytes_per_tracked_line") {
                Some(Json::F64(b)) => format!(" ({b:.2} B/line)"),
                _ => String::new(),
            };
            format!(" / peak rss {:.1} MiB{per_line}", *rss as f64 / f64::from(1 << 20))
        }
        _ => String::new(),
    };
    table.row(vec![
        format!(
            "TOTAL ({}, --jobs {})",
            str_of(doc, "sweep"),
            u64_of(doc, "jobs")
        ),
        format!("{:.3}", seconds(wall)),
        u64_of(doc, "sim_accesses").to_string(),
        rate_cell(u64_of(doc, "sim_accesses"), wall),
        format!(
            "{} done / {} failed / {} resumed{imbalance_note}{rss_note}",
            u64_of(doc, "completed"),
            u64_of(doc, "failed"),
            u64_of(doc, "resumed"),
        ),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_sim::experiments::OrgKind;
    use cameo_sim::harness::{run_sweep, SweepOptions, SweepPoint};

    fn tiny_report() -> (SweepReport, SystemConfig) {
        let config = SystemConfig {
            scale: 8192,
            cores: 2,
            instructions_per_core: 20_000,
            warmup_fraction: 0.2,
            ..SystemConfig::default()
        };
        let opts = SweepOptions {
            config,
            max_attempts: 1,
            ..SweepOptions::default()
        };
        let points = [SweepPoint::new("astar", OrgKind::Baseline)];
        (
            run_sweep(&points, &opts, None).expect("no checkpoint I/O involved"),
            config,
        )
    }

    #[test]
    fn artifact_round_trips_and_tabulates() {
        let (report, config) = tiny_report();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_bench_sweep_{}.json", std::process::id()));
        write_sweep_json(&path, "unit-test", 2, &config, &report).expect("tmp write");
        let doc = read_sweep_json(&path).expect("artifact parses");
        assert_eq!(str_of(&doc, "schema"), SCHEMA);
        assert_eq!(str_of(&doc, "sweep"), "unit-test");
        assert_eq!(u64_of(&doc, "jobs"), 2);
        assert_eq!(u64_of(&doc, "points"), 1);
        assert_eq!(u64_of(&doc, "completed"), 1);
        assert_eq!(u64_of(&doc, "sim_accesses"), report.sim_accesses());
        assert!(u64_of(&doc, "wall_nanos") > 0);
        assert!(matches!(doc.get("accesses_per_sec"), Some(Json::F64(v)) if *v > 0.0));

        let rendered = perf_table(&doc).to_string();
        assert!(rendered.contains("astar::Baseline"), "{rendered}");
        assert!(rendered.contains("TOTAL"), "{rendered}");
        std::fs::remove_file(&path).expect("tmp cleanup");
    }

    #[test]
    fn imbalance_is_max_over_min_of_fresh_completed_walls() {
        let config = SystemConfig {
            scale: 8192,
            cores: 2,
            instructions_per_core: 20_000,
            warmup_fraction: 0.2,
            ..SystemConfig::default()
        };
        let opts = SweepOptions {
            config,
            max_attempts: 1,
            ..SweepOptions::default()
        };
        let points = [
            SweepPoint::new("astar", OrgKind::Baseline),
            SweepPoint::new("mcf", OrgKind::Baseline),
        ];
        let mut report = run_sweep(&points, &opts, None).expect("no checkpoint I/O involved");
        report.outcomes[0].wall_nanos = 100;
        report.outcomes[1].wall_nanos = 250;
        assert_eq!(imbalance(&report), Some(2.5));

        let doc = sweep_json("unit-test", 1, &config, &report);
        assert!(matches!(doc.get("imbalance"), Some(Json::F64(v)) if *v == 2.5));
        let rendered = perf_table(&doc).to_string();
        assert!(rendered.contains("imbalance 2.50x"), "{rendered}");

        // A resumed point is excluded, leaving one fresh point: no ratio.
        report.outcomes[1].resumed = true;
        assert_eq!(imbalance(&report), None);

        // Zero-wall points (clock granularity) yield no ratio either.
        report.outcomes[1].resumed = false;
        report.outcomes[1].wall_nanos = 0;
        assert_eq!(imbalance(&report), None);
    }

    /// On Linux the procfs probes yield sane, ordered values and the
    /// artifact carries both memory gauges (elsewhere they render null).
    #[test]
    fn rss_gauges_land_in_the_artifact() {
        let (report, config) = tiny_report();
        let doc = sweep_json("unit-test", 1, &config, &report);
        if cfg!(target_os = "linux") {
            let peak = peak_rss_bytes().expect("procfs present on Linux");
            let current = current_rss_bytes().expect("procfs present on Linux");
            // A test process is at least a megabyte and the high-water
            // mark can never undercut the current residency (beyond the
            // jitter of two non-atomic procfs reads).
            assert!(peak > 1 << 20, "peak {peak} bytes is implausibly small");
            assert!(current > 1 << 20);
            assert!(peak * 2 >= current, "peak {peak} < current {current}");
            assert!(u64_of(&doc, "peak_rss_bytes") > 0);
            let per_line = match doc.get("bytes_per_tracked_line") {
                Some(Json::F64(b)) => *b,
                other => panic!("bytes_per_tracked_line missing: {other:?}"),
            };
            let expected = u64_of(&doc, "peak_rss_bytes") as f64
                / config.total_memory().lines() as f64;
            assert!((per_line - expected).abs() < 1e-6);
            let rendered = perf_table(&doc).to_string();
            assert!(rendered.contains("peak rss"), "{rendered}");
            assert!(rendered.contains("B/line"), "{rendered}");
        } else {
            assert_eq!(doc.get("peak_rss_bytes"), Some(&Json::Null));
        }
    }

    #[test]
    fn unreadable_artifact_is_an_error_value() {
        let missing = std::env::temp_dir().join("cameo_bench_sweep_nonexistent.json");
        assert!(read_sweep_json(&missing).is_err());
    }
}
