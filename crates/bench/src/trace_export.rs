//! Trace exporters: JSONL event/epoch dumps and Chrome-trace output.
//!
//! A sweep run with `--trace-out PATH` (any figure binary) arms the
//! recording sink and writes two artifacts when it finishes:
//!
//! * `PATH` — JSONL, one self-contained object per line:
//!
//!   ```text
//!   {"schema":"cameo-trace-events/1","sweep":"fig12_llp","points":9}
//!   {"kind":"point","key":"mcf::#0","events":812,"retained":812,"dropped":0,"epoch_cycles":100000}
//!   {"kind":"event","key":"mcf::#0","cycle":512,"name":"swap","group":7}
//!   {"kind":"epoch","key":"mcf::#0","epoch":0,"start_cycle":0,"swaps":31,...}
//!   ```
//!
//!   Event lines carry the typed payload of each [`TraceEvent`] variant
//!   under its stable [`TraceEvent::name`]; epoch lines carry every
//!   [`EpochCounters`] field. `summarize --trace-json PATH` parses the
//!   file back and prints the per-epoch tables.
//!
//! * `PATH.chrome.json` — a Chrome-trace (`chrome://tracing` /
//!   <https://ui.perfetto.dev>) document: one "process" per design point
//!   (named by its key), instant events for the retained raw stream, and
//!   per-epoch counter tracks for service mix, swaps and prediction
//!   accuracy. Timestamps are simulated cycles.
//!
//! Counters are exact `u64`s end to end — both formats ride on the
//! dependency-free [`Json`] codec from [`cameo_sim::checkpoint`].
//!
//! This module is the *only* place trace events may be serialized
//! (enforced by the `trace-print` rule of `cargo xtask lint`): one
//! schema, one writer, no drift.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use cameo_sim::checkpoint::Json;
use cameo_sim::harness::SweepReport;
use cameo_sim::report::Table;
use cameo_sim::trace::{EpochCounters, TraceData};
use cameo_types::{Cycle, TraceEvent};

/// Schema identifier on the JSONL header line.
pub const SCHEMA: &str = "cameo-trace-events/1";

/// The Chrome-trace sibling of a JSONL dump path: `PATH.chrome.json`.
pub fn chrome_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".chrome.json");
    PathBuf::from(name)
}

/// The typed payload of one event, as JSON object fields.
fn event_fields(event: &TraceEvent) -> Vec<(String, Json)> {
    match event {
        TraceEvent::Swap { group } | TraceEvent::LltProbe { group } => {
            vec![("group".into(), Json::U64(*group))]
        }
        TraceEvent::LlpPredict { correct } => vec![("correct".into(), Json::Bool(*correct))],
        TraceEvent::RecoveryAction { kind } => {
            vec![("action".into(), Json::Str(kind.label().into()))]
        }
        TraceEvent::PageMigration { pages } => {
            vec![("pages".into(), Json::U64(u64::from(*pages)))]
        }
        TraceEvent::RowBufferOutcome {
            stacked,
            hits,
            closed,
            conflicts,
        } => vec![
            ("stacked".into(), Json::Bool(*stacked)),
            ("hits".into(), Json::U64(u64::from(*hits))),
            ("closed".into(), Json::U64(u64::from(*closed))),
            ("conflicts".into(), Json::U64(u64::from(*conflicts))),
        ],
        TraceEvent::Service { stacked } => vec![("stacked".into(), Json::Bool(*stacked))],
    }
}

/// One JSONL event line.
fn event_line(key: &str, now: Cycle, event: &TraceEvent) -> Json {
    let mut fields = vec![
        ("kind".to_owned(), Json::Str("event".into())),
        ("key".to_owned(), Json::Str(key.to_owned())),
        ("cycle".to_owned(), Json::U64(now.raw())),
        ("name".to_owned(), Json::Str(event.name().into())),
    ];
    fields.extend(event_fields(event));
    Json::Obj(fields)
}

/// Every counter of one epoch, as JSON object fields.
fn counter_fields(c: &EpochCounters) -> Vec<(String, Json)> {
    [
        ("swaps", c.swaps),
        ("llt_probes", c.llt_probes),
        ("predicts", c.predicts),
        ("predicts_correct", c.predicts_correct),
        ("stacked_serviced", c.stacked_serviced),
        ("off_chip_serviced", c.off_chip_serviced),
        ("row_hits", c.row_hits),
        ("row_closed", c.row_closed),
        ("row_conflicts", c.row_conflicts),
        ("migrated_pages", c.migrated_pages),
        ("recovery_actions", c.recovery_actions),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_owned(), Json::U64(v)))
    .collect()
}

/// One JSONL epoch line.
fn epoch_line(key: &str, index: u64, epoch_cycles: u64, c: &EpochCounters) -> Json {
    let mut fields = vec![
        ("kind".to_owned(), Json::Str("epoch".into())),
        ("key".to_owned(), Json::Str(key.to_owned())),
        ("epoch".to_owned(), Json::U64(index)),
        (
            "start_cycle".to_owned(),
            Json::U64(index.saturating_mul(epoch_cycles)),
        ),
    ];
    fields.extend(counter_fields(c));
    Json::Obj(fields)
}

/// The merged counters of every epoch the bounded ring evicted before the
/// run finished, as one summary line — written ahead of the retained
/// epoch lines so the file still accounts for the whole run.
fn spilled_line(key: &str, spilled_epochs: u64, c: &EpochCounters) -> Json {
    let mut fields = vec![
        ("kind".to_owned(), Json::Str("epoch_spill".into())),
        ("key".to_owned(), Json::Str(key.to_owned())),
        ("spilled_epochs".to_owned(), Json::U64(spilled_epochs)),
    ];
    fields.extend(counter_fields(c));
    Json::Obj(fields)
}

/// Opens `path` and returns a spill hook for
/// [`cameo_sim::trace::SharedSink::with_spill`] that appends one epoch
/// JSONL line (same shape as the dump's `"epoch"` lines, keyed by `key`)
/// per evicted epoch, flushed per line so a kill loses nothing.
///
/// This is how a paper-scale run streams its epoch series to disk while
/// the in-memory ring stays bounded: the spill file holds the evicted
/// prefix, the end-of-run dump holds the retained tail.
///
/// # Errors
///
/// Returns the underlying I/O error from creating the file.
pub fn epoch_spill_writer(
    path: &Path,
    key: &str,
    epoch_cycles: u64,
) -> std::io::Result<cameo_sim::trace::EpochSpillFn> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    let key = key.to_owned();
    Ok(Box::new(move |index, c: &EpochCounters| {
        // Spills are rare (one per epoch beyond the cap); flushing each
        // line keeps the file whole no matter when the run dies.
        let _ = writeln!(file, "{}", epoch_line(&key, index, epoch_cycles, c).render());
        let _ = file.flush();
    }))
}

/// One Chrome-trace instant event (`ph: "i"`).
fn chrome_instant(pid: u64, now: Cycle, event: &TraceEvent) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(event.name().into())),
        ("ph".into(), Json::Str("i".into())),
        ("ts".into(), Json::U64(now.raw())),
        ("pid".into(), Json::U64(pid)),
        ("tid".into(), Json::U64(0)),
        ("s".into(), Json::Str("t".into())),
        ("args".into(), Json::Obj(event_fields(event))),
    ])
}

/// One Chrome-trace counter sample (`ph: "C"`).
fn chrome_counter(pid: u64, name: &str, ts: u64, series: Vec<(String, Json)>) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("ph".into(), Json::Str("C".into())),
        ("ts".into(), Json::U64(ts)),
        ("pid".into(), Json::U64(pid)),
        ("args".into(), Json::Obj(series)),
    ])
}

/// The Chrome-trace events of one point's recording.
fn chrome_events_of(pid: u64, key: &str, trace: &TraceData, out: &mut Vec<Json>) {
    out.push(Json::Obj(vec![
        ("name".into(), Json::Str("process_name".into())),
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::U64(pid)),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str(key.to_owned()))]),
        ),
    ]));
    for (now, event) in &trace.events {
        out.push(chrome_instant(pid, *now, event));
    }
    let epoch_cycles = trace.epochs.epoch_cycles();
    for (i, c) in trace.epochs.retained() {
        let ts = i.saturating_mul(epoch_cycles);
        out.push(chrome_counter(
            pid,
            "serviced",
            ts,
            vec![
                ("stacked".into(), Json::U64(c.stacked_serviced)),
                ("off_chip".into(), Json::U64(c.off_chip_serviced)),
            ],
        ));
        out.push(chrome_counter(
            pid,
            "swaps",
            ts,
            vec![("swaps".into(), Json::U64(c.swaps))],
        ));
        if c.predicts > 0 {
            out.push(chrome_counter(
                pid,
                "llp_accuracy_pct",
                ts,
                vec![(
                    "correct".into(),
                    Json::F64(c.prediction_accuracy().unwrap_or(0.0) * 100.0),
                )],
            ));
        }
    }
}

/// Writes the JSONL dump to `path` and the Chrome-trace document to
/// [`chrome_path`]`(path)` for every traced point in the report.
///
/// Points without a recording (failed, resumed, or from an untraced
/// sweep) contribute nothing; a fully untraced report still produces
/// valid (headers-only) artifacts.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_trace_artifacts(
    path: &Path,
    sweep_name: &str,
    report: &SweepReport,
) -> std::io::Result<()> {
    let mut jsonl = std::io::BufWriter::new(std::fs::File::create(path)?);
    let header = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("sweep".into(), Json::Str(sweep_name.into())),
        ("points".into(), Json::U64(report.outcomes.len() as u64)),
    ]);
    writeln!(jsonl, "{}", header.render())?;
    let mut chrome_events = Vec::new();
    for (pid, outcome) in report.outcomes.iter().enumerate() {
        let Some(trace) = &outcome.trace else {
            continue;
        };
        let key = &outcome.point.key;
        let point = Json::Obj(vec![
            ("kind".into(), Json::Str("point".into())),
            ("key".into(), Json::Str(key.clone())),
            ("events".into(), Json::U64(trace.event_count())),
            ("retained".into(), Json::U64(trace.events.len() as u64)),
            ("dropped".into(), Json::U64(trace.dropped_events)),
            (
                "epoch_cycles".into(),
                Json::U64(trace.epochs.epoch_cycles()),
            ),
        ]);
        writeln!(jsonl, "{}", point.render())?;
        for (now, event) in &trace.events {
            writeln!(jsonl, "{}", event_line(key, *now, event).render())?;
        }
        let epoch_cycles = trace.epochs.epoch_cycles();
        if trace.epochs.spilled_epochs() > 0 {
            let line = spilled_line(
                key,
                trace.epochs.spilled_epochs(),
                trace.epochs.spilled_totals(),
            );
            writeln!(jsonl, "{}", line.render())?;
        }
        for (i, c) in trace.epochs.retained() {
            writeln!(jsonl, "{}", epoch_line(key, i, epoch_cycles, c).render())?;
        }
        chrome_events_of(pid as u64, key, trace, &mut chrome_events);
    }
    jsonl.flush()?;

    let chrome = Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(chrome_events)),
        ("displayTimeUnit".into(), Json::Str("ns".into())),
    ]);
    let mut text = chrome.render();
    text.push('\n');
    std::fs::write(chrome_path(path), text)
}

/// Reads a JSONL dump back, validating every line, and returns the parsed
/// line objects.
///
/// # Errors
///
/// Returns a description naming the first malformed line — unlike the
/// checkpoint loader, a trace dump is written in one piece, so *any*
/// corruption is an error.
pub fn read_trace_jsonl(path: &Path) -> Result<Vec<Json>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut lines = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            Json::parse(line).map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
        lines.push(value);
    }
    match lines
        .first()
        .and_then(|h| h.get("schema"))
        .and_then(Json::as_str)
    {
        Some(SCHEMA) => Ok(lines),
        other => Err(format!(
            "{}: header schema is {other:?}, want {SCHEMA:?}",
            path.display()
        )),
    }
}

fn u64_of(json: &Json, key: &str) -> u64 {
    match json.get(key) {
        Some(Json::U64(v)) => *v,
        _ => 0,
    }
}

fn pct(numer: u64, denom: u64) -> String {
    if denom == 0 {
        return "-".to_owned();
    }
    format!("{:.1}", numer as f64 / denom as f64 * 100.0)
}

/// Renders the epoch lines of a parsed dump as a per-point, per-epoch
/// table: service mix, swap rate, prediction accuracy, row-buffer hits.
pub fn epoch_table(lines: &[Json]) -> Table {
    let mut table = Table::new(vec![
        "point".to_owned(),
        "epoch".to_owned(),
        "serviced".to_owned(),
        "stacked%".to_owned(),
        "swaps".to_owned(),
        "LLP acc%".to_owned(),
        "row hit%".to_owned(),
        "migr".to_owned(),
        "recov".to_owned(),
    ]);
    for line in lines {
        if line.get("kind").and_then(Json::as_str) != Some("epoch") {
            continue;
        }
        let stacked = u64_of(line, "stacked_serviced");
        let serviced = stacked + u64_of(line, "off_chip_serviced");
        let row_hits = u64_of(line, "row_hits");
        let row_total = row_hits + u64_of(line, "row_closed") + u64_of(line, "row_conflicts");
        table.row(vec![
            line.get("key")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_owned(),
            u64_of(line, "epoch").to_string(),
            serviced.to_string(),
            pct(stacked, serviced),
            u64_of(line, "swaps").to_string(),
            pct(u64_of(line, "predicts_correct"), u64_of(line, "predicts")),
            pct(row_hits, row_total),
            u64_of(line, "migrated_pages").to_string(),
            u64_of(line, "recovery_actions").to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_sim::experiments::OrgKind;
    use cameo_sim::harness::{run_sweep_traced, SweepOptions, SweepPoint};
    use cameo_sim::trace::TraceOptions;
    use cameo_sim::SystemConfig;

    fn traced_report() -> SweepReport {
        let opts = SweepOptions {
            config: SystemConfig {
                scale: 8192,
                cores: 2,
                instructions_per_core: 20_000,
                warmup_fraction: 0.2,
                ..SystemConfig::default()
            },
            max_attempts: 1,
            ..SweepOptions::default()
        };
        let points = [
            SweepPoint::new("astar", OrgKind::cameo_default()),
            SweepPoint::new("astar", OrgKind::Baseline),
        ];
        run_sweep_traced(&points, &opts, None, TraceOptions::default())
            .expect("no checkpoint I/O involved")
    }

    #[test]
    fn artifacts_round_trip_and_tabulate() {
        let report = traced_report();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_trace_dump_{}.jsonl", std::process::id()));
        write_trace_artifacts(&path, "unit-test", &report).expect("tmp write");

        let lines = read_trace_jsonl(&path).expect("every JSONL line parses");
        assert_eq!(
            lines[0].get("sweep").and_then(Json::as_str),
            Some("unit-test")
        );
        let kinds: Vec<&str> = lines
            .iter()
            .skip(1)
            .filter_map(|l| l.get("kind").and_then(Json::as_str))
            .collect();
        assert!(kinds.contains(&"point"));
        assert!(kinds.contains(&"event"));
        assert!(kinds.contains(&"epoch"));
        // CAMEO emitted service events; their payloads survive the trip.
        assert!(lines.iter().any(|l| {
            l.get("kind").and_then(Json::as_str) == Some("event")
                && l.get("name").and_then(Json::as_str) == Some("service")
        }));

        let rendered = epoch_table(&lines).to_string();
        assert!(rendered.contains("astar::CAMEO"), "{rendered}");

        let chrome = chrome_path(&path);
        let doc = Json::parse(&std::fs::read_to_string(&chrome).expect("chrome sibling written"))
            .expect("chrome document parses");
        match doc.get("traceEvents") {
            Some(Json::Arr(events)) => {
                assert!(!events.is_empty());
                assert!(events
                    .iter()
                    .any(|e| { e.get("ph").and_then(Json::as_str) == Some("C") }));
                assert!(events
                    .iter()
                    .any(|e| { e.get("ph").and_then(Json::as_str) == Some("M") }));
            }
            other => panic!("traceEvents missing: {other:?}"),
        }
        std::fs::remove_file(&path).expect("tmp cleanup");
        std::fs::remove_file(&chrome).expect("tmp cleanup");
    }

    #[test]
    fn bad_schema_and_corrupt_lines_are_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_trace_bad_{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"schema\":\"other/9\"}\n").expect("tmp write");
        assert!(read_trace_jsonl(&path)
            .expect_err("wrong schema")
            .contains("schema"));
        std::fs::write(
            &path,
            format!("{{\"schema\":\"{SCHEMA}\"}}\n{{\"kind\":\"ev"),
        )
        .expect("tmp write");
        assert!(read_trace_jsonl(&path)
            .expect_err("truncated line")
            .contains("line 2"));
        std::fs::remove_file(&path).expect("tmp cleanup");
    }

    #[test]
    fn chrome_path_appends_suffix() {
        assert_eq!(
            chrome_path(Path::new("/tmp/fig12.trace")),
            PathBuf::from("/tmp/fig12.trace.chrome.json")
        );
    }
}
