//! Design-comparison support for the `ext_designs` binary: competing
//! memory organizations crossed with device models, ranked by
//! geometric-mean speedup over the off-chip baseline.
//!
//! The paper compares organizations on one fixed device (the flat
//! Table I DRAMs). This module makes both axes first-class: every
//! design column is an `(organization, device)` pair, the device rides
//! in the sweep-point key (`"mcf::MemCache@50@tldram"`), and the grid
//! ranks all columns by their overall geometric mean — the answer to
//! "which design wins, and does tiering the stacked die change it?".

use std::collections::BTreeMap;

use cameo_sim::checkpoint::PointRecord;
use cameo_sim::experiments::{build_org_on, build_org_traced_on, gmean, OrgKind};
use cameo_sim::harness::{run_sweep_traced_with, SweepOptions, SweepPoint, SweepReport};
use cameo_sim::report::Table;
use cameo_sim::trace::{SharedSink, TraceOptions};
use cameo_sim::RunStats;
use cameo_types::DeviceKind;
use cameo_workloads::BenchSpec;

use crate::Cli;

/// One column of the design-comparison sweep: an organization on a
/// device model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DesignPoint {
    /// The memory organization under test.
    pub kind: OrgKind,
    /// The device model it runs on.
    pub device: DeviceKind,
}

impl DesignPoint {
    /// Column label and key suffix: `"<org>@<device>"`.
    pub fn label(&self) -> String {
        format!("{}@{}", self.kind.label(), self.device.label())
    }
}

/// The design matrix `ext_designs` sweeps: CAMEO, the Alloy cache,
/// dynamic two-level memory, and the MemCache hybrid at three split
/// ratios — each on the flat Table I devices and on the tiered-latency
/// stacked die. The golden-conformance test replays exactly this set at
/// micro scale — change one, regenerate the other.
pub fn designs() -> Vec<DesignPoint> {
    let kinds = [
        OrgKind::cameo_default(),
        OrgKind::AlloyCache,
        OrgKind::TlmDynamic,
        OrgKind::MemCache { split_percent: 25 },
        OrgKind::MemCache { split_percent: 50 },
        OrgKind::MemCache { split_percent: 75 },
    ];
    let mut all = Vec::with_capacity(kinds.len() * DeviceKind::all().len());
    for kind in kinds {
        for device in DeviceKind::all() {
            all.push(DesignPoint { kind, device });
        }
    }
    all
}

/// Recovers the device axis from a design sweep-point key: the suffix
/// after the last `@` (`"mcf::MemCache@50@tldram"` → tiered). Keys
/// without a device suffix — the `"<bench>::#base"` baseline — run on
/// the flat devices.
pub fn device_of_key(key: &str) -> DeviceKind {
    key.rsplit_once('@')
        .and_then(|(_, label)| DeviceKind::parse(label))
        .unwrap_or_default()
}

/// The design sweep's point set: per benchmark, the flat baseline under
/// `"<bench>::#base"` followed by every design column under its
/// device-encoded key `"<bench>::<org>@<device>"`.
pub fn sweep_points(benches: &[BenchSpec], designs: &[DesignPoint]) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(benches.len() * (designs.len() + 1));
    for bench in benches {
        points.push(
            SweepPoint::new(bench.name, OrgKind::Baseline)
                .with_key(format!("{}::#base", bench.name)),
        );
        for design in designs {
            points.push(
                SweepPoint::new(bench.name, design.kind)
                    .with_key(format!("{}::{}", bench.name, design.label())),
            );
        }
    }
    points
}

/// All per-benchmark runs of the design comparison:
/// `runs[bench][column]` under the column order of [`DesignGrid::designs`].
pub struct DesignGrid {
    /// The design columns, in sweep order.
    pub designs: Vec<DesignPoint>,
    /// Per-benchmark flat-baseline stats.
    pub baselines: BTreeMap<String, RunStats>,
    /// Per-benchmark, per-column stats.
    pub runs: BTreeMap<String, Vec<RunStats>>,
    /// Benchmark order.
    pub order: Vec<BenchSpec>,
    /// The underlying sweep report (wall-clock and throughput gauges).
    pub report: SweepReport,
}

impl DesignGrid {
    /// Runs the baseline plus every design column for every benchmark in
    /// `cli` through the sweep harness, across [`Cli::jobs`] workers.
    /// `--trace-out` arms per-point recording sinks; results are
    /// bit-identical either way (the harness guarantees report equality).
    ///
    /// # Panics
    ///
    /// Panics if any design point fails — the comparison wants broken
    /// designs loud, not silently missing columns.
    pub fn collect(designs: &[DesignPoint], cli: &Cli) -> Self {
        let points = sweep_points(&cli.benches, designs);
        eprintln!(
            "[sweep] {} points ({} benches x {} designs + baseline) across {} worker(s)",
            points.len(),
            cli.benches.len(),
            designs.len(),
            cli.jobs.max(1),
        );
        let opts = SweepOptions {
            config: cli.config,
            max_attempts: 1,
            jobs: cli.jobs,
            chunk_accesses: cli.chunk,
            ..SweepOptions::default()
        };
        let traced = cli.trace_out.is_some();
        let report = run_sweep_traced_with(&points, &opts, None, &|point, config| {
            let bench = cameo_workloads::require(&point.bench)
                .expect("sweep_points draws benchmarks from the Table II suite");
            let device = device_of_key(&point.key);
            if traced {
                let sink = SharedSink::new(TraceOptions::default());
                let org = build_org_traced_on(&bench, point.kind, device, config, sink.clone());
                (org, Some(sink))
            } else {
                (build_org_on(&bench, point.kind, device, config), None)
            }
        })
        .unwrap_or_else(|e| panic!("design sweep failed before any checkpointing: {e}"));

        let mut outcomes = report.outcomes.iter();
        let mut take = || {
            let outcome = outcomes
                .next()
                .expect("the report has one outcome per submitted point");
            match &outcome.record {
                PointRecord::Done { stats, .. } => (**stats).clone(),
                PointRecord::Failed { error, .. } => {
                    panic!("design point {} failed: {error}", outcome.point.key)
                }
            }
        };
        let mut baselines = BTreeMap::new();
        let mut runs = BTreeMap::new();
        for bench in &cli.benches {
            let base = take();
            let row: Vec<RunStats> = designs.iter().map(|_| take()).collect();
            baselines.insert(bench.name.to_owned(), base);
            runs.insert(bench.name.to_owned(), row);
        }
        Self {
            designs: designs.to_vec(),
            baselines,
            runs,
            order: cli.benches.clone(),
            report,
        }
    }

    /// Speedup of a design column (by index) on `bench`, over the flat
    /// off-chip baseline.
    pub fn speedup(&self, bench: &str, col: usize) -> f64 {
        self.runs[bench][col].speedup_over(&self.baselines[bench])
    }

    /// Geometric-mean speedup of one column over all benchmarks.
    pub fn gmean_all(&self, col: usize) -> f64 {
        gmean(self.order.iter().map(|b| self.speedup(b.name, col))).expect("benchmarks present")
    }

    /// Per-benchmark speedup table, one column per design.
    pub fn speedup_table(&self) -> Table {
        let mut headers = vec!["bench".to_owned()];
        headers.extend(self.designs.iter().map(DesignPoint::label));
        let mut table = Table::new(headers);
        for bench in &self.order {
            let mut row = vec![bench.name.to_owned()];
            for col in 0..self.designs.len() {
                row.push(format!("{:.2}x", self.speedup(bench.name, col)));
            }
            table.row(row);
        }
        table
    }

    /// Columns ranked by overall geometric mean, best first. Ties (to
    /// the displayed precision and beyond) break on column order, so the
    /// ranking is deterministic.
    pub fn ranking(&self) -> Vec<(DesignPoint, f64)> {
        let mut ranked: Vec<(DesignPoint, f64)> = self
            .designs
            .iter()
            .enumerate()
            .map(|(col, design)| (*design, self.gmean_all(col)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked
    }

    /// Per-benchmark MemCache split preference on the flat devices: the
    /// split that measured fastest next to the split the benchmark's
    /// workload category predicts
    /// ([`BenchSpec::preferred_memcache_split`]) — capacity-limited rows
    /// should want memory (75), latency-limited rows cache (25).
    pub fn split_preference_table(&self) -> Table {
        let splits: Vec<(usize, u8)> = self
            .designs
            .iter()
            .enumerate()
            .filter_map(|(col, d)| match (d.kind, d.device) {
                (OrgKind::MemCache { split_percent }, DeviceKind::Flat) => {
                    Some((col, split_percent))
                }
                _ => None,
            })
            .collect();
        let mut table = Table::new(vec![
            "bench".to_owned(),
            "category".to_owned(),
            "best split".to_owned(),
            "predicted".to_owned(),
            "agrees".to_owned(),
        ]);
        for bench in &self.order {
            let (_, best) = splits
                .iter()
                .copied()
                .max_by(|a, b| {
                    self.speedup(bench.name, a.0)
                        .partial_cmp(&self.speedup(bench.name, b.0))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("the design matrix carries MemCache splits");
            let predicted = bench.preferred_memcache_split();
            table.row(vec![
                bench.name.to_owned(),
                bench.category.to_string(),
                format!("{best}%"),
                format!("{predicted}%"),
                if best == predicted { "yes" } else { "no" }.to_owned(),
            ]);
        }
        table
    }

    /// The ranked summary table: rank, design, device, gmean speedup.
    pub fn ranking_table(&self) -> Table {
        let mut table = Table::new(vec![
            "rank".to_owned(),
            "design".to_owned(),
            "device".to_owned(),
            "gmean".to_owned(),
        ]);
        for (rank, (design, g)) in self.ranking().into_iter().enumerate() {
            table.row(vec![
                format!("{}", rank + 1),
                design.kind.label().to_owned(),
                design.device.label().to_owned(),
                format!("{g:.2}x"),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_both_axes() {
        let all = designs();
        assert_eq!(all.len(), 12, "6 organizations x 2 devices");
        for device in DeviceKind::all() {
            assert_eq!(all.iter().filter(|d| d.device == device).count(), 6);
        }
        // Labels are unique — they double as checkpoint key suffixes.
        let mut labels: Vec<String> = all.iter().map(DesignPoint::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn device_recovers_from_keys() {
        assert_eq!(device_of_key("mcf::CAMEO@tldram"), DeviceKind::TlDram);
        assert_eq!(device_of_key("mcf::MemCache@50@flat"), DeviceKind::Flat);
        assert_eq!(
            device_of_key("mcf::MemCache@75@tldram"),
            DeviceKind::TlDram
        );
        assert_eq!(device_of_key("mcf::#base"), DeviceKind::Flat);
    }

    #[test]
    fn point_set_is_baseline_plus_columns() {
        let benches = vec![cameo_workloads::require("mcf").expect("suite benchmark")];
        let points = sweep_points(&benches, &designs());
        assert_eq!(points.len(), 13);
        assert_eq!(points[0].key, "mcf::#base");
        assert_eq!(points[1].key, "mcf::CAMEO@flat");
        assert_eq!(points[2].key, "mcf::CAMEO@tldram");
        assert_eq!(points[12].key, "mcf::MemCache@75@tldram");
    }
}
