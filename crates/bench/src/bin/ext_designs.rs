//! Extension experiment: the full design-comparison matrix — competing
//! memory organizations crossed with device models.
//!
//! The paper fixes the devices (flat Table I DRAMs) and varies the
//! organization; this experiment varies both axes. Organizations: CAMEO,
//! the Alloy cache, dynamic two-level memory, and the MemCache hybrid
//! (stacked die statically split into an OS-visible memory region and a
//! hardware cache region) at 25/50/75% memory splits. Devices: flat, and
//! a tiered-latency (TL-DRAM) stacked die with fast near segments. The
//! output ranks all twelve columns by geometric-mean speedup over the
//! off-chip baseline — which design wins, and whether tiering the
//! stacked die reorders the podium.

use cameo_bench::designs::{designs, DesignGrid};
use cameo_bench::{print_header, Cli};

fn main() {
    let cli = Cli::parse();
    print_header("Extension — design comparison (org x device)", &cli);
    let matrix = designs();
    let grid = DesignGrid::collect(&matrix, &cli);
    println!("Design matrix — speedup over flat off-chip baseline\n");
    cli.emit(&grid.speedup_table());
    println!("\nRanked by Gmean ALL\n");
    cli.emit(&grid.ranking_table());
    println!("\nMemCache split preference (measured vs Table II prediction)\n");
    cli.emit(&grid.split_preference_table());
    cli.emit_perf("ext_designs", &grid.report);
    cli.emit_trace("ext_designs", &grid.report);
    println!(
        "MemCache trades cache capacity for OS-visible memory: large\n\
         splits help capacity-limited rows, small splits the latency-\n\
         limited ones. TL-DRAM tiers only 1/16 of each bank's rows, so\n\
         without hot-page promotion it tracks the flat die; whether\n\
         either axis reorders the podium is what the tables answer."
    );
}
