//! Extension experiment: heterogeneous workload mixes.
//!
//! The paper evaluates homogeneous rate mode (every core runs the same
//! benchmark). Real consolidated systems mix workloads — e.g. a
//! capacity-hungry tenant next to latency-sensitive ones — which stresses
//! exactly the capacity-vs-locality trade-off CAMEO targets: the cache
//! gives the capacity tenant nothing, while TLM gives the latency tenants
//! little. Cores here run *different* benchmarks (cycling through the
//! `--bench` list, default a capacity+latency mix).

use cameo_bench::{print_header, Cli};
use cameo_sim::experiments::{build_org, OrgKind};
use cameo_sim::report::Table;
use cameo_sim::runner::{trace_configs, Runner};
use cameo_sim::{RunStats, SystemConfig};
use cameo_workloads::{require, BenchSpec, MissStream, TraceConfig, TraceGenerator};

/// Builds one stream per core, cycling through the mix, with disjoint
/// virtual address ranges.
fn mix_streams(mix: &[BenchSpec], config: &SystemConfig) -> Vec<Box<dyn MissStream>> {
    let mut offset = 0u64;
    (0..config.cores)
        .map(|core| {
            let bench = mix[usize::from(core) % mix.len()];
            // Reuse the per-copy footprint sizing of homogeneous rate mode.
            let per_core = trace_configs(&bench, config)[0];
            let tc = TraceConfig {
                core_offset_pages: offset,
                seed: per_core.seed.wrapping_add(u64::from(core)),
                ..per_core
            };
            let generator = TraceGenerator::new(bench, tc);
            offset += generator.footprint_pages() + 1;
            Box::new(generator) as Box<dyn MissStream>
        })
        .collect()
}

fn run_mix(mix: &[BenchSpec], kind: OrgKind, config: &SystemConfig) -> RunStats {
    let mut org = build_org(&mix[0], kind, config);
    Runner::new(mix[0], config)
        .expect("CLI configuration was validated at parse time")
        .run_with_streams(org.as_mut(), mix_streams(mix, config))
}

fn main() {
    let mut cli = Cli::parse();
    // Default mix: capacity-hungry tenants (mcf on half the cores — their
    // combined footprint exceeds visible memory) sharing the machine with
    // latency-sensitive ones.
    if cli.benches.len() == 17 {
        cli.benches = ["mcf", "gcc", "mcf", "omnetpp"]
            .iter()
            .map(|n| require(n).expect("mix members are Table II suite benchmarks"))
            .collect();
    }
    print_header("Extension — heterogeneous mix", &cli);
    let names: Vec<&str> = cli.benches.iter().map(|b| b.name).collect();
    println!(
        "mix (assigned round-robin over {} cores): {}\n",
        cli.config.cores,
        names.join(" + ")
    );

    let baseline = run_mix(&cli.benches, OrgKind::Baseline, &cli.config);
    let mut table = Table::new(vec![
        "design",
        "speedup",
        "stacked%",
        "avg latency",
        "faults",
    ]);
    for kind in [
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::TlmDynamic,
        OrgKind::cameo_default(),
        OrgKind::DoubleUse,
    ] {
        eprintln!("[run] {}", kind.label());
        let stats = run_mix(&cli.benches, kind, &cli.config);
        table.row(vec![
            kind.label().to_owned(),
            format!("{:.2}x", stats.speedup_over(&baseline)),
            format!("{:.0}", stats.stacked_service_rate().unwrap_or(0.0) * 100.0),
            format!("{:.0}", stats.avg_read_latency().unwrap_or(0.0)),
            stats.faults.to_string(),
        ]);
    }
    println!("Heterogeneous mix — speedup over the no-stacked baseline\n");
    cli.emit(&table);
}
