//! Figure 9: speedup of the three LLT designs (Ideal, Embedded,
//! Co-Located), all without location prediction (serial access).

use cameo::{LltDesign, PredictorKind};
use cameo_bench::{print_header, Cli, SpeedupGrid};
use cameo_sim::experiments::OrgKind;

fn main() {
    let cli = Cli::parse();
    print_header("Figure 9 — LLT designs", &cli);
    let kinds = [
        OrgKind::Cameo {
            llt: LltDesign::Embedded,
            predictor: PredictorKind::SerialAccess,
        },
        // The paper's Figure 6(a) SRAM strawman, for reference (it is
        // impractical — the table would displace the entire L3).
        OrgKind::Cameo {
            llt: LltDesign::Sram,
            predictor: PredictorKind::SerialAccess,
        },
        OrgKind::Cameo {
            llt: LltDesign::CoLocated,
            predictor: PredictorKind::SerialAccess,
        },
        OrgKind::Cameo {
            llt: LltDesign::Ideal,
            predictor: PredictorKind::SerialAccess,
        },
    ];
    let grid = SpeedupGrid::collect(&kinds, &cli);
    println!("Figure 9 — speedup of CAMEO with different LLT designs\n");
    cli.emit(&grid.speedup_table());
    if !cli.csv {
        println!("\nGmean ALL:\n{}", grid.gmean_chart());
    }
    cli.emit_perf("fig09_llt_designs", &grid.report);
    cli.emit_trace("fig09_llt_designs", &grid.report);
    println!("\npaper gmeans (ALL): Embedded-LLT lower, Co-Located 1.74x, Ideal-LLT 1.80x");
}
