//! Trace tooling: record benchmark miss streams to `.cameotrace` files,
//! inspect them, and replay them through any memory organization.
//!
//! ```text
//! trace_tools record <bench> <out-file> [--events N] [--scale N] [--seed N]
//! trace_tools info   <file>
//! trace_tools replay <file> [--org cameo|cache|baseline]
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use cameo_sim::experiments::{build_org, OrgKind};
use cameo_sim::runner::Runner;
use cameo_sim::SystemConfig;
use cameo_trace::{TraceFile, TraceWriter};
use cameo_workloads::{require, MissStream, TraceConfig, TraceGenerator};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_tools record <bench> <out-file> [--events N] [--scale N] [--seed N]\n  \
         trace_tools info <file>\n  trace_tools replay <file> [--org cameo|cache|baseline]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map_or(default, |v| v.parse().unwrap_or(default))
}

fn record(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (name, path) = match (args.first(), args.get(1)) {
        (Some(n), Some(p)) => (n.clone(), p.clone()),
        _ => return Err("record needs <bench> <out-file>".into()),
    };
    let spec = require(&name)?;
    let events = flag(args, "--events", 100_000);
    let scale = flag(args, "--scale", 128);
    let seed = flag(args, "--seed", 42);
    let mut generator = TraceGenerator::new(
        spec,
        TraceConfig {
            scale,
            seed,
            core_offset_pages: 0,
        },
    );
    let sink = BufWriter::new(File::create(&path)?);
    TraceWriter::record(sink, &name, &mut generator, events)?;
    println!("recorded {events} events of {name} (scale 1/{scale}, seed {seed}) to {path}");
    Ok(())
}

fn info(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("info needs <file>")?;
    let trace = TraceFile::read(BufReader::new(File::open(path)?))?;
    let reads = trace.events.iter().filter(|e| !e.is_write).count();
    let instructions: u64 = trace.events.iter().map(|e| e.gap_instructions).sum();
    let pages: std::collections::HashSet<u64> =
        trace.events.iter().map(|e| e.line.page().raw()).collect();
    println!("name:        {}", trace.name);
    println!("events:      {}", trace.events.len());
    println!("reads:       {reads}");
    println!("writes:      {}", trace.events.len() - reads);
    println!(
        "mpki:        {:.1}",
        trace.events.len() as f64 * 1000.0 / instructions.max(1) as f64
    );
    println!(
        "pages:       {} touched / {} footprint",
        pages.len(),
        trace.footprint_pages
    );
    Ok(())
}

fn replay(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("replay needs <file>")?;
    let kind = match args
        .iter()
        .position(|a| a == "--org")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("cameo") => OrgKind::cameo_default(),
        Some("cache") => OrgKind::AlloyCache,
        Some("baseline") => OrgKind::Baseline,
        Some(other) => return Err(format!("unknown org {other}").into()),
    };
    let trace = TraceFile::read(BufReader::new(File::open(path)?))?;
    let spec = require(&trace.name)?;
    let config = SystemConfig {
        cores: 1,
        instructions_per_core: 2_000_000,
        ..SystemConfig::default()
    };
    let mut org = build_org(&spec, kind, &config);
    let replay: Box<dyn MissStream> = Box::new(trace.into_replay());
    let stats = Runner::new(spec, &config)?.run_with_streams(org.as_mut(), vec![replay]);
    println!(
        "{} on {}: CPI {:.2}, {} reads ({:.0}% stacked), avg latency {:.0} cycles, {} faults",
        kind.label(),
        stats.bench,
        stats.cpi(),
        stats.demand_reads,
        stats.stacked_service_rate().unwrap_or(0.0) * 100.0,
        stats.avg_read_latency().unwrap_or(0.0),
        stats.faults,
    );
    Ok(())
}
