//! Table IV: bandwidth usage in memory and storage, normalized to the
//! baseline, averaged per workload category.

use cameo_bench::{print_header, Cli};
use cameo_sim::experiments::{run_benchmark, OrgKind};
use cameo_sim::report::{ratio, Table};
use cameo_sim::RunStats;
use cameo_workloads::Category;

fn mean(values: &[f64]) -> Option<f64> {
    (!values.is_empty()).then(|| values.iter().sum::<f64>() / values.len() as f64)
}

struct CategoryAverages {
    stacked: Option<f64>,
    off_chip: Option<f64>,
    storage: Option<f64>,
}

fn averages(
    runs: &[(Category, RunStats, RunStats)], // (category, run, baseline)
    category: Category,
) -> CategoryAverages {
    let mut stacked = Vec::new();
    let mut off = Vec::new();
    let mut storage = Vec::new();
    for (cat, run, base) in runs {
        if *cat != category {
            continue;
        }
        let n = run.bandwidth.normalized_to(&base.bandwidth);
        if let Some(v) = n.stacked {
            stacked.push(v);
        }
        if let Some(v) = n.off_chip {
            off.push(v);
        }
        if let Some(v) = n.storage {
            storage.push(v);
        }
    }
    CategoryAverages {
        stacked: mean(&stacked),
        off_chip: mean(&off),
        storage: mean(&storage),
    }
}

fn main() {
    let cli = Cli::parse();
    print_header("Table IV — bandwidth usage", &cli);
    let kinds = [
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::TlmDynamic,
        OrgKind::cameo_default(),
    ];

    let mut table = Table::new(vec![
        "design",
        "Cap:stacked",
        "Cap:off-chip",
        "Cap:storage",
        "Lat:stacked",
        "Lat:off-chip",
    ]);
    table.row(vec![
        "Baseline".to_owned(),
        "n/a".to_owned(),
        "1.00x".to_owned(),
        "1.00x".to_owned(),
        "n/a".to_owned(),
        "1.00x".to_owned(),
    ]);
    for kind in kinds {
        let mut runs = Vec::new();
        for bench in &cli.benches {
            eprintln!("[run] {} {}", bench.name, kind.label());
            let base = run_benchmark(bench, OrgKind::Baseline, &cli.config);
            let run = run_benchmark(bench, kind, &cli.config);
            runs.push((bench.category, run, base));
        }
        let cap = averages(&runs, Category::CapacityLimited);
        let lat = averages(&runs, Category::LatencyLimited);
        table.row(vec![
            kind.label().to_owned(),
            ratio(cap.stacked),
            ratio(cap.off_chip),
            ratio(cap.storage),
            ratio(lat.stacked),
            ratio(lat.off_chip),
        ]);
    }
    println!(
        "Table IV — bandwidth usage in memory and storage (bytes transferred,\n\
         normalized to baseline; stacked normalized to baseline off-chip)\n"
    );
    cli.emit(&table);
    println!(
        "\npaper: Cache 1.93/0.55/1.00 | TLM-Stat 0.26/0.74/0.78 | \
         TLM-Dyn 2.54/2.19/0.78 | CAMEO 1.89/1.07/0.79 (Capacity columns)"
    );
}
