//! Figure 13: the headline comparison — Cache, TLM-Static, TLM-Dynamic,
//! CAMEO (Co-Located LLT + LLP) and DoubleUse over the baseline.

use cameo_bench::{print_header, Cli, SpeedupGrid};
use cameo_sim::experiments::OrgKind;

fn main() {
    let cli = Cli::parse();
    print_header("Figure 13 — headline speedups", &cli);
    let kinds = [
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::TlmDynamic,
        OrgKind::cameo_default(),
        OrgKind::DoubleUse,
    ];
    let grid = SpeedupGrid::collect(&kinds, &cli);
    println!("Figure 13 — speedup with stacked memory\n");
    cli.emit(&grid.speedup_table());
    if !cli.csv {
        println!("\nGmean ALL:\n{}", grid.gmean_chart());
    }
    cli.emit_perf("fig13_speedup", &grid.report);
    cli.emit_trace("fig13_speedup", &grid.report);
    println!(
        "\npaper gmeans (ALL): Cache 1.50x, TLM-Static 1.33x, TLM-Dynamic 1.50x, \
         CAMEO 1.78x, DoubleUse 1.82x"
    );
}
