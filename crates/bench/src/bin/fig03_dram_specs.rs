//! Figure 3: DRAM capacity and bandwidth by technology (datasheet data).

use cameo_bench::Cli;
use cameo_memsim::specs::{stacked_bandwidth_advantage, DRAM_SPECS};
use cameo_sim::report::Table;

fn main() {
    let cli = Cli::parse();
    let mut table = Table::new(vec![
        "technology",
        "class",
        "capacity (GB)",
        "bandwidth (GB/s)",
    ]);
    for s in DRAM_SPECS {
        table.row(vec![
            s.name.to_owned(),
            if s.stacked { "stacked" } else { "commodity" }.to_owned(),
            format!("{:.1}", s.capacity_gb),
            format!("{:.1}", s.bandwidth_gbs),
        ]);
    }
    println!("Figure 3 — DRAM capacity and bandwidth (log-scale axes in the paper)\n");
    cli.emit(&table);
    println!(
        "\nbest stacked vs best commodity bandwidth: {:.1}x (paper: \"almost an order of magnitude\")",
        stacked_bandwidth_advantage()
    );
}
