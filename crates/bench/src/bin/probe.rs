//! Latency-distribution probe for calibration: runs one organization with
//! one benchmark through the real runner and prints the demand-read latency
//! histogram.

use cameo_bench::Cli;
use cameo_sim::experiments::{build_org, OrgKind};
use cameo_sim::runner::Runner;

fn main() {
    let cli = Cli::parse();
    let bench = cli.benches[0];
    for kind in [OrgKind::Baseline, OrgKind::cameo_default()] {
        let mut org = build_org(&bench, kind, &cli.config);
        let stats = Runner::new(bench, &cli.config)
            .expect("CLI configuration was validated at parse time")
            .run(org.as_mut());
        println!(
            "{} {}: reads {}, avg latency {:.0}, faults {}",
            bench.name,
            kind.label(),
            stats.demand_reads,
            stats.avg_read_latency().unwrap_or(0.0),
            stats.faults
        );
        for (k, count) in stats.latency_histogram.iter().enumerate() {
            if *count > 0 {
                println!("  2^{k:<2} ({:>8}+ cyc): {count}", 1u64 << k);
            }
        }
    }
}
