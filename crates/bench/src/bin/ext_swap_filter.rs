//! Extension experiment: frequency-filtered swapping (the combination the
//! paper sketches at the end of Section VI-D — "CAMEO can retain lines from
//! only heavily used pages in stacked DRAM").
//!
//! Compares base CAMEO against hot-pages-only swapping at several
//! thresholds: the filter trades first-touch hit rate for reduced swap
//! churn, which pays off exactly on the streaming-heavy workloads where
//! base CAMEO's install traffic hurts.

use cameo::{LltDesign, PredictorKind, SwapPolicy};
use cameo_bench::{print_header, Cli};
use cameo_sim::experiments::{run_benchmark, OrgKind};
use cameo_sim::org::CameoOrg;
use cameo_sim::report::Table;
use cameo_sim::runner::Runner;

fn main() {
    let cli = Cli::parse();
    print_header("Extension — frequency-filtered swapping", &cli);
    let cfg = &cli.config;
    let thresholds = [2u8, 4, 8];

    let mut headers = vec!["bench".to_owned(), "CAMEO".to_owned()];
    headers.extend(thresholds.iter().map(|t| format!("filter(>= {t})")));
    let mut table = Table::new(headers);
    for bench in &cli.benches {
        eprintln!("[run] {}", bench.name);
        let baseline = run_benchmark(bench, OrgKind::Baseline, cfg);
        let base_cameo = run_benchmark(bench, OrgKind::cameo_default(), cfg);
        let mut row = vec![
            bench.name.to_owned(),
            format!("{:.2}x", base_cameo.speedup_over(&baseline)),
        ];
        for threshold in thresholds {
            let mut org = CameoOrg::new(
                cfg.stacked(),
                cfg.off_chip(),
                LltDesign::CoLocated,
                PredictorKind::Llp,
                cfg.cores,
                cfg.llp_entries,
                cfg.seed ^ 0xBEEF,
            )
            .with_swap_policy(SwapPolicy::HotPagesOnly { threshold });
            let stats = Runner::new(*bench, cfg)
                .expect("CLI configuration was validated at parse time")
                .run(&mut org);
            row.push(format!("{:.2}x", stats.speedup_over(&baseline)));
        }
        table.row(row);
    }
    println!("Frequency-filtered CAMEO — speedup over baseline\n");
    cli.emit(&table);
    println!(
        "\nA 48 KB page-activity filter (64K x 6-bit counters) gates swaps;\n\
         higher thresholds swap less and keep streaming data from churning\n\
         the stacked contents."
    );
}
