//! Extension experiment: DRAM-cache design comparison — Loh-Hill
//! (set-associative, tags-in-row, MissMap) vs. Alloy (direct-mapped TAD)
//! vs. CAMEO.
//!
//! The paper adopts Alloy as its cache baseline citing its latency
//! advantage over prior tags-in-DRAM designs; this experiment replays that
//! comparison inside our substrate: LH pays tag-serialization on every hit
//! but never wastes a probe on misses and resists conflicts with 29 ways;
//! Alloy is fastest on hits but conflict-prone; CAMEO adds the capacity.

use cameo_bench::{print_header, Cli, SpeedupGrid};
use cameo_sim::experiments::OrgKind;

fn main() {
    let cli = Cli::parse();
    print_header("Extension — DRAM cache designs", &cli);
    let kinds = [
        OrgKind::LhCache,
        OrgKind::AlloyCache,
        OrgKind::cameo_default(),
    ];
    let grid = SpeedupGrid::collect(&kinds, &cli);
    println!("DRAM cache designs — speedup over baseline\n");
    cli.emit(&grid.speedup_table());
    if !cli.csv {
        println!("\nGmean ALL:\n{}", grid.gmean_chart());
    }
    cli.emit_perf("ext_dram_caches", &grid.report);
    cli.emit_trace("ext_dram_caches", &grid.report);
    println!(
        "Alloy's MICRO-2012 claim — a direct-mapped TAD cache beats the\n\
         set-associative tags-in-row design on latency — should reproduce\n\
         on the latency-limited rows; CAMEO adds the capacity wins on top."
    );
}
