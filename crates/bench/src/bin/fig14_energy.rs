//! Figure 14: normalized power and energy-delay product for each design.

use cameo_bench::{print_header, Cli};
use cameo_sim::energy::{edp, power};
use cameo_sim::experiments::{gmean, run_benchmark, OrgKind};
use cameo_sim::report::Table;

fn main() {
    let cli = Cli::parse();
    print_header("Figure 14 — power and EDP", &cli);
    let kinds = [
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::TlmDynamic,
        OrgKind::cameo_default(),
    ];

    let mut table = Table::new(vec!["design", "power (norm.)", "EDP (norm.)"]);
    for kind in kinds {
        let mut powers = Vec::new();
        let mut edps = Vec::new();
        for bench in &cli.benches {
            eprintln!("[run] {} {}", bench.name, kind.label());
            let base = run_benchmark(bench, OrgKind::Baseline, &cli.config);
            let run = run_benchmark(bench, kind, &cli.config);
            let p = power(&run, &base, bench.category).total()
                / power(&base, &base, bench.category).total();
            powers.push(p);
            edps.push(edp(&run, &base, bench.category));
        }
        table.row(vec![
            kind.label().to_owned(),
            format!("{:.2}x", gmean(powers).expect("benchmarks present")),
            format!("{:.2}x", gmean(edps).expect("benchmarks present")),
        ]);
    }
    println!("Figure 14 — power and energy-delay product, normalized to baseline\n");
    cli.emit(&table);
    println!(
        "\npaper (overall): power Cache +14%, CAMEO +37%, TLM-Dynamic +51%;\n\
         EDP Cache -4%, TLM-Static -21%, CAMEO -49% (lower is better)"
    );
}
