//! Extension: the fig13 headline micro-slice replayed down a halving
//! scale ladder — 128 → 64 → … → `--scale` — ending, at `--scale 1`, at
//! the paper's full 4 GiB stacked + 12 GiB off-chip machine (~256 Mi
//! tracked lines).
//!
//! This is a *capacity* experiment, not a throughput one: the instruction
//! slice stays fixed and calibrated-small while the memory system grows
//! 128-fold, and the per-rung resident-set gauges (current / peak RSS,
//! bytes per tracked line) show that the permutation-coded LLT, the
//! sparse lazy page tables and the streaming trace path keep host memory
//! flat. The deepest rung writes the `cameo-bench-sweep/1` artifact
//! (`--bench-json`), whose `peak_rss_bytes` / `bytes_per_tracked_line`
//! fields make the claim machine-checkable, and the `--trace-out` path
//! streams ring-evicted epochs to `PATH.epochs/` instead of holding them
//! in memory.
//!
//! Calibration: `--cores` / `--instructions` / `--bench` left at the
//! experiment defaults are replaced by the micro-slice values (2 cores,
//! 300 k instructions, `mcf`); pass non-default values to size the slice
//! by hand.

use cameo_bench::{fullscale, perf, print_header, Cli, SpeedupGrid};
use cameo_sim::report::Table;
use cameo_sim::trace::TraceOptions;

/// Formats an optional byte gauge as MiB for the ladder table.
fn mib(bytes: Option<u64>) -> String {
    bytes.map_or_else(|| "n/a".to_owned(), |b| format!("{:.1}", b as f64 / (1024.0 * 1024.0)))
}

fn main() {
    let cli = fullscale::calibrate(Cli::parse());
    print_header("Extension — full-scale ladder (fig13 micro-slice)", &cli);
    let kinds = fullscale::kinds();
    let rungs = fullscale::ladder(cli.config.scale);
    let deepest = *rungs.last().expect("the ladder always ends at the requested scale");

    let mut ladder_table = Table::new(vec![
        "scale".to_owned(),
        "stacked".to_owned(),
        "tracked lines".to_owned(),
        "gmean CAMEO".to_owned(),
        "rss now MiB".to_owned(),
        "rss peak MiB".to_owned(),
        "B/line".to_owned(),
    ]);
    let mut last: Option<(Cli, SpeedupGrid)> = None;
    for &scale in &rungs {
        let mut rung = cli.clone();
        rung.config.scale = scale;
        if scale != deepest {
            // Artifacts describe the deepest (headline) rung only.
            rung.bench_json = None;
            rung.trace_out = None;
        }
        let grid = match &rung.trace_out {
            Some(path) => {
                let trace_opts = TraceOptions::default();
                let spill = fullscale::epoch_spill_factory(path, trace_opts.epoch_cycles)
                    .unwrap_or_else(|e| panic!("creating the spilled-epoch directory: {e}"));
                SpeedupGrid::collect_spilling(&kinds, &rung, trace_opts, &spill)
            }
            None => SpeedupGrid::collect(&kinds, &rung),
        };
        rung.emit_perf("ext_fullscale", &grid.report);
        let tracked_lines = rung.config.total_memory().lines();
        let peak = perf::peak_rss_bytes();
        let per_line = peak.map(|b| b as f64 / tracked_lines as f64);
        ladder_table.row(vec![
            format!("1/{scale}"),
            rung.config.stacked().to_string(),
            tracked_lines.to_string(),
            format!("{:.2}x", grid.gmean_all(3)),
            mib(perf::current_rss_bytes()),
            mib(peak),
            per_line.map_or_else(|| "n/a".to_owned(), |v| format!("{v:.2}")),
        ]);
        if scale == deepest {
            rung.emit_trace("ext_fullscale", &grid.report);
            last = Some((rung, grid));
        }
    }

    println!("Extension — resident set down the scale ladder\n");
    cli.emit(&ladder_table);
    let (rung, grid) = last.expect("the ladder ran at least its deepest rung");
    println!(
        "\nFull-scale rung (scale 1/{}) — speedup with stacked memory\n",
        rung.config.scale
    );
    cli.emit(&grid.speedup_table());
    if !cli.csv {
        println!("\nGmean ALL:\n{}", grid.gmean_chart());
    }
    println!(
        "\npaper machine at --scale 1: 4 GiB stacked + 12 GiB off-chip; a flat \
         resident set well under the stacked capacity is the pass condition \
         (gauge-checked via --bench-json and `cargo xtask bench-diff --max-rss-factor`)"
    );
}
