//! Figure 8: access-latency comparison of the LLT designs, in the paper's
//! abstract units (stacked = 1, off-chip = 2) and in measured CPU cycles
//! from the cycle-level controller.

use cameo::latency_model::{latency_units, LatencyDesign};
use cameo::{Cameo, CameoConfig, LltDesign, PredictorKind};
use cameo_bench::Cli;
use cameo_sim::report::Table;
use cameo_types::{Access, ByteSize, CoreId, Cycle, LineAddr};

/// Measures the isolated-request latency of one (design, predictor) pair
/// for a stacked-resident line (H) and an off-chip line (M).
fn measured(llt: LltDesign, predictor: PredictorKind) -> (u64, u64) {
    let mk = || {
        Cameo::new(CameoConfig {
            stacked: ByteSize::from_mib(1),
            off_chip: ByteSize::from_mib(3),
            llt,
            predictor,
            cores: 1,
            llp_entries: 256,
        })
    };
    // H: way-0 line (identity-mapped to stacked).
    let mut h = mk();
    let hit = h
        .access(
            Cycle::ZERO,
            &Access::read(CoreId(0), LineAddr::new(5), 0x40),
        )
        .completion;
    // M: way-1 line (identity-mapped off-chip). For the Perfect predictor
    // this exercises the parallel-fetch path.
    let mut m = mk();
    let miss = m
        .access(
            Cycle::ZERO,
            &Access::read(CoreId(0), LineAddr::new(5 + 16384), 0x40),
        )
        .completion;
    (hit.raw(), miss.raw())
}

fn main() {
    let cli = Cli::parse();
    let mut table = Table::new(vec![
        "design",
        "H (units)",
        "M (units)",
        "H (cycles)",
        "M (cycles)",
    ]);
    let rows: [(LatencyDesign, Option<(LltDesign, PredictorKind)>); 5] = [
        (LatencyDesign::Baseline, None),
        (
            LatencyDesign::IdealLlt,
            Some((LltDesign::Ideal, PredictorKind::SerialAccess)),
        ),
        (
            LatencyDesign::EmbeddedLlt,
            Some((LltDesign::Embedded, PredictorKind::SerialAccess)),
        ),
        (
            LatencyDesign::CoLocatedLlt,
            Some((LltDesign::CoLocated, PredictorKind::SerialAccess)),
        ),
        (
            LatencyDesign::CoLocatedPredicted,
            Some((LltDesign::CoLocated, PredictorKind::Perfect)),
        ),
    ];
    for (design, exec) in rows {
        let (hc, mc) = match exec {
            Some((llt, pred)) => {
                let (h, m) = measured(llt, pred);
                (format!("{h}"), format!("{m}"))
            }
            None => {
                // Baseline: always off-chip; H cannot arise.
                let mut d = cameo_memsim::Dram::new(cameo_memsim::DramConfig::off_chip(
                    ByteSize::from_mib(3),
                ));
                let m = d.read_line(Cycle::ZERO, 5).raw();
                ("-".to_owned(), format!("{m}"))
            }
        };
        table.row(vec![
            design.label().to_owned(),
            if design == LatencyDesign::Baseline {
                "-".to_owned()
            } else {
                latency_units(design, true).to_string()
            },
            latency_units(design, false).to_string(),
            hc,
            mc,
        ]);
    }
    println!("Figure 8 — access latency of LLT designs (single request in isolation)\n");
    cli.emit(&table);
    println!(
        "\nH = line resident in stacked DRAM, M = line resident off-chip.\n\
         Units use the paper's abstraction (stacked access = 1, off-chip = 2);\n\
         cycles come from the 9-9-9-36 bank/bus model."
    );
}
