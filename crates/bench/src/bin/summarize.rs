//! One-stop dashboard: runs a benchmark through every organization and
//! prints the full picture — speedups with bars, service breakdown,
//! bandwidth, latency histogram, prediction cases.
//!
//! ```text
//! cargo run --release -p cameo-bench --bin summarize -- --bench gcc
//! ```
//!
//! With `--perf-json PATH` the binary instead reads a `BENCH_sweep.json`
//! artifact (written by any sweep binary via `--bench-json PATH`) and
//! prints its per-point throughput / wall-time table — no simulation runs.
//!
//! With `--trace-json PATH` the binary reads a `--trace-out` JSONL event
//! dump, validates every line (and the `PATH.chrome.json` sibling when
//! present), and prints the per-epoch tables — swap rate, LLP accuracy
//! and stacked service rate over simulated time.

use cameo::llp::PredictionCase;
use cameo_bench::{print_header, Cli};
use cameo_sim::experiments::{run_benchmark, OrgKind};
use cameo_sim::report::{bar_chart, ratio, Table};
use cameo_sim::RunStats;

fn latency_histogram(stats: &RunStats) -> String {
    let mut out = String::new();
    let max = stats.latency_histogram.iter().max().copied().unwrap_or(0);
    if max == 0 {
        return out;
    }
    for (k, &count) in stats.latency_histogram.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let width = (count as f64 / max as f64 * 40.0).round() as usize;
        out.push_str(&format!(
            "  {:>9}+ cyc  {} {}\n",
            1u64 << k,
            "▉".repeat(width.max(1)),
            count
        ));
    }
    out
}

/// Strips `--perf-json PATH` / `--trace-json PATH` from the argument
/// list; in those modes the artifact is tabulated and the process exits
/// without simulating.
fn artifact_modes(args: Vec<String>) -> Vec<String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--perf-json" {
            let path = it
                .next()
                .unwrap_or_else(|| panic!("--perf-json needs a value"));
            let doc = cameo_bench::perf::read_sweep_json(std::path::Path::new(&path))
                .unwrap_or_else(|e| panic!("{e}"));
            println!("Host throughput — {path}\n");
            print!("{}", cameo_bench::perf::perf_table(&doc));
            std::process::exit(0);
        }
        if arg == "--trace-json" {
            let path = it
                .next()
                .unwrap_or_else(|| panic!("--trace-json needs a value"));
            trace_json_mode(std::path::Path::new(&path));
            std::process::exit(0);
        }
        rest.push(arg);
    }
    rest
}

/// Validates a `--trace-out` JSONL dump (and its Chrome-trace sibling,
/// when present) and prints the per-epoch tables.
fn trace_json_mode(path: &std::path::Path) {
    use cameo_bench::trace_export;
    let lines = trace_export::read_trace_jsonl(path).unwrap_or_else(|e| panic!("{e}"));
    let (mut points, mut events, mut epochs) = (0u64, 0u64, 0u64);
    for line in lines.iter().skip(1) {
        match line.get("kind").and_then(|k| k.as_str()) {
            Some("point") => points += 1,
            Some("event") => events += 1,
            Some("epoch") => epochs += 1,
            other => panic!("{}: unknown record kind {other:?}", path.display()),
        }
    }
    eprintln!(
        "[trace] {}: {points} traced point(s), {events} retained event(s), {epochs} epoch row(s)",
        path.display()
    );
    let chrome = trace_export::chrome_path(path);
    if chrome.exists() {
        let text = std::fs::read_to_string(&chrome)
            .unwrap_or_else(|e| panic!("reading {}: {e}", chrome.display()));
        let doc = cameo_sim::checkpoint::Json::parse(&text)
            .unwrap_or_else(|e| panic!("parsing {}: {e}", chrome.display()));
        match doc.get("traceEvents") {
            Some(cameo_sim::checkpoint::Json::Arr(items)) => {
                eprintln!(
                    "[trace] {}: {} trace event(s)",
                    chrome.display(),
                    items.len()
                );
            }
            other => panic!(
                "{}: traceEvents missing or not an array: {other:?}",
                chrome.display()
            ),
        }
    }
    println!("Epoch breakdown — {}\n", path.display());
    print!("{}", trace_export::epoch_table(&lines));
}

fn main() {
    let cli = Cli::from_args(artifact_modes(std::env::args().skip(1).collect()));
    let bench = cli.benches[0];
    print_header("summary", &cli);
    println!(
        "== {} ({}, L3 MPKI {}, footprint {:.1} GB full-scale) ==\n",
        bench.name,
        bench.category,
        bench.mpki,
        bench.footprint.as_gib()
    );

    let kinds = [
        OrgKind::Baseline,
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::TlmDynamic,
        OrgKind::TlmFreq,
        OrgKind::cameo_default(),
        OrgKind::DoubleUse,
    ];
    let mut runs: Vec<(OrgKind, RunStats)> = Vec::new();
    for kind in kinds {
        eprintln!("[run] {}", kind.label());
        runs.push((kind, run_benchmark(&bench, kind, &cli.config)));
    }
    let baseline = runs[0].1.clone();

    // Speedup bars.
    let bars: Vec<(String, f64)> = runs
        .iter()
        .skip(1)
        .map(|(k, s)| (k.label().to_owned(), s.speedup_over(&baseline)))
        .collect();
    println!("speedup over baseline:\n{}", bar_chart(&bars, 40));

    // Detail table.
    let mut table = Table::new(vec![
        "design",
        "CPI",
        "stacked%",
        "avg lat",
        "faults",
        "stacked BW",
        "off-chip BW",
        "storage BW",
    ]);
    for (kind, s) in &runs {
        let n = s.bandwidth.normalized_to(&baseline.bandwidth);
        table.row(vec![
            kind.label().to_owned(),
            format!("{:.2}", s.cpi()),
            format!("{:.0}", s.stacked_service_rate().unwrap_or(0.0) * 100.0),
            format!("{:.0}", s.avg_read_latency().unwrap_or(0.0)),
            s.faults.to_string(),
            ratio(n.stacked),
            ratio(n.off_chip),
            ratio(n.storage),
        ]);
    }
    cli.emit(&table);

    // CAMEO internals.
    if let Some((_, cameo_run)) = runs
        .iter()
        .find(|(k, _)| matches!(k, OrgKind::Cameo { .. }))
    {
        if let Some(cases) = cameo_run.cases {
            println!("\nCAMEO prediction cases (Table III taxonomy):");
            use PredictionCase::*;
            for (label, case) in [
                (
                    "stacked, predicted stacked  (fast)",
                    StackedPredictedStacked,
                ),
                (
                    "stacked, predicted off-chip (wasted BW)",
                    StackedPredictedOffChip,
                ),
                (
                    "off-chip, predicted stacked (slow)",
                    OffChipPredictedStacked,
                ),
                (
                    "off-chip, predicted right   (fast)",
                    OffChipPredictedCorrect,
                ),
                (
                    "off-chip, predicted wrong   (slow+BW)",
                    OffChipPredictedWrong,
                ),
            ] {
                println!(
                    "  {label:<42} {:>5.1}%",
                    cases.fraction(case).unwrap_or(0.0) * 100.0
                );
            }
            println!(
                "  overall accuracy: {:.1}%",
                cases.accuracy().unwrap_or(0.0) * 100.0
            );
        }
        println!("\nCAMEO read-latency distribution:");
        print!("{}", latency_histogram(cameo_run));
    }
}
