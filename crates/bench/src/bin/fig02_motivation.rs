//! Figure 2: motivation — stacked DRAM as Cache, TLM-Static, TLM-Dynamic,
//! and the idealistic DoubleUse, relative to the no-stacked baseline.

use cameo_bench::{print_header, Cli, SpeedupGrid};
use cameo_sim::experiments::OrgKind;

fn main() {
    let cli = Cli::parse();
    print_header("Figure 2 — motivation", &cli);
    let kinds = [
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::TlmDynamic,
        OrgKind::DoubleUse,
    ];
    let grid = SpeedupGrid::collect(&kinds, &cli);
    println!("Figure 2 — speedup over baseline (stacked DRAM = 1/4 of total DRAM)\n");
    cli.emit(&grid.speedup_table());
    if !cli.csv {
        println!("\nGmean ALL:\n{}", grid.gmean_chart());
    }
    cli.emit_perf("fig02_motivation", &grid.report);
    cli.emit_trace("fig02_motivation", &grid.report);
    println!(
        "\npaper gmeans (ALL): Cache 1.50x, TLM-Static 1.33x, TLM-Dynamic 1.50x, DoubleUse 1.82x"
    );
}
