//! Figure 15: optimized page placement for TLM — TLM-Dynamic, TLM-Freq and
//! the oracular TLM-Oracle versus CAMEO.

use cameo_bench::{print_header, Cli, SpeedupGrid};
use cameo_sim::experiments::OrgKind;

fn main() {
    let cli = Cli::parse();
    print_header("Figure 15 — optimized TLM placement", &cli);
    let kinds = [
        OrgKind::TlmDynamic,
        OrgKind::TlmFreq,
        OrgKind::TlmOracle,
        OrgKind::cameo_default(),
    ];
    let grid = SpeedupGrid::collect(&kinds, &cli);
    println!("Figure 15 — speedup from optimized page placement in TLM\n");
    cli.emit(&grid.speedup_table());
    if !cli.csv {
        println!("\nGmean ALL:\n{}", grid.gmean_chart());
    }
    cli.emit_perf("fig15_placement", &grid.report);
    cli.emit_trace("fig15_placement", &grid.report);
    println!(
        "\npaper gmeans (ALL): TLM-Freq 1.61x, CAMEO 1.78x (CAMEO wins without tracking support)"
    );
}
