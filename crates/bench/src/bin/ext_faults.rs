//! Extension experiment: metadata fault rate × recovery policy.
//!
//! Sweeps seeded transient faults on the stacked-DRAM metadata path (LLT /
//! LEAD bit flips, plus optional dropped and delayed responses) against the
//! recovery policies of `cameo::recovery`: `none` (faults land unchecked),
//! `ecc` (SECDED detect+correct on metadata reads) and `full` (ECC plus
//! retry, LLT scrub and degradation latch). The headline result: with recovery
//! enabled, CAMEO at realistic flip rates completes with zero invariant
//! violations and IPC within a few percent of the fault-free run.
//!
//! Points run through the crash-isolated sweep harness, so a policy that
//! lets corruption escape (e.g. `none` under `deep-audit`) is recorded as a
//! failed point instead of killing the sweep. Pass `--checkpoint PATH` to
//! make the sweep resumable: re-invoking after a kill skips finished
//! points.
//!
//! Extra flags on top of the shared set (see `cameo_bench::Cli`):
//!
//! ```text
//! --rates A,B,C      flip rates in ppm of metadata reads (default 0,100,1000,10000)
//! --drop-ppm N       dropped-response rate in ppm (default 0)
//! --delay-ppm N      delayed-response rate in ppm (default 0)
//! --checkpoint PATH  JSONL checkpoint enabling kill-and-resume
//! ```
//!
//! Without `--bench` the sweep runs a single benchmark (mcf) — the grid is
//! rates × policies, so the full Table II suite is opt-in.

#[cfg(feature = "faults")]
fn main() {
    faulted::main();
}

#[cfg(not(feature = "faults"))]
fn main() {
    eprintln!(
        "ext_faults requires the fault-injection layer to be compiled in:\n\n    \
         cargo run --release -p cameo-bench --features faults --bin ext_faults\n"
    );
    std::process::exit(2);
}

#[cfg(feature = "faults")]
mod faulted {
    use std::path::PathBuf;
    use std::sync::{Arc, Mutex};

    use cameo::recovery::{RecoveryConfig, RecoveryStats};
    use cameo::{LltDesign, PredictorKind};
    use cameo_bench::{print_header, Cli};
    use cameo_memsim::faults::{FaultConfig, FaultStats};
    use cameo_sim::experiments::OrgKind;
    use cameo_sim::harness::{run_sweep_with, SweepOptions, SweepPoint};
    use cameo_sim::org::{CameoOrg, MemoryOrganization, OrgResult};
    use cameo_sim::report::Table;
    use cameo_sim::SystemConfig;
    use cameo_types::{Access, ByteSize, Cycle, DetHashMap, PageAddr};
    use cameo_workloads::BenchSpec;

    /// Flags this binary adds on top of the shared `Cli` set.
    struct FaultFlags {
        rates: Vec<u32>,
        drop_ppm: u32,
        delay_ppm: u32,
        checkpoint: Option<PathBuf>,
        explicit_bench: bool,
        rest: Vec<String>,
    }

    fn parse_flags() -> FaultFlags {
        let mut flags = FaultFlags {
            rates: vec![0, 100, 1_000, 10_000],
            drop_ppm: 0,
            delay_ppm: 0,
            checkpoint: None,
            explicit_bench: false,
            rest: Vec::new(),
        };
        let mut it = std::env::args().skip(1);
        let need = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
            it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--rates" => {
                    flags.rates = need(&mut it, "--rates")
                        .split(',')
                        .map(|r| r.trim().parse().expect("--rates takes ppm integers"))
                        .collect();
                }
                "--drop-ppm" => {
                    flags.drop_ppm = need(&mut it, "--drop-ppm").parse().expect("--drop-ppm");
                }
                "--delay-ppm" => {
                    flags.delay_ppm = need(&mut it, "--delay-ppm").parse().expect("--delay-ppm");
                }
                "--checkpoint" => {
                    flags.checkpoint = Some(PathBuf::from(need(&mut it, "--checkpoint")));
                }
                "--help" | "-h" => {
                    println!(
                        "flags: --rates A,B,C --drop-ppm N --delay-ppm N --checkpoint PATH\n\
                         plus the shared set: --scale N --cores N --instructions N --seed N \
                         --mlp N --bench NAME (repeatable) --jobs N --bench-json PATH \
                         --quick --csv"
                    );
                    std::process::exit(0);
                }
                _ => {
                    if arg == "--bench" {
                        flags.explicit_bench = true;
                    }
                    flags.rest.push(arg);
                }
            }
        }
        // The fault-free reference row every delta is computed against.
        if !flags.rates.contains(&0) {
            flags.rates.insert(0, 0);
        }
        flags
    }

    /// Recovery/fault counters harvested from a point's controller after
    /// its run — the harness owns and drops the organization, so the
    /// wrapper below writes them out on drop.
    struct PointReport {
        recovery: RecoveryStats,
        faults: FaultStats,
        degraded: bool,
    }

    // Shared across sweep workers: the builder closure must be `Sync`, and
    // points on different threads deposit their reports concurrently.
    type Sink = Arc<Mutex<DetHashMap<String, PointReport>>>;

    /// Locks the sink, tolerating poison: a panicking point is unwound by
    /// the harness and its partial report is still worth keeping.
    fn lock_sink(sink: &Sink) -> std::sync::MutexGuard<'_, DetHashMap<String, PointReport>> {
        match sink.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// [`CameoOrg`] plus an exit report: on drop (normal completion or
    /// panic unwind alike) the controller's fault and recovery counters are
    /// deposited in the shared sink, keyed by sweep point. Retries
    /// overwrite, so the sink holds the final attempt of each point.
    struct ReportingOrg {
        inner: CameoOrg,
        key: String,
        sink: Sink,
    }

    impl Drop for ReportingOrg {
        fn drop(&mut self) {
            let c = self.inner.controller();
            lock_sink(&self.sink).insert(
                self.key.clone(),
                PointReport {
                    recovery: *c.recovery_stats(),
                    faults: *c.stacked().fault_stats(),
                    degraded: c.degraded(),
                },
            );
        }
    }

    impl MemoryOrganization for ReportingOrg {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn access(&mut self, now: Cycle, access: &Access) -> OrgResult {
            self.inner.access(now, access)
        }
        fn visible_capacity(&self) -> ByteSize {
            self.inner.visible_capacity()
        }
        fn bandwidth(&self) -> cameo_sim::BandwidthReport {
            self.inner.bandwidth()
        }
        fn faults(&self) -> u64 {
            self.inner.faults()
        }
        fn service_counts(&self) -> (u64, u64) {
            self.inner.service_counts()
        }
        fn prediction_cases(&self) -> Option<cameo::PredictionCaseCounts> {
            self.inner.prediction_cases()
        }
        fn prefill(&mut self, page: PageAddr) {
            self.inner.prefill(page);
        }
        fn reset_stats(&mut self) {
            self.inner.reset_stats();
        }
    }

    fn point_key(bench: &str, rate: u32, policy: RecoveryConfig) -> String {
        format!("{bench}@flip{rate}@{}", policy.label())
    }

    /// Entry point of the feature-gated binary (see the module docs).
    pub fn main() {
        let flags = parse_flags();
        let cli = Cli::from_args(flags.rest.clone());
        print_header("Extension — metadata faults × recovery policy", &cli);
        // The grid is rates × policies; default to one benchmark so the
        // full suite stays opt-in via --bench.
        let benches: Vec<BenchSpec> = if flags.explicit_bench {
            cli.benches.clone()
        } else {
            vec![cameo_workloads::require("mcf").expect("mcf is in the Table II suite")]
        };
        let policies = [
            RecoveryConfig::none(),
            RecoveryConfig::ecc_only(),
            RecoveryConfig::full(),
        ];

        let mut points = Vec::new();
        let mut grid: DetHashMap<String, (u32, RecoveryConfig)> = DetHashMap::default();
        for bench in &benches {
            for &rate in &flags.rates {
                for &policy in &policies {
                    let key = point_key(bench.name, rate, policy);
                    grid.insert(key.clone(), (rate, policy));
                    points
                        .push(SweepPoint::new(bench.name, OrgKind::cameo_default()).with_key(key));
                }
            }
        }

        let sink: Sink = Sink::default();
        let build = |point: &SweepPoint, cfg: &SystemConfig| -> Box<dyn MemoryOrganization> {
            let (rate, policy) = *grid
                .get(&point.key)
                .expect("every sweep point key was entered into the grid");
            let fault_cfg = FaultConfig {
                flip_ppm: rate,
                drop_ppm: flags.drop_ppm,
                delay_ppm: flags.delay_ppm,
                delay_cycles: 200,
                outage: None,
            };
            let org = CameoOrg::new(
                cfg.stacked(),
                cfg.off_chip(),
                LltDesign::CoLocated,
                PredictorKind::Llp,
                cfg.cores,
                cfg.llp_entries,
                cfg.seed ^ 0xBEEF,
            )
            .with_fault_injection(fault_cfg, cfg.seed ^ u64::from(rate).rotate_left(17))
            .with_recovery(policy);
            Box::new(ReportingOrg {
                inner: org,
                key: point.key.clone(),
                sink: Arc::clone(&sink),
            })
        };

        let opts = SweepOptions {
            config: cli.config,
            jobs: cli.jobs,
            chunk_accesses: cli.chunk,
            ..SweepOptions::default()
        };
        let report = match run_sweep_with(&points, &opts, flags.checkpoint.as_deref(), &build) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sweep aborted: {e}");
                std::process::exit(1);
            }
        };

        let mut headers = vec!["bench".to_owned(), "flip ppm".to_owned()];
        headers.extend(policies.iter().map(|p| format!("{} CPI (dIPC)", p.label())));
        let mut table = Table::new(headers);
        for bench in &benches {
            let reference = report
                .stats_of(&point_key(bench.name, 0, RecoveryConfig::none()))
                .map(cameo_sim::RunStats::cpi);
            for &rate in &flags.rates {
                let mut row = vec![bench.name.to_owned(), format!("{rate}")];
                for &policy in &policies {
                    let cell = match report.stats_of(&point_key(bench.name, rate, policy)) {
                        Some(stats) => {
                            let cpi = stats.cpi();
                            match reference {
                                Some(base) => {
                                    format!("{cpi:.3} ({:+.1}%)", (base / cpi - 1.0) * 100.0)
                                }
                                None => format!("{cpi:.3}"),
                            }
                        }
                        None => "failed".to_owned(),
                    };
                    row.push(cell);
                }
                table.row(row);
            }
        }
        println!("Metadata faults vs. recovery policy — CPI and IPC delta vs fault-free\n");
        cli.emit(&table);

        cli.emit_perf("ext_faults", &report);

        println!("\nRecovery activity (final attempt of each freshly-run point):");
        let reports = lock_sink(&sink);
        for point in &points {
            let Some(r) = reports.get(&point.key) else {
                continue; // resumed from checkpoint: never built this run
            };
            if r.faults.total() == 0 && r.recovery.retries == 0 {
                continue;
            }
            println!(
                "  {:<28} flips {} (corrected {}, escaped {})  drops {} \
                 (recovered {}, lost {})  scrubs {}{}",
                point.key,
                r.faults.flips,
                r.recovery.ecc_corrected,
                r.recovery.flips_escaped,
                r.faults.drops,
                r.recovery.drops_recovered,
                r.recovery.drops_unrecovered,
                r.recovery.scrubs,
                if r.degraded {
                    "  [degraded to SAM]"
                } else {
                    ""
                },
            );
        }
        println!(
            "\n{} completed, {} failed, {} resumed from checkpoint.",
            report.completed(),
            report.failed(),
            report.resumed(),
        );
        if let Some(path) = &flags.checkpoint {
            println!(
                "Checkpoint at {} — re-run the same command after a kill to \
                 resume without recomputing finished points.",
                path.display()
            );
        }
    }
}
