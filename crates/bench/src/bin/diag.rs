//! Diagnostic dump: per-benchmark, per-organization service rates, CPI,
//! fault rates and bandwidth — the calibration instrument.

use cameo_bench::{print_header, Cli};
use cameo_sim::experiments::{run_benchmark, OrgKind};
use cameo_sim::report::Table;

fn main() {
    let cli = Cli::parse();
    print_header("diagnostics", &cli);
    let kinds = [
        OrgKind::Baseline,
        OrgKind::AlloyCache,
        OrgKind::TlmStatic,
        OrgKind::TlmDynamic,
        OrgKind::cameo_default(),
        OrgKind::DoubleUse,
    ];
    let mut table = Table::new(vec![
        "bench",
        "org",
        "CPI",
        "speedup",
        "reads",
        "stacked%",
        "avgLat",
        "faults",
        "f/Kread",
        "stackedMB",
        "offMB",
        "storMB",
        "acc%",
    ]);
    for bench in &cli.benches {
        let base = run_benchmark(bench, OrgKind::Baseline, &cli.config);
        for kind in kinds {
            eprintln!("[run] {} {}", bench.name, kind.label());
            let s = run_benchmark(bench, kind, &cli.config);
            table.row(vec![
                bench.name.to_owned(),
                kind.label().to_owned(),
                format!("{:.2}", s.cpi()),
                format!("{:.2}x", s.speedup_over(&base)),
                s.demand_reads.to_string(),
                format!("{:.0}", s.stacked_service_rate().unwrap_or(0.0) * 100.0),
                format!("{:.0}", s.avg_read_latency().unwrap_or(0.0)),
                s.faults.to_string(),
                format!(
                    "{:.1}",
                    s.faults as f64 * 1000.0 / s.demand_reads.max(1) as f64
                ),
                format!("{:.1}", s.bandwidth.stacked_bytes as f64 / 1e6),
                format!("{:.1}", s.bandwidth.off_chip_bytes as f64 / 1e6),
                format!("{:.1}", s.bandwidth.storage_bytes as f64 / 1e6),
                s.cases
                    .and_then(|c| c.accuracy())
                    .map_or("-".into(), |a| format!("{:.0}", a * 100.0)),
            ]);
        }
    }
    cli.emit(&table);
}
