//! Figure 12: speedup of CAMEO (Co-Located LLT) with no prediction (SAM),
//! the Line Location Predictor, and a perfect predictor.

use cameo::{LltDesign, PredictorKind};
use cameo_bench::{print_header, Cli, SpeedupGrid};
use cameo_sim::experiments::OrgKind;

fn main() {
    let cli = Cli::parse();
    print_header("Figure 12 — location prediction", &cli);
    let kinds = [
        OrgKind::Cameo {
            llt: LltDesign::CoLocated,
            predictor: PredictorKind::SerialAccess,
        },
        OrgKind::Cameo {
            llt: LltDesign::CoLocated,
            predictor: PredictorKind::Llp,
        },
        OrgKind::Cameo {
            llt: LltDesign::CoLocated,
            predictor: PredictorKind::Perfect,
        },
    ];
    let grid = SpeedupGrid::collect(&kinds, &cli);
    println!("Figure 12 — speedup with no / LLP / perfect location prediction\n");
    cli.emit(&grid.speedup_table());
    if !cli.csv {
        println!("\nGmean ALL:\n{}", grid.gmean_chart());
    }
    cli.emit_perf("fig12_llp", &grid.report);
    cli.emit_trace("fig12_llp", &grid.report);
    println!("\npaper gmeans (ALL): SAM 1.74x, LLP 1.78x, Perfect 1.80x");
}
