//! Table I: the baseline system configuration, echoed from the live model
//! (full scale and at the selected simulation scale).

use cameo_bench::Cli;
use cameo_memsim::DramConfig;
use cameo_sim::report::Table;
use cameo_sim::SystemConfig;

fn main() {
    let cli = Cli::parse();
    let cfg = &cli.config;
    let stacked = DramConfig::stacked(cfg.stacked());
    let off = DramConfig::off_chip(cfg.off_chip());

    let mut table = Table::new(vec!["parameter", "paper (Table I)", "this run"]);
    let mut row = |a: &str, b: String, c: String| table.row(vec![a.to_owned(), b, c]);
    row("cores", "32".into(), cfg.cores.to_string());
    row(
        "core width",
        "2-wide OoO".into(),
        format!("MLP={} analytic", cfg.mlp),
    );
    row(
        "frequency",
        "3.2 GHz".into(),
        "3.2 GHz (cycle units)".into(),
    );
    row(
        "L3 cache",
        "32MB, 16-way, 24 cycles".into(),
        format!(
            "{} (scaled 1/{})",
            cameo_cachesim::L3Config::scaled(cfg.scale).capacity,
            cfg.scale
        ),
    );
    row(
        "stacked DRAM",
        format!(
            "{} / 16 ch / 16 banks / 128-bit",
            SystemConfig::FULL_STACKED
        ),
        format!(
            "{} / {} ch / {} banks / {}-bit",
            cfg.stacked(),
            stacked.channels,
            stacked.banks_per_channel,
            stacked.bytes_per_beat * 8
        ),
    );
    row(
        "off-chip DRAM",
        format!("{} / 8 ch / 8 banks / 64-bit", SystemConfig::FULL_OFF_CHIP),
        format!(
            "{} / {} ch / {} banks / {}-bit",
            cfg.off_chip(),
            off.channels,
            off.banks_per_channel,
            off.bytes_per_beat * 8
        ),
    );
    row(
        "DRAM timing",
        "tCAS-tRCD-tRP-tRAS 9-9-9-36 (bus cycles)".into(),
        format!(
            "9-9-9-36; CAS = {} / {} CPU cycles (stacked / off-chip)",
            stacked.timings.cas_cpu(),
            off.timings.cas_cpu()
        ),
    );
    row(
        "page-fault latency",
        "32 us (100K cycles), SSD".into(),
        format!("{} cycles", cameo_vmem::PAGE_FAULT_CYCLES),
    );
    println!("Table I — baseline system configuration\n");
    cli.emit(&table);
}
