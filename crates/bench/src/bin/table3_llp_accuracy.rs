//! Table III: accuracy taxonomy of the Line Location Predictor — the five
//! prediction cases for SAM, LLP and a perfect predictor.

use cameo::llp::PredictionCase;
use cameo::PredictionCaseCounts;
use cameo::{LltDesign, PredictorKind};
use cameo_bench::{print_header, Cli};
use cameo_sim::experiments::{run_benchmark, OrgKind};
use cameo_sim::report::Table;

fn aggregate(cli: &Cli, predictor: PredictorKind) -> PredictionCaseCounts {
    let mut total = PredictionCaseCounts::default();
    for bench in &cli.benches {
        eprintln!("[run] {} {:?}", bench.name, predictor);
        let stats = run_benchmark(
            bench,
            OrgKind::Cameo {
                llt: LltDesign::CoLocated,
                predictor,
            },
            &cli.config,
        );
        if let Some(cases) = stats.cases {
            total.merge(&cases);
        }
    }
    total
}

fn pct(counts: &PredictionCaseCounts, case: PredictionCase) -> String {
    match counts.fraction(case) {
        Some(f) => format!("{:.1}", f * 100.0),
        None => "-".to_owned(),
    }
}

fn main() {
    let cli = Cli::parse();
    print_header("Table III — LLP accuracy", &cli);
    let sam = aggregate(&cli, PredictorKind::SerialAccess);
    let llp = aggregate(&cli, PredictorKind::Llp);
    let perfect = aggregate(&cli, PredictorKind::Perfect);

    let mut table = Table::new(vec!["serviced by", "prediction", "SAM", "LLP", "Perfect"]);
    use PredictionCase::*;
    let rows = [
        ("Stacked", "Stacked", StackedPredictedStacked),
        ("Stacked", "Off-chip", StackedPredictedOffChip),
        ("Off-chip", "Stacked", OffChipPredictedStacked),
        ("Off-chip", "Off-chip (OK)", OffChipPredictedCorrect),
        ("Off-chip", "Off-chip (Wrong)", OffChipPredictedWrong),
    ];
    for (serviced, prediction, case) in rows {
        table.row(vec![
            serviced.to_owned(),
            prediction.to_owned(),
            pct(&sam, case),
            pct(&llp, case),
            pct(&perfect, case),
        ]);
    }
    let acc = |c: &PredictionCaseCounts| {
        c.accuracy()
            .map_or("-".to_owned(), |a| format!("{:.1}", a * 100.0))
    };
    table.row(vec![
        "Overall Accuracy".to_owned(),
        String::new(),
        acc(&sam),
        acc(&llp),
        acc(&perfect),
    ]);
    println!("Table III — accuracy of the Line Location Predictor (%)\n");
    cli.emit(&table);
    println!("\npaper: SAM 70.3 / LLP 91.7 / Perfect 100 overall accuracy");
}
