//! The sweep daemon: a persistent service that accepts sweep jobs over a
//! local Unix socket, supervises them (deadlines, retries with seeded
//! backoff, circuit-breaking, graceful degradation), and never recomputes
//! a result its content-addressed cache already holds.
//!
//! ```text
//! cargo run -p cameo-bench --bin sweepd -- --socket sweepd.sock --data-dir sweepd-data
//! ```
//!
//! The daemon runs until `sweepctl drain` tells it to stop; in-flight
//! points finish, the journal is flushed, and queued jobs resume on the
//! next start. `kill -9` at any instant is recoverable: restart on the
//! same `--data-dir` and interrupted jobs resume from their checkpoints.

use std::path::PathBuf;

use cameo_sweepd::daemon::{run, DaemonOptions};
use cameo_sweepd::supervise::SupervisorOptions;

fn main() {
    let mut opts = DaemonOptions {
        socket: PathBuf::from("sweepd.sock"),
        data_dir: PathBuf::from("sweepd-data"),
        git_rev: "unknown".into(),
        supervisor: SupervisorOptions::default(),
    };
    let mut jobs = 0usize; // 0 = auto
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => opts.socket = PathBuf::from(need(&mut it, "--socket")),
            "--data-dir" => opts.data_dir = PathBuf::from(need(&mut it, "--data-dir")),
            "--git-rev" => opts.git_rev = need(&mut it, "--git-rev"),
            "--jobs" => jobs = need(&mut it, "--jobs").parse().expect("--jobs"),
            "--batch" => {
                opts.supervisor.batch_size = need(&mut it, "--batch").parse().expect("--batch");
            }
            "--point-delay-ms" => {
                opts.supervisor.point_delay_ms = need(&mut it, "--point-delay-ms")
                    .parse()
                    .expect("--point-delay-ms");
            }
            "--help" | "-h" => {
                println!(
                    "usage: sweepd [--socket PATH] [--data-dir PATH] [--git-rev REV] \
                     [--jobs N] [--batch N] [--point-delay-ms MS]"
                );
                return;
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    opts.supervisor.jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    } else {
        jobs
    };
    if let Err(e) = run(&opts) {
        eprintln!("sweepd: {e}");
        std::process::exit(1);
    }
}
