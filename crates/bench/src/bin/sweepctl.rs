//! Client for the sweep daemon: submit jobs, watch progress, fetch
//! reports, drain the daemon for a graceful shutdown.
//!
//! ```text
//! sweepctl [--socket PATH] health
//! sweepctl [--socket PATH] submit --bench astar --org Baseline --org CAMEO [--wait] [...]
//! sweepctl [--socket PATH] status [JOB]
//! sweepctl [--socket PATH] report JOB [--json]
//! sweepctl [--socket PATH] drain
//! ```
//!
//! Exit codes: `0` success (a `submit --wait` whose job finished `done`),
//! `1` transport/usage error, `3` the job degraded (some points
//! quarantined), `4` the job failed outright.

use std::path::PathBuf;

use cameo_sim::checkpoint::PointRecord;
use cameo_sweepd::client::Client;
use cameo_sweepd::protocol::{JobProgress, JobSpec, Request, Response};

fn main() {
    let mut socket = PathBuf::from("sweepd.sock");
    let mut command: Option<String> = None;
    let mut positional: Option<String> = None;
    let mut spec = JobSpec::default();
    let mut wait = false;
    let mut json = false;

    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = PathBuf::from(need(&mut it, "--socket")),
            "--name" => spec.name = need(&mut it, "--name"),
            "--bench" => spec.benches.push(need(&mut it, "--bench")),
            "--org" => spec.orgs.push(need(&mut it, "--org")),
            "--scale" => spec.scale = parse(&need(&mut it, "--scale"), "--scale"),
            "--cores" => spec.cores = parse(&need(&mut it, "--cores"), "--cores"),
            "--instructions" => {
                spec.instructions = parse(&need(&mut it, "--instructions"), "--instructions");
            }
            "--seed" => spec.seed = parse(&need(&mut it, "--seed"), "--seed"),
            "--rounds" => spec.max_rounds = parse(&need(&mut it, "--rounds"), "--rounds"),
            "--backoff-ms" => {
                spec.backoff_ms = parse(&need(&mut it, "--backoff-ms"), "--backoff-ms");
            }
            "--deadline-ms" => {
                spec.deadline_ms = Some(parse(&need(&mut it, "--deadline-ms"), "--deadline-ms"));
            }
            "--watchdog-cycles" => {
                spec.watchdog_cycles = Some(parse(
                    &need(&mut it, "--watchdog-cycles"),
                    "--watchdog-cycles",
                ));
            }
            "--breaker" => spec.breaker_limit = parse(&need(&mut it, "--breaker"), "--breaker"),
            "--wait" => wait = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: sweepctl [--socket PATH] <health|submit|status|report|drain> \
                     [JOB] [--bench B]... [--org O]... [--scale N] [--cores N] \
                     [--instructions N] [--seed N] [--rounds N] [--backoff-ms N] \
                     [--deadline-ms N] [--watchdog-cycles N] [--breaker N] [--wait] [--json]"
                );
                return;
            }
            other if command.is_none() => command = Some(other.to_owned()),
            other if positional.is_none() => positional = Some(other.to_owned()),
            other => die(&format!("unexpected argument {other}")),
        }
    }

    let client = Client::new(socket);
    let command = command.unwrap_or_else(|| die("missing command (try --help)"));
    match command.as_str() {
        "health" => {
            let response = ask(&client, &Request::Health);
            if json {
                println!("{}", response.render());
            } else if let Response::Health {
                state,
                queued,
                running,
                finished,
                git_rev,
            } = response
            {
                println!(
                    "daemon {state} (rev {git_rev}): {queued} queued, \
                     {running} running, {finished} finished"
                );
            }
        }
        "submit" => {
            let response = ask(&client, &Request::Submit(Box::new(spec)));
            let Response::Accepted { job, cached } = response else {
                die(&format!("submit rejected: {}", render_err(&response)));
            };
            println!("job {job} {}", if cached { "cached" } else { "accepted" });
            if wait && !cached {
                let state = wait_terminal(&client, &job);
                println!("job {job} {state}");
                match state.as_str() {
                    "done" => {}
                    "degraded" => std::process::exit(3),
                    _ => std::process::exit(4),
                }
            }
        }
        "status" => {
            let response = ask(
                &client,
                &Request::Status {
                    job: positional.clone(),
                },
            );
            if json {
                println!("{}", response.render());
            } else if let Response::Status(jobs) = &response {
                for progress in jobs {
                    print_progress(progress);
                }
            } else {
                die(&render_err(&response));
            }
        }
        "report" => {
            let job = positional.unwrap_or_else(|| die("report needs a JOB id"));
            let response = ask(&client, &Request::Report { job });
            if json {
                println!("{}", response.render());
            } else if let Response::Report {
                job,
                state,
                rounds,
                quarantined,
                points,
            } = &response
            {
                println!("job {job}: {state} after {rounds} round(s)");
                for (key, reason) in quarantined {
                    println!("  quarantined {key}: {reason}");
                }
                for (key, record) in points {
                    match record {
                        PointRecord::Done { attempts, .. } => {
                            println!("  done {key} (attempts {attempts})");
                        }
                        PointRecord::Failed { attempts, error } => {
                            println!("  failed {key} (attempts {attempts}): {error}");
                        }
                    }
                }
            } else {
                die(&render_err(&response));
            }
        }
        "drain" => {
            let response = ask(&client, &Request::Drain);
            if matches!(response, Response::Draining) {
                println!("daemon draining");
            } else {
                die(&render_err(&response));
            }
        }
        other => die(&format!("unknown command {other} (try --help)")),
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: cannot parse {value:?}")))
}

fn ask(client: &Client, request: &Request) -> Response {
    client
        .request(request)
        .unwrap_or_else(|e| die(&e.to_string()))
}

fn render_err(response: &Response) -> String {
    match response {
        Response::Error { message } => message.clone(),
        Response::Draining => "daemon is draining".into(),
        other => format!("unexpected response: {}", other.render()),
    }
}

fn print_progress(progress: &JobProgress) {
    let JobProgress {
        job,
        name,
        state,
        total,
        done,
        failed,
        quarantined,
        round,
        epochs,
        swaps,
        predicts,
        predicts_correct,
        stacked_serviced,
        off_chip_serviced,
        ..
    } = progress;
    println!(
        "job {job} [{name}] {state}: {done}/{total} done, {failed} failing, \
         {quarantined} quarantined (round {round})"
    );
    if *epochs > 0 {
        println!(
            "  trace: {epochs} epochs, {swaps} swaps, {predicts_correct}/{predicts} \
             predictions, {stacked_serviced} stacked / {off_chip_serviced} off-chip"
        );
    }
}

/// Polls `status` until the job reaches a terminal state (bounded at
/// roughly an hour of polling; job deadlines should fire long before).
fn wait_terminal(client: &Client, job: &str) -> String {
    for _ in 0..7200 {
        if let Response::Status(jobs) = ask(
            client,
            &Request::Status {
                job: Some(job.to_owned()),
            },
        ) {
            if let Some(progress) = jobs.first() {
                if matches!(progress.state.as_str(), "done" | "degraded" | "failed") {
                    return progress.state.clone();
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
    die("timed out waiting for the job to finish")
}

fn die(message: &str) -> ! {
    eprintln!("sweepctl: {message}");
    std::process::exit(1);
}
