//! Table II: workload characteristics — verifies the synthetic generators
//! hit each benchmark's configured MPKI / footprint / spatial locality.

use cameo_bench::{print_header, Cli};
use cameo_sim::report::Table;
use cameo_sim::runner::trace_configs;
use cameo_sim::SystemConfig;
use cameo_types::{DetHashMap, DetHashSet};
use cameo_workloads::TraceGenerator;

fn main() {
    let cli = Cli::parse();
    print_header("Table II — workload characteristics", &cli);
    let events = 100_000u64;

    let mut table = Table::new(vec![
        "bench",
        "category",
        "L3 MPKI (paper)",
        "MPKI (observed)",
        "footprint (paper)",
        "footprint (scaled)",
        "lines/page used",
    ]);
    for bench in &cli.benches {
        // One rate-mode copy is representative (copies are iid).
        let tc = trace_configs(bench, &cli.config)[0];
        let mut generator = TraceGenerator::new(*bench, tc);
        let mut lines_by_page: DetHashMap<u64, DetHashSet<usize>> = DetHashMap::default();
        for _ in 0..events {
            let e = generator.next_event();
            lines_by_page
                .entry(e.line.page().raw())
                .or_default()
                .insert(e.line.offset_in_page());
        }
        let revisited: Vec<usize> = lines_by_page
            .values()
            .filter(|s| s.len() > 1)
            .map(DetHashSet::len)
            .collect();
        let density = if revisited.is_empty() {
            f64::NAN
        } else {
            revisited.iter().sum::<usize>() as f64 / revisited.len() as f64
        };
        table.row(vec![
            bench.name.to_owned(),
            bench.category.to_string(),
            format!("{:.1}", bench.mpki),
            format!("{:.1}", generator.observed_mpki().unwrap_or(f64::NAN)),
            format!("{:.1}GB", bench.footprint.as_gib()),
            format!(
                "{:.1}MiB",
                bench.scaled_footprint(cli.config.scale).as_mib()
            ),
            format!("{density:.0}/64"),
        ]);
    }
    cli.emit(&table);
    println!(
        "\nclassification rule: Capacity-Limited iff footprint > {} baseline memory",
        SystemConfig::FULL_OFF_CHIP
    );
}
