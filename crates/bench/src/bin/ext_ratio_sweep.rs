//! Extension experiment: stacked-DRAM fraction sweep.
//!
//! The paper's introduction argues stacked DRAM will grow to "a quarter or
//! even half of the overall capacity" and evaluates the quarter point
//! (congruence ratio 4). This sweep holds total memory constant and varies
//! the stacked share — ratio 2 (half), 4 (quarter, the paper's point) and
//! 8 (eighth) — showing how CAMEO's advantage moves with the split.
//!
//! Every (bench, ratio, organization) cell is an independent sweep point
//! run through the crash-isolated harness, so the grid parallelizes across
//! `--jobs` workers with results identical to a serial run.

use cameo::{LltDesign, PredictorKind};
use cameo_bench::{print_header, Cli};
use cameo_sim::experiments::OrgKind;
use cameo_sim::harness::{run_sweep_with, SweepOptions, SweepPoint};
use cameo_sim::org::{AlloyCacheOrg, BaselineOrg, CameoOrg, MemoryOrganization};
use cameo_sim::report::Table;
use cameo_sim::{RunStats, SystemConfig};
use cameo_types::{ByteSize, DetHashMap};

/// The three columns of each ratio: the split's own baseline (off-chip
/// share alone), Alloy-style cache, and CAMEO.
#[derive(Clone, Copy)]
enum Variant {
    Base,
    Cache,
    Cameo,
}

const VARIANTS: [(&str, Variant); 3] = [
    ("base", Variant::Base),
    ("cache", Variant::Cache),
    ("cameo", Variant::Cameo),
];

fn main() {
    let cli = Cli::parse();
    print_header("Extension — stacked fraction sweep", &cli);
    let total = cli.config.total_memory();
    let ratios = [2u64, 4, 8];

    let mut points = Vec::new();
    let mut grid: DetHashMap<String, (u64, Variant)> = DetHashMap::default();
    for bench in &cli.benches {
        for ratio in ratios {
            for (tag, variant) in VARIANTS {
                let key = format!("{}@r{ratio}::{tag}", bench.name);
                grid.insert(key.clone(), (ratio, variant));
                // The org kind is a placeholder: the custom builder below
                // decides the organization from the grid entry.
                points.push(SweepPoint::new(bench.name, OrgKind::Baseline).with_key(key));
            }
        }
    }
    eprintln!(
        "[sweep] {} points ({} benches x {} ratios x {} orgs) across {} worker(s)",
        points.len(),
        cli.benches.len(),
        ratios.len(),
        VARIANTS.len(),
        cli.jobs.max(1),
    );

    let build = |point: &SweepPoint, cfg: &SystemConfig| -> Box<dyn MemoryOrganization> {
        let (ratio, variant) = *grid
            .get(&point.key)
            .expect("every sweep point key was entered into the grid");
        let stacked = ByteSize::from_bytes(total.bytes() / ratio);
        let off_chip = total - stacked;
        match variant {
            Variant::Base => Box::new(BaselineOrg::new(off_chip, cfg.seed ^ 0xBEEF)),
            Variant::Cache => Box::new(AlloyCacheOrg::new(
                stacked,
                off_chip,
                cfg.cores,
                cfg.seed ^ 0xBEEF,
            )),
            Variant::Cameo => Box::new(CameoOrg::new(
                stacked,
                off_chip,
                LltDesign::CoLocated,
                PredictorKind::Llp,
                cfg.cores,
                cfg.llp_entries,
                cfg.seed ^ 0xBEEF,
            )),
        }
    };

    let opts = SweepOptions {
        config: cli.config,
        max_attempts: 1,
        jobs: cli.jobs,
        chunk_accesses: cli.chunk,
        ..SweepOptions::default()
    };
    let report = match run_sweep_with(&points, &opts, None, &build) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep aborted: {e}");
            std::process::exit(1);
        }
    };
    let stats_of = |bench: &str, ratio: u64, tag: &str| -> &RunStats {
        report
            .stats_of(&format!("{bench}@r{ratio}::{tag}"))
            .unwrap_or_else(|| panic!("design point {bench}@r{ratio}::{tag} failed"))
    };

    let mut headers = vec!["bench".to_owned()];
    for r in ratios {
        headers.push(format!("cache 1/{r}"));
        headers.push(format!("CAMEO 1/{r}"));
    }
    let mut table = Table::new(headers);
    for bench in &cli.benches {
        let mut row = vec![bench.name.to_owned()];
        for ratio in ratios {
            let baseline = stats_of(bench.name, ratio, "base");
            let cache = stats_of(bench.name, ratio, "cache");
            let cameo_stats = stats_of(bench.name, ratio, "cameo");
            row.push(format!("{:.2}x", cache.speedup_over(baseline)));
            row.push(format!("{:.2}x", cameo_stats.speedup_over(baseline)));
        }
        table.row(row);
    }
    println!(
        "Stacked fraction sweep — total memory fixed at {total}, speedups vs a\n\
         baseline with only that split's off-chip share\n"
    );
    cli.emit(&table);
    cli.emit_perf("ext_ratio_sweep", &report);
    println!(
        "\nAs the stacked share grows, a cache forfeits ever more OS-visible\n\
         capacity; CAMEO's advantage widens — the paper's core motivation."
    );
}
