//! Extension experiment: stacked-DRAM fraction sweep.
//!
//! The paper's introduction argues stacked DRAM will grow to "a quarter or
//! even half of the overall capacity" and evaluates the quarter point
//! (congruence ratio 4). This sweep holds total memory constant and varies
//! the stacked share — ratio 2 (half), 4 (quarter, the paper's point) and
//! 8 (eighth) — showing how CAMEO's advantage moves with the split.

use cameo::{LltDesign, PredictorKind};
use cameo_bench::{print_header, Cli};
use cameo_sim::org::{AlloyCacheOrg, BaselineOrg, CameoOrg, MemoryOrganization};
use cameo_sim::report::Table;
use cameo_sim::runner::Runner;
use cameo_types::ByteSize;

fn main() {
    let cli = Cli::parse();
    print_header("Extension — stacked fraction sweep", &cli);
    let cfg = &cli.config;
    let total = cfg.total_memory();
    let ratios = [2u64, 4, 8];

    let mut headers = vec!["bench".to_owned()];
    for r in ratios {
        headers.push(format!("cache 1/{r}"));
        headers.push(format!("CAMEO 1/{r}"));
    }
    let mut table = Table::new(headers);

    for bench in &cli.benches {
        let mut row = vec![bench.name.to_owned()];
        for ratio in ratios {
            eprintln!("[run] {} ratio 1/{}", bench.name, ratio);
            let stacked = ByteSize::from_bytes(total.bytes() / ratio);
            let off_chip = total - stacked;
            // Baseline for this split: the off-chip share alone.
            let mut base = BaselineOrg::new(off_chip, cfg.seed ^ 0xBEEF);
            let baseline = Runner::new(*bench, cfg)
                .expect("CLI configuration was validated at parse time")
                .run(&mut base);

            let mut alloy: Box<dyn MemoryOrganization> = Box::new(AlloyCacheOrg::new(
                stacked,
                off_chip,
                cfg.cores,
                cfg.seed ^ 0xBEEF,
            ));
            let cache = Runner::new(*bench, cfg)
                .expect("CLI configuration was validated at parse time")
                .run(alloy.as_mut());

            let mut cameo_org = CameoOrg::new(
                stacked,
                off_chip,
                LltDesign::CoLocated,
                PredictorKind::Llp,
                cfg.cores,
                cfg.llp_entries,
                cfg.seed ^ 0xBEEF,
            );
            let cameo_stats = Runner::new(*bench, cfg)
                .expect("CLI configuration was validated at parse time")
                .run(&mut cameo_org);

            row.push(format!("{:.2}x", cache.speedup_over(&baseline)));
            row.push(format!("{:.2}x", cameo_stats.speedup_over(&baseline)));
        }
        table.row(row);
    }
    println!(
        "Stacked fraction sweep — total memory fixed at {total}, speedups vs a\n\
         baseline with only that split's off-chip share\n"
    );
    cli.emit(&table);
    println!(
        "\nAs the stacked share grows, a cache forfeits ever more OS-visible\n\
         capacity; CAMEO's advantage widens — the paper's core motivation."
    );
}
