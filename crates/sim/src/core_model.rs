//! The analytic core timing model: fixed base IPC plus memory stalls under
//! bounded memory-level parallelism.

use std::collections::VecDeque;

use cameo_types::Cycle;

/// Timeline of one core.
///
/// The core retires instructions at `ipc` until it issues a memory request;
/// up to `mlp` read requests may be outstanding concurrently (modeling the
/// out-of-order window), after which the core stalls until the oldest
/// completes. Writes are posted and never stall the core; page faults stall
/// it completely (the OS runs).
///
/// # Examples
///
/// ```
/// use cameo_sim::CoreTimeline;
/// use cameo_types::Cycle;
///
/// let mut core = CoreTimeline::new(1.0, 2);
/// core.advance(100);
/// let t = core.issue();
/// assert_eq!(t, Cycle::new(100));
/// core.complete_read(t + Cycle::new(50));
/// ```
#[derive(Clone, Debug)]
pub struct CoreTimeline {
    time: Cycle,
    ipc: f64,
    mlp: usize,
    outstanding: VecDeque<Cycle>,
    instructions: u64,
    stall_cycles: u64,
}

impl CoreTimeline {
    /// Creates a core at cycle zero.
    ///
    /// # Panics
    ///
    /// Panics if `ipc <= 0` or `mlp == 0`.
    pub fn new(ipc: f64, mlp: usize) -> Self {
        assert!(ipc > 0.0, "IPC must be positive");
        assert!(mlp > 0, "MLP must be positive");
        Self {
            time: Cycle::ZERO,
            ipc,
            mlp,
            outstanding: VecDeque::with_capacity(mlp),
            instructions: 0,
            stall_cycles: 0,
        }
    }

    /// Current core time.
    #[inline]
    pub fn time(&self) -> Cycle {
        self.time
    }

    /// Instructions retired so far.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycles spent stalled waiting on memory.
    #[inline]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Retires `instructions` at the base IPC.
    pub fn advance(&mut self, instructions: u64) {
        self.instructions += instructions;
        self.time += Cycle::new((instructions as f64 / self.ipc).ceil() as u64);
    }

    /// Predicts when a request following `gap_instructions` more
    /// instructions would issue, accounting for an MLP-window stall —
    /// without changing any state. The runner uses this as its global
    /// event-ordering key so that device accesses are generated in
    /// nondecreasing time order.
    pub fn projected_issue(&self, gap_instructions: u64) -> Cycle {
        let t = self.time + Cycle::new((gap_instructions as f64 / self.ipc).ceil() as u64);
        match self.outstanding.front() {
            Some(&oldest) if self.outstanding.len() >= self.mlp => t.later(oldest),
            _ => t,
        }
    }

    /// Returns the cycle at which the next memory request can issue,
    /// stalling the core first if the MLP window is full.
    pub fn issue(&mut self) -> Cycle {
        if self.outstanding.len() >= self.mlp {
            if let Some(oldest) = self.outstanding.pop_front() {
                if oldest > self.time {
                    self.stall_cycles += (oldest - self.time).raw();
                    self.time = oldest;
                }
            }
        }
        self.time
    }

    /// Records an outstanding demand read completing at `completion`.
    pub fn complete_read(&mut self, completion: Cycle) {
        self.outstanding.push_back(completion);
    }

    /// Stalls the core completely until `until` (page-fault servicing).
    pub fn block_until(&mut self, until: Cycle) {
        if until > self.time {
            self.stall_cycles += (until - self.time).raw();
            self.time = until;
        }
        // The OS ran; all overlapped requests have long completed.
        self.outstanding.clear();
    }

    /// Drains outstanding requests, returning the cycle the core finally
    /// goes idle. Call at end of simulation.
    pub fn drain(&mut self) -> Cycle {
        while let Some(c) = self.outstanding.pop_front() {
            if c > self.time {
                self.time = c;
            }
        }
        self.time
    }

    /// Resets time and counters (used when the measurement region starts
    /// after warmup): the core restarts at cycle zero with an empty window.
    pub fn reset(&mut self) {
        self.time = Cycle::ZERO;
        self.outstanding.clear();
        self.instructions = 0;
        self.stall_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_by_ipc() {
        let mut c = CoreTimeline::new(2.0, 4);
        c.advance(100);
        assert_eq!(c.time(), Cycle::new(50));
        assert_eq!(c.instructions(), 100);
    }

    #[test]
    fn mlp_window_stalls_when_full() {
        let mut c = CoreTimeline::new(1.0, 2);
        let t0 = c.issue();
        c.complete_read(t0 + Cycle::new(100));
        let t1 = c.issue();
        c.complete_read(t1 + Cycle::new(100));
        // Third issue must wait for the first completion.
        let t2 = c.issue();
        assert_eq!(t2, Cycle::new(100));
        assert_eq!(c.stall_cycles(), 100);
    }

    #[test]
    fn no_stall_when_window_free() {
        let mut c = CoreTimeline::new(1.0, 4);
        c.advance(10);
        let t = c.issue();
        assert_eq!(t, Cycle::new(10));
        assert_eq!(c.stall_cycles(), 0);
    }

    #[test]
    fn block_until_clears_window() {
        let mut c = CoreTimeline::new(1.0, 2);
        c.complete_read(Cycle::new(1_000_000));
        c.block_until(Cycle::new(100_000));
        assert_eq!(c.time(), Cycle::new(100_000));
        // Window cleared: next issue does not wait on the old read.
        assert_eq!(c.issue(), Cycle::new(100_000));
    }

    #[test]
    fn drain_waits_for_laggards() {
        let mut c = CoreTimeline::new(1.0, 4);
        c.complete_read(Cycle::new(500));
        c.complete_read(Cycle::new(300));
        assert_eq!(c.drain(), Cycle::new(500));
    }

    #[test]
    fn projected_issue_matches_actual_issue() {
        let mut c = CoreTimeline::new(2.0, 2);
        // Window empty: projection is time + gap/ipc.
        assert_eq!(c.projected_issue(100), Cycle::new(50));
        // Fill the window with slow completions.
        let t0 = c.issue();
        c.complete_read(t0 + Cycle::new(1000));
        let t1 = c.issue();
        c.complete_read(t1 + Cycle::new(2000));
        // Projection must account for the oldest outstanding read.
        let projected = c.projected_issue(10);
        c.advance(10);
        let actual = c.issue();
        assert_eq!(projected, actual);
        assert_eq!(actual, Cycle::new(1000));
    }

    #[test]
    fn projected_issue_is_pure() {
        let mut c = CoreTimeline::new(1.0, 4);
        c.advance(42);
        let before = c.time();
        let _ = c.projected_issue(7);
        let _ = c.projected_issue(7);
        assert_eq!(c.time(), before);
        assert_eq!(c.instructions(), 42);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = CoreTimeline::new(1.0, 2);
        c.advance(100);
        c.complete_read(Cycle::new(1000));
        c.reset();
        assert_eq!(c.time(), Cycle::ZERO);
        assert_eq!(c.instructions(), 0);
        assert_eq!(c.issue(), Cycle::ZERO);
    }
}
