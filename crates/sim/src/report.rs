//! Plain-text and CSV table rendering for the bench binaries.

use std::fmt;

/// A simple column-aligned text table (also serializable as CSV), used by
/// every figure/table binary so outputs are uniform and diffable.
///
/// # Examples
///
/// ```
/// use cameo_sim::report::Table;
///
/// let mut t = Table::new(vec!["bench", "speedup"]);
/// t.row(vec!["mcf".into(), "1.74".into()]);
/// let text = t.to_string();
/// assert!(text.contains("mcf"));
/// assert_eq!(t.to_csv(), "bench,speedup\nmcf,1.74\n");
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Renders a horizontal ASCII bar chart — the closest a terminal gets to
/// the paper's figures. Bars scale to the largest value; each row shows
/// `label  ███████ value`.
///
/// # Examples
///
/// ```
/// use cameo_sim::report::bar_chart;
///
/// let chart = bar_chart(&[("CAMEO".into(), 1.94), ("Cache".into(), 1.55)], 20);
/// assert!(chart.contains("CAMEO"));
/// assert!(chart.lines().count() == 2);
/// ```
pub fn bar_chart(rows: &[(String, f64)], max_width: usize) -> String {
    let Some(max) = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.max(v))))
    else {
        return String::new();
    };
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = if max > 0.0 {
            ((value / max) * max_width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_width$}  {}{} {value:.2}x\n",
            "█".repeat(filled),
            " ".repeat(max_width - filled.min(max_width)),
        ));
    }
    out
}

/// Formats a speedup multiplier as the paper's "% improvement" notation.
pub fn percent_improvement(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

/// Formats an optional ratio like Table IV ("1.93x", or "n/a").
pub fn ratio(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.2}x"),
        None => "n/a".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_rendering() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("xxxxxxxx"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn helpers() {
        assert_eq!(percent_improvement(1.78), "+78.0%");
        assert_eq!(percent_improvement(0.9), "-10.0%");
        assert_eq!(ratio(Some(1.934)), "1.93x");
        assert_eq!(ratio(None), "n/a");
    }

    #[test]
    fn bar_chart_edges() {
        assert_eq!(bar_chart(&[], 10), "");
        let zero = bar_chart(&[("x".into(), 0.0)], 10);
        assert!(zero.contains("0.00x"));
        let chart = bar_chart(&[("a".into(), 1.0), ("bbbb".into(), 2.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        // Labels are padded to the same width, bars scale to the max.
        assert!(lines[0].starts_with("a   "));
        assert!(lines[1].contains(&"█".repeat(10)));
    }

    #[test]
    fn table_len_and_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
