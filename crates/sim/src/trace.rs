//! Epoch aggregation of [`TraceEvent`]s and the armed recording sink.
//!
//! The tracing subsystem has two halves: the typed events and the
//! zero-overhead [`TraceSink`] trait live in `cameo-types` (so every
//! simulation crate can emit without depending on this one), while the
//! *armed* machinery lives here — [`SharedSink`] records events behind an
//! `Arc<Mutex<_>>` so a cloned handle can stay with the caller while the
//! organization it traces is boxed into `dyn MemoryOrganization`, and
//! [`EpochSeries`] folds the stream into per-epoch counters (swap rate,
//! LLP accuracy, stacked service share over time).
//!
//! # Examples
//!
//! ```
//! use cameo_sim::trace::{SharedSink, TraceOptions};
//! use cameo_types::{Cycle, TraceEvent, TraceSink};
//!
//! let mut sink = SharedSink::new(TraceOptions::default());
//! let handle = sink.clone();
//! sink.emit(Cycle::new(5), TraceEvent::Swap { group: 3 });
//! let data = handle.take();
//! assert_eq!(data.totals().swaps, 1);
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use cameo_types::{Cycle, TraceEvent, TraceSink};

/// Default cap on retained epochs — generous enough that every short and
/// medium run (goldens, quick sweeps, CI smokes) keeps its full series,
/// while a paper-scale run spanning millions of epochs stays flat at
/// ~360 KiB of counters per point.
pub const DEFAULT_MAX_EPOCHS: usize = 4096;

/// A hook fed each epoch the bounded ring evicts, with its absolute
/// index. Boxed so a sweep can hand every point its own JSONL appender.
pub type EpochSpillFn = Box<dyn FnMut(u64, &EpochCounters) + Send>;

/// How an armed trace run aggregates and retains events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceOptions {
    /// Simulated cycles per aggregation epoch.
    pub epoch_cycles: u64,
    /// Whether to retain the raw `(cycle, event)` stream (bounded by
    /// `max_events`) in addition to the epoch counters.
    pub capture_events: bool,
    /// Cap on retained raw events; later events only feed the epoch
    /// counters and bump [`TraceData::dropped_events`].
    pub max_events: usize,
    /// Cap on retained epochs. Older epochs spill out of the ring —
    /// merged into running totals (and streamed to the sink's spill
    /// hook, when armed) — so a run of any length holds at most this
    /// many [`EpochCounters`] in memory.
    pub max_epochs: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            epoch_cycles: 100_000,
            capture_events: true,
            max_events: 10_000,
            max_epochs: DEFAULT_MAX_EPOCHS,
        }
    }
}

/// Event counters folded over one epoch (or, via [`TraceData::totals`],
/// over a whole run).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EpochCounters {
    /// Congruence-group swaps.
    pub swaps: u64,
    /// LLT probes (LEAD reads, embedded lookups).
    pub llt_probes: u64,
    /// Location/hit predictions made.
    pub predicts: u64,
    /// Predictions that matched the verified outcome.
    pub predicts_correct: u64,
    /// Demand reads serviced by stacked DRAM.
    pub stacked_serviced: u64,
    /// Demand reads serviced by off-chip DRAM.
    pub off_chip_serviced: u64,
    /// Row-buffer hits across both devices.
    pub row_hits: u64,
    /// Closed-row misses across both devices.
    pub row_closed: u64,
    /// Row conflicts across both devices.
    pub row_conflicts: u64,
    /// Pages moved by OS-level migration batches.
    pub migrated_pages: u64,
    /// Fault-recovery actions taken.
    pub recovery_actions: u64,
}

impl EpochCounters {
    /// Folds one event into the counters.
    pub fn record(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Swap { .. } => self.swaps += 1,
            TraceEvent::LltProbe { .. } => self.llt_probes += 1,
            TraceEvent::LlpPredict { correct } => {
                self.predicts += 1;
                if *correct {
                    self.predicts_correct += 1;
                }
            }
            TraceEvent::RecoveryAction { .. } => self.recovery_actions += 1,
            TraceEvent::PageMigration { pages } => self.migrated_pages += u64::from(*pages),
            TraceEvent::RowBufferOutcome {
                hits,
                closed,
                conflicts,
                ..
            } => {
                self.row_hits += u64::from(*hits);
                self.row_closed += u64::from(*closed);
                self.row_conflicts += u64::from(*conflicts);
            }
            TraceEvent::Service { stacked } => {
                if *stacked {
                    self.stacked_serviced += 1;
                } else {
                    self.off_chip_serviced += 1;
                }
            }
        }
    }

    /// Accumulates another epoch's counters.
    pub fn merge(&mut self, other: &EpochCounters) {
        self.swaps += other.swaps;
        self.llt_probes += other.llt_probes;
        self.predicts += other.predicts;
        self.predicts_correct += other.predicts_correct;
        self.stacked_serviced += other.stacked_serviced;
        self.off_chip_serviced += other.off_chip_serviced;
        self.row_hits += other.row_hits;
        self.row_closed += other.row_closed;
        self.row_conflicts += other.row_conflicts;
        self.migrated_pages += other.migrated_pages;
        self.recovery_actions += other.recovery_actions;
    }

    /// Demand reads serviced this epoch.
    pub fn serviced(&self) -> u64 {
        self.stacked_serviced + self.off_chip_serviced
    }

    /// Fraction of predictions that were correct, if any were made.
    pub fn prediction_accuracy(&self) -> Option<f64> {
        (self.predicts > 0).then(|| self.predicts_correct as f64 / self.predicts as f64)
    }

    /// Fraction of serviced reads that stacked DRAM answered.
    pub fn stacked_service_rate(&self) -> Option<f64> {
        (self.serviced() > 0).then(|| self.stacked_serviced as f64 / self.serviced() as f64)
    }

    /// Swaps per serviced read — the migration-rate gauge over time.
    pub fn swap_rate(&self) -> Option<f64> {
        (self.serviced() > 0).then(|| self.swaps as f64 / self.serviced() as f64)
    }
}

/// Per-epoch counters, indexed by `cycle / epoch_cycles` with gaps filled
/// by zeroed epochs.
///
/// Retention is a bounded ring: at most `max_epochs` recent epochs stay
/// resident. An epoch pushed out of the window is *spilled* — merged into
/// running totals (so [`EpochSeries::totals`] and
/// [`EpochSeries::epoch_count`] cover the whole run) and handed to the
/// caller's spill hook, which is how a paper-scale run streams its epoch
/// series to disk instead of accumulating it. Runs shorter than the cap
/// behave exactly as an unbounded series did.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EpochSeries {
    epoch_cycles: u64,
    max_epochs: usize,
    /// Absolute index of `ring[0]` — equivalently, how many epochs have
    /// been spilled.
    base: u64,
    ring: VecDeque<EpochCounters>,
    /// Every spilled epoch, merged.
    spilled: EpochCounters,
}

impl EpochSeries {
    /// Creates an empty series with the given epoch length (clamped to at
    /// least 1 cycle) and the default retention cap.
    pub fn new(epoch_cycles: u64) -> Self {
        Self::with_capacity(epoch_cycles, DEFAULT_MAX_EPOCHS)
    }

    /// Creates an empty series retaining at most `max_epochs` epochs
    /// (clamped to at least 1).
    pub fn with_capacity(epoch_cycles: u64, max_epochs: usize) -> Self {
        Self {
            epoch_cycles: epoch_cycles.max(1),
            max_epochs: max_epochs.max(1),
            base: 0,
            ring: VecDeque::new(),
            spilled: EpochCounters::default(),
        }
    }

    /// The epoch length in simulated cycles.
    pub fn epoch_cycles(&self) -> u64 {
        self.epoch_cycles
    }

    /// Total epochs the run has covered, spilled ones included.
    pub fn epoch_count(&self) -> u64 {
        self.base + self.ring.len() as u64
    }

    /// How many epochs have been spilled out of the retention window.
    pub fn spilled_epochs(&self) -> u64 {
        self.base
    }

    /// The merged counters of every spilled epoch.
    pub fn spilled_totals(&self) -> &EpochCounters {
        &self.spilled
    }

    /// The retained window: `(absolute index, counters)` pairs, earliest
    /// first. For runs shorter than the cap this is the whole series.
    pub fn retained(&self) -> impl Iterator<Item = (u64, &EpochCounters)> {
        self.ring
            .iter()
            .enumerate()
            .map(|(i, c)| (self.base + i as u64, c))
    }

    /// Whole-run counters: spilled and retained epochs merged.
    pub fn totals(&self) -> EpochCounters {
        let mut total = self.spilled;
        for epoch in &self.ring {
            total.merge(epoch);
        }
        total
    }

    /// Folds one event into the epoch covering `now`, discarding spilled
    /// epochs (they still reach the running totals).
    pub fn record(&mut self, now: Cycle, event: &TraceEvent) {
        self.record_spilling(now, event, &mut |_, _| {});
    }

    /// Folds one event into the epoch covering `now`, handing each epoch
    /// that falls out of the retention window to `spill` (with its
    /// absolute index) before it is discarded.
    ///
    /// An event older than the window — possible only with a cap smaller
    /// than the reordering depth of the emitter — merges straight into
    /// the spilled totals: never lost, just not attributable to a
    /// resident epoch anymore.
    pub fn record_spilling(
        &mut self,
        now: Cycle,
        event: &TraceEvent,
        spill: &mut dyn FnMut(u64, &EpochCounters),
    ) {
        let idx = now.raw() / self.epoch_cycles;
        if idx < self.base {
            self.spilled.record(event);
            return;
        }
        while self.epoch_count() <= idx {
            self.ring.push_back(EpochCounters::default());
            if self.ring.len() > self.max_epochs {
                let evicted = self
                    .ring
                    .pop_front()
                    .expect("ring is non-empty: an epoch was just pushed");
                spill(self.base, &evicted);
                self.spilled.merge(&evicted);
                self.base += 1;
            }
        }
        let slot = usize::try_from(idx - self.base).expect("ring length is bounded by max_epochs");
        self.ring[slot].record(event);
    }
}

/// Events per [`EventBuffer`] block. 1024 pairs is ~16 KB per block —
/// large enough to amortize the per-block allocation, small enough that a
/// short recording does not reserve a `max_events`-sized arena up front.
const EVENT_BLOCK: usize = 1024;

/// Arena-backed raw event stream: a list of fixed-capacity blocks instead
/// of one contiguous `Vec`.
///
/// A growing `Vec` doubles by reallocate-and-copy, so a near-cap recording
/// copies every retained event O(log n) times and briefly holds 1.5× the
/// stream in memory mid-reallocation — per in-flight sweep point, with the
/// work-stealing pool keeping several points' recordings alive at once.
/// Blocks never move once allocated: a push is amortized one pointer bump,
/// and memory grows in `EVENT_BLOCK` steps instead of doubling.
///
/// Iterate with `for (now, event) in &buffer` (emission order).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct EventBuffer {
    blocks: Vec<Vec<(Cycle, TraceEvent)>>,
    len: usize,
}

impl EventBuffer {
    /// Retained events across all blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one event, opening a fresh block when the last is full.
    fn push(&mut self, now: Cycle, event: TraceEvent) {
        if self.blocks.last().is_none_or(|b| b.len() == EVENT_BLOCK) {
            self.blocks.push(Vec::with_capacity(EVENT_BLOCK));
        }
        let block = self
            .blocks
            .last_mut()
            .expect("a block exists: one was pushed above when absent or full");
        block.push((now, event));
        self.len += 1;
    }

    /// The retained `(cycle, event)` pairs in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &(Cycle, TraceEvent)> {
        self.blocks.iter().flatten()
    }
}

impl<'a> IntoIterator for &'a EventBuffer {
    type Item = &'a (Cycle, TraceEvent);
    type IntoIter = std::iter::Flatten<std::slice::Iter<'a, Vec<(Cycle, TraceEvent)>>>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter().flatten()
    }
}

/// Everything an armed trace run recorded: the epoch series, the bounded
/// raw event stream, and how many events overflowed the retention cap.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceData {
    /// Per-epoch aggregated counters.
    pub epochs: EpochSeries,
    /// Raw `(cycle, event)` pairs, in emission order, capped at
    /// [`TraceOptions::max_events`].
    pub events: EventBuffer,
    /// Events that exceeded the cap (still counted in `epochs`).
    pub dropped_events: u64,
    opts: TraceOptions,
}

impl TraceData {
    /// Creates an empty recording with the given options.
    pub fn new(opts: TraceOptions) -> Self {
        Self {
            epochs: EpochSeries::with_capacity(opts.epoch_cycles, opts.max_epochs),
            events: EventBuffer::default(),
            dropped_events: 0,
            opts,
        }
    }

    /// The options this recording was made with.
    pub fn options(&self) -> &TraceOptions {
        &self.opts
    }

    /// Folds one event into the recording.
    pub fn record(&mut self, now: Cycle, event: TraceEvent) {
        self.record_spilling(now, event, &mut |_, _| {});
    }

    /// Folds one event into the recording, handing epochs evicted from
    /// the bounded ring to `spill` (see [`EpochSeries::record_spilling`]).
    pub fn record_spilling(
        &mut self,
        now: Cycle,
        event: TraceEvent,
        spill: &mut dyn FnMut(u64, &EpochCounters),
    ) {
        self.epochs.record_spilling(now, &event, spill);
        if self.opts.capture_events {
            if self.events.len() < self.opts.max_events {
                self.events.push(now, event);
            } else {
                self.dropped_events += 1;
            }
        }
    }

    /// Whole-run counters: every epoch merged, spilled ones included.
    pub fn totals(&self) -> EpochCounters {
        self.epochs.totals()
    }

    /// Total events folded into the recording (retained or not).
    pub fn event_count(&self) -> u64 {
        self.events.len() as u64 + self.dropped_events
    }
}

/// An armed [`TraceSink`] whose recording is shared between the emitting
/// organization (boxed into `dyn MemoryOrganization`) and the harness that
/// reads the result back out.
///
/// Cloning shares the underlying [`TraceData`]; [`SharedSink::take`]
/// extracts it, leaving an empty recording behind.
///
/// A sink armed with [`SharedSink::with_spill`] additionally streams
/// every epoch the bounded ring evicts to the hook, so a long run's
/// epoch series reaches disk incrementally while memory stays flat.
#[derive(Clone)]
pub struct SharedSink {
    data: Arc<Mutex<TraceData>>,
    spill: Option<Arc<Mutex<EpochSpillFn>>>,
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSink")
            .field("data", &self.data)
            .field("spill_armed", &self.spill.is_some())
            .finish()
    }
}

impl SharedSink {
    /// Creates an armed sink with an empty recording.
    pub fn new(opts: TraceOptions) -> Self {
        Self {
            data: Arc::new(Mutex::new(TraceData::new(opts))),
            spill: None,
        }
    }

    /// Creates an armed sink that feeds ring-evicted epochs to `spill`
    /// (shared by every clone).
    pub fn with_spill(opts: TraceOptions, spill: EpochSpillFn) -> Self {
        Self {
            data: Arc::new(Mutex::new(TraceData::new(opts))),
            spill: Some(Arc::new(Mutex::new(spill))),
        }
    }

    /// Extracts the recording, resetting this sink (and every clone) to an
    /// empty one with the same options.
    pub fn take(&self) -> TraceData {
        let mut guard = self
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let opts = *guard.options();
        std::mem::replace(&mut guard, TraceData::new(opts))
    }

    /// Runs `f` against the live recording without extracting it.
    pub fn with<R>(&self, f: impl FnOnce(&TraceData) -> R) -> R {
        let guard = self
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&guard)
    }
}

impl TraceSink for SharedSink {
    const ENABLED: bool = true;

    fn emit(&mut self, now: Cycle, event: TraceEvent) {
        // Evictions are collected under the data lock and written after
        // releasing it, so the (rare) spill I/O never extends the window
        // in which the hot recording path is blocked. `Vec::new` does not
        // allocate, and most emits evict nothing.
        let mut evicted: Vec<(u64, EpochCounters)> = Vec::new();
        {
            let mut guard = self
                .data
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match &self.spill {
                Some(_) => guard.record_spilling(now, event, &mut |idx, c| {
                    evicted.push((idx, *c));
                }),
                None => guard.record(now, event),
            }
        }
        if let Some(spill) = &self.spill {
            if !evicted.is_empty() {
                let mut hook = spill
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for (idx, counters) in &evicted {
                    hook(*idx, counters);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_index_by_cycle_and_fill_gaps() {
        let mut series = EpochSeries::new(100);
        series.record(Cycle::new(5), &TraceEvent::Swap { group: 1 });
        series.record(Cycle::new(350), &TraceEvent::Swap { group: 2 });
        assert_eq!(series.epoch_count(), 4);
        assert_eq!(series.spilled_epochs(), 0);
        let retained: Vec<(u64, EpochCounters)> =
            series.retained().map(|(i, c)| (i, *c)).collect();
        assert_eq!(retained.len(), 4);
        assert_eq!(retained[0].0, 0);
        assert_eq!(retained[0].1.swaps, 1);
        assert_eq!(retained[1].1.swaps, 0);
        assert_eq!(retained[3].1.swaps, 1);
    }

    /// The bounded ring evicts the oldest epochs — in order, with their
    /// absolute indices — while totals and the epoch count keep covering
    /// the whole run.
    #[test]
    fn ring_spills_oldest_epochs_but_totals_cover_the_run() {
        let mut series = EpochSeries::with_capacity(10, 4);
        let mut spilled: Vec<(u64, u64)> = Vec::new();
        for epoch in 0..10u64 {
            series.record_spilling(
                Cycle::new(epoch * 10),
                &TraceEvent::Swap { group: epoch },
                &mut |idx, c| spilled.push((idx, c.swaps)),
            );
        }
        assert_eq!(series.epoch_count(), 10);
        assert_eq!(series.spilled_epochs(), 6);
        assert_eq!(spilled, vec![(0, 1), (1, 1), (2, 1), (3, 1), (4, 1), (5, 1)]);
        assert_eq!(series.spilled_totals().swaps, 6);
        assert_eq!(series.totals().swaps, 10);
        let retained: Vec<u64> = series.retained().map(|(i, _)| i).collect();
        assert_eq!(retained, vec![6, 7, 8, 9]);
    }

    /// An event older than the retention window merges into the spilled
    /// totals instead of vanishing.
    #[test]
    fn late_events_behind_the_window_reach_the_totals() {
        let mut series = EpochSeries::with_capacity(10, 2);
        series.record(Cycle::new(90), &TraceEvent::Swap { group: 0 });
        assert!(series.spilled_epochs() > 0);
        series.record(Cycle::new(0), &TraceEvent::Swap { group: 1 });
        assert_eq!(series.totals().swaps, 2);
        assert_eq!(series.epoch_count(), 10);
    }

    /// A spill-armed sink streams evicted epochs to its hook while the
    /// recording keeps whole-run totals.
    #[test]
    fn shared_sink_streams_evicted_epochs_to_the_spill_hook() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let hook_seen = Arc::clone(&seen);
        let mut sink = SharedSink::with_spill(
            TraceOptions {
                epoch_cycles: 10,
                capture_events: false,
                max_events: 0,
                max_epochs: 2,
            },
            Box::new(move |idx, c: &EpochCounters| {
                hook_seen.lock().expect("test hook").push((idx, c.swaps));
            }),
        );
        for epoch in 0..5u64 {
            sink.emit(Cycle::new(epoch * 10), TraceEvent::Swap { group: epoch });
        }
        assert_eq!(
            *seen.lock().expect("test hook"),
            vec![(0, 1), (1, 1), (2, 1)]
        );
        let data = sink.take();
        assert_eq!(data.totals().swaps, 5);
        assert_eq!(data.epochs.epoch_count(), 5);
        assert_eq!(data.epochs.spilled_epochs(), 3);
    }

    #[test]
    fn counters_fold_every_variant() {
        let mut c = EpochCounters::default();
        c.record(&TraceEvent::Swap { group: 0 });
        c.record(&TraceEvent::LltProbe { group: 0 });
        c.record(&TraceEvent::LlpPredict { correct: true });
        c.record(&TraceEvent::LlpPredict { correct: false });
        c.record(&TraceEvent::Service { stacked: true });
        c.record(&TraceEvent::Service { stacked: false });
        c.record(&TraceEvent::PageMigration { pages: 3 });
        c.record(&TraceEvent::RowBufferOutcome {
            stacked: true,
            hits: 2,
            closed: 1,
            conflicts: 1,
        });
        c.record(&TraceEvent::RecoveryAction {
            kind: cameo_types::RecoveryKind::Scrub,
        });
        assert_eq!(c.swaps, 1);
        assert_eq!(c.llt_probes, 1);
        assert_eq!(c.predicts, 2);
        assert_eq!(c.predicts_correct, 1);
        assert_eq!(c.prediction_accuracy(), Some(0.5));
        assert_eq!(c.stacked_service_rate(), Some(0.5));
        assert_eq!(c.swap_rate(), Some(0.5));
        assert_eq!(c.migrated_pages, 3);
        assert_eq!(c.row_hits, 2);
        assert_eq!(c.row_closed, 1);
        assert_eq!(c.row_conflicts, 1);
        assert_eq!(c.recovery_actions, 1);
    }

    #[test]
    fn event_cap_spills_into_dropped_but_epochs_keep_counting() {
        let mut data = TraceData::new(TraceOptions {
            epoch_cycles: 10,
            capture_events: true,
            max_events: 2,
            max_epochs: DEFAULT_MAX_EPOCHS,
        });
        for i in 0..5u64 {
            data.record(Cycle::new(i), TraceEvent::Swap { group: i });
        }
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.dropped_events, 3);
        assert_eq!(data.event_count(), 5);
        assert_eq!(data.totals().swaps, 5);
    }

    #[test]
    fn shared_sink_clones_share_and_take_resets() {
        let mut sink = SharedSink::new(TraceOptions::default());
        let handle = sink.clone();
        sink.emit(Cycle::new(1), TraceEvent::Service { stacked: true });
        assert_eq!(handle.with(|d| d.totals().stacked_serviced), 1);
        let taken = handle.take();
        assert_eq!(taken.totals().stacked_serviced, 1);
        assert_eq!(sink.take().totals().stacked_serviced, 0);
    }
}
