//! Normalized power and energy-delay-product model (paper Section VI-C,
//! Figure 14).
//!
//! The paper assumes fixed power splits in the baseline — for
//! Capacity-Limited workloads 60% processor / 20% memory / 20% storage,
//! for Latency-Limited 70% / 30% / 0% — and estimates component power from
//! datasheet numbers. We reconstruct each component's power as an idle
//! share plus a dynamic share proportional to its bus-activity *rate*
//! (bytes per cycle), normalized to the baseline's off-chip rate. The
//! stacked device adds its own idle and dynamic power when present; its
//! per-byte energy is lower than off-chip DDR (shorter wires, no
//! SerDes-class I/O in the paper's estimate).

use cameo_workloads::Category;

use crate::stats::RunStats;

/// Baseline power shares for a workload category:
/// `(processor, memory, storage)`.
fn shares(category: Category) -> (f64, f64, f64) {
    match category {
        Category::CapacityLimited => (0.6, 0.2, 0.2),
        Category::LatencyLimited => (0.7, 0.3, 0.0),
    }
}

/// Fraction of a DRAM device's power that is idle/background.
const DRAM_IDLE_FRACTION: f64 = 0.2;

/// Stacked DRAM idle power relative to the off-chip device's idle power
/// (the stack is physically smaller but always on).
const STACKED_IDLE_RATIO: f64 = 0.5;

/// Stacked DRAM energy per byte relative to off-chip (TSV interfaces are
/// cheaper per bit than board-level DDR I/O).
const STACKED_ENERGY_PER_BYTE_RATIO: f64 = 0.6;

/// Power breakdown of one run, in units where the baseline totals 1.0.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PowerBreakdown {
    /// Processor share (constant while running).
    pub processor: f64,
    /// Stacked-DRAM power (zero in the baseline).
    pub stacked: f64,
    /// Off-chip DRAM power.
    pub off_chip: f64,
    /// Storage power.
    pub storage: f64,
}

impl PowerBreakdown {
    /// Total normalized power.
    pub fn total(&self) -> f64 {
        self.processor + self.stacked + self.off_chip + self.storage
    }
}

fn activity_rate(bytes: u64, cycles: u64) -> f64 {
    bytes as f64 / cycles.max(1) as f64
}

/// Normalized power of `run` relative to `baseline` for a workload of
/// `category`.
pub fn power(run: &RunStats, baseline: &RunStats, category: Category) -> PowerBreakdown {
    let (p_proc, p_mem, p_storage) = shares(category);
    let base_off_rate = activity_rate(baseline.bandwidth.off_chip_bytes, baseline.execution_cycles);
    let base_storage_rate =
        activity_rate(baseline.bandwidth.storage_bytes, baseline.execution_cycles);

    let rel = |rate: f64, base: f64| if base > 0.0 { rate / base } else { 0.0 };

    let off_rate = activity_rate(run.bandwidth.off_chip_bytes, run.execution_cycles);
    let off_chip =
        p_mem * (DRAM_IDLE_FRACTION + (1.0 - DRAM_IDLE_FRACTION) * rel(off_rate, base_off_rate));

    let stacked = if run.bandwidth.stacked_bytes > 0 {
        let stk_rate = activity_rate(run.bandwidth.stacked_bytes, run.execution_cycles);
        p_mem
            * (DRAM_IDLE_FRACTION * STACKED_IDLE_RATIO
                + (1.0 - DRAM_IDLE_FRACTION)
                    * STACKED_ENERGY_PER_BYTE_RATIO
                    * rel(stk_rate, base_off_rate))
    } else {
        0.0
    };

    let storage = if p_storage > 0.0 {
        let sto_rate = activity_rate(run.bandwidth.storage_bytes, run.execution_cycles);
        p_storage * (0.5 + 0.5 * rel(sto_rate, base_storage_rate))
    } else {
        0.0
    };

    PowerBreakdown {
        processor: p_proc,
        stacked,
        off_chip,
        storage,
    }
}

/// Normalized energy-delay product of `run` relative to `baseline`:
/// `(P/P_b) × (T/T_b)²` with time measured per instruction.
pub fn edp(run: &RunStats, baseline: &RunStats, category: Category) -> f64 {
    let p = power(run, baseline, category).total();
    let p_b = power(baseline, baseline, category).total();
    let t_ratio = run.cpi() / baseline.cpi();
    (p / p_b) * t_ratio * t_ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BandwidthReport;

    fn stats(cycles: u64, stacked: u64, off: u64, storage: u64) -> RunStats {
        RunStats {
            org: "t".into(),
            bench: "t".into(),
            execution_cycles: cycles,
            instructions: 1000,
            demand_reads: 1,
            demand_writes: 0,
            serviced_stacked: 0,
            serviced_off_chip: 1,
            faults: 0,
            bandwidth: BandwidthReport {
                stacked_bytes: stacked,
                off_chip_bytes: off,
                storage_bytes: storage,
            },
            cases: None,
            migrated_pages: 0,
            read_latency_sum: 0,
            latency_histogram: [0; 24],
        }
    }

    #[test]
    fn baseline_power_is_unity() {
        let b = stats(1000, 0, 64_000, 4096);
        for cat in [Category::CapacityLimited, Category::LatencyLimited] {
            let p = power(&b, &b, cat);
            assert!((p.total() - 1.0).abs() < 1e-9, "{cat:?}: {p:?}");
            assert_eq!(p.stacked, 0.0);
        }
    }

    #[test]
    fn adding_stacked_dram_raises_power() {
        let b = stats(1000, 0, 64_000, 0);
        let c = stats(800, 100_000, 30_000, 0);
        let p = power(&c, &b, Category::LatencyLimited);
        assert!(p.total() > 1.0, "total {}", p.total());
        assert!(p.stacked > 0.0);
    }

    #[test]
    fn faster_config_wins_edp_despite_higher_power() {
        let b = stats(2000, 0, 64_000, 0);
        let c = stats(1000, 80_000, 30_000, 0);
        let e = edp(&c, &b, Category::LatencyLimited);
        assert!(e < 1.0, "edp {e}");
    }

    #[test]
    fn capacity_split_includes_storage() {
        let b = stats(1000, 0, 64_000, 4096);
        let p_cap = power(&b, &b, Category::CapacityLimited);
        let p_lat = power(&b, &b, Category::LatencyLimited);
        assert!(p_cap.storage > 0.0);
        assert_eq!(p_lat.storage, 0.0);
        assert!(p_lat.processor > p_cap.processor);
    }

    #[test]
    fn edp_of_baseline_is_unity() {
        let b = stats(1000, 0, 64_000, 4096);
        for cat in [Category::CapacityLimited, Category::LatencyLimited] {
            assert!((edp(&b, &b, cat) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn slower_config_loses_edp_even_at_lower_power() {
        // Twice the time at slightly lower power: EDP must worsen (time
        // enters squared).
        let b = stats(1000, 0, 64_000, 0);
        let slow = stats(2000, 0, 64_000, 0);
        assert!(edp(&slow, &b, Category::LatencyLimited) > 1.0);
    }

    #[test]
    fn heavy_migration_traffic_costs_power() {
        let b = stats(1000, 0, 64_000, 4096);
        let light = stats(1000, 64_000, 64_000, 4096);
        let heavy = stats(1000, 256_000, 256_000, 4096);
        let p_light = power(&light, &b, Category::CapacityLimited).total();
        let p_heavy = power(&heavy, &b, Category::CapacityLimited).total();
        assert!(p_heavy > p_light);
    }
}
