//! Sweep checkpointing: a dependency-free JSON codec and an append-only
//! JSONL store.
//!
//! The build environment vendors no serialization crates, so this module
//! hand-rolls the small JSON slice the harness needs: `u64` (preserved
//! exactly — never routed through `f64`), strings, booleans, arrays and
//! objects.
//!
//! The checkpoint file is JSONL — one self-contained record per line,
//! appended and flushed as each design point finishes:
//!
//! ```text
//! {"key":"astar::CAMEO","status":"done","attempts":1,"stats":{...}}
//! {"key":"mcf::CAMEO","status":"failed","attempts":3,"error":"..."}
//! ```
//!
//! Append-only records make resume robust: a sweep killed mid-write leaves
//! at most one truncated final line, which [`load`] skips and
//! [`load_and_repair`] truncates away (so later appends cannot land on the
//! unterminated tail), and re-invoking the sweep recomputes only the
//! unfinished points.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use cameo::PredictionCaseCounts;
use cameo_types::DetHashMap;

use crate::error::SimError;
use crate::stats::{BandwidthReport, RunStats};

/// A JSON value. Unsigned integers are a distinct variant so `u64`
/// counters survive a round-trip bit-exactly.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the simulator's counters).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The `u64` payload, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Renders to compact JSON text (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (which must contain nothing else
    /// but whitespace around it).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                char::from(want),
                self.pos
            ))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-UTF-8 number at offset {start}"))?;
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("malformed number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("non-UTF-8 string at offset {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogates would need pairing; the renderer
                            // never emits them, so reject rather than mangle.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape {other:?}")),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

/// Outcome of one design point, as recorded in the checkpoint file.
#[derive(Clone, PartialEq, Debug)]
pub enum PointRecord {
    /// The point completed; its statistics are attached.
    Done {
        /// Attempts consumed (1 = first try succeeded).
        attempts: u32,
        /// The completed run's statistics (boxed: this variant would
        /// otherwise dwarf `Failed` in every `Vec<PointRecord>`).
        stats: Box<RunStats>,
    },
    /// The point failed on every attempt.
    Failed {
        /// Attempts consumed.
        attempts: u32,
        /// Rendering of the final error.
        error: String,
    },
}

fn stats_to_json(stats: &RunStats) -> Json {
    let cases = match &stats.cases {
        Some(c) => Json::Arr(c.to_array().iter().map(|&v| Json::U64(v)).collect()),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("org".into(), Json::Str(stats.org.clone())),
        ("bench".into(), Json::Str(stats.bench.clone())),
        ("execution_cycles".into(), Json::U64(stats.execution_cycles)),
        ("instructions".into(), Json::U64(stats.instructions)),
        ("demand_reads".into(), Json::U64(stats.demand_reads)),
        ("demand_writes".into(), Json::U64(stats.demand_writes)),
        ("serviced_stacked".into(), Json::U64(stats.serviced_stacked)),
        (
            "serviced_off_chip".into(),
            Json::U64(stats.serviced_off_chip),
        ),
        ("faults".into(), Json::U64(stats.faults)),
        (
            "stacked_bytes".into(),
            Json::U64(stats.bandwidth.stacked_bytes),
        ),
        (
            "off_chip_bytes".into(),
            Json::U64(stats.bandwidth.off_chip_bytes),
        ),
        (
            "storage_bytes".into(),
            Json::U64(stats.bandwidth.storage_bytes),
        ),
        ("cases".into(), cases),
        ("migrated_pages".into(), Json::U64(stats.migrated_pages)),
        ("read_latency_sum".into(), Json::U64(stats.read_latency_sum)),
        (
            "latency_histogram".into(),
            Json::Arr(
                stats
                    .latency_histogram
                    .iter()
                    .map(|&v| Json::U64(v))
                    .collect(),
            ),
        ),
    ])
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn stats_from_json(obj: &Json) -> Result<RunStats, String> {
    let cases = match obj.get("cases") {
        None | Some(Json::Null) => None,
        Some(Json::Arr(items)) => {
            let mut counts = [0u64; 5];
            if items.len() != counts.len() {
                return Err(format!("cases array has {} entries, want 5", items.len()));
            }
            for (slot, item) in counts.iter_mut().zip(items) {
                *slot = item
                    .as_u64()
                    .ok_or_else(|| "non-integer cases entry".to_string())?;
            }
            Some(PredictionCaseCounts::from_array(counts))
        }
        Some(other) => return Err(format!("cases is neither array nor null: {other:?}")),
    };
    let mut latency_histogram = [0u64; 24];
    match obj.get("latency_histogram") {
        Some(Json::Arr(items)) if items.len() == latency_histogram.len() => {
            for (slot, item) in latency_histogram.iter_mut().zip(items) {
                *slot = item
                    .as_u64()
                    .ok_or_else(|| "non-integer histogram entry".to_string())?;
            }
        }
        other => return Err(format!("latency_histogram malformed: {other:?}")),
    }
    Ok(RunStats {
        org: field_str(obj, "org")?,
        bench: field_str(obj, "bench")?,
        execution_cycles: field_u64(obj, "execution_cycles")?,
        instructions: field_u64(obj, "instructions")?,
        demand_reads: field_u64(obj, "demand_reads")?,
        demand_writes: field_u64(obj, "demand_writes")?,
        serviced_stacked: field_u64(obj, "serviced_stacked")?,
        serviced_off_chip: field_u64(obj, "serviced_off_chip")?,
        faults: field_u64(obj, "faults")?,
        bandwidth: BandwidthReport {
            stacked_bytes: field_u64(obj, "stacked_bytes")?,
            off_chip_bytes: field_u64(obj, "off_chip_bytes")?,
            storage_bytes: field_u64(obj, "storage_bytes")?,
        },
        cases,
        migrated_pages: field_u64(obj, "migrated_pages")?,
        read_latency_sum: field_u64(obj, "read_latency_sum")?,
        latency_histogram,
    })
}

/// Renders one `(key, record)` pair as a single JSONL line (no trailing
/// newline).
pub fn render_record(key: &str, record: &PointRecord) -> String {
    let mut fields = vec![("key".to_owned(), Json::Str(key.to_owned()))];
    match record {
        PointRecord::Done { attempts, stats } => {
            fields.push(("status".into(), Json::Str("done".into())));
            fields.push(("attempts".into(), Json::U64(u64::from(*attempts))));
            fields.push(("stats".into(), stats_to_json(stats)));
        }
        PointRecord::Failed { attempts, error } => {
            fields.push(("status".into(), Json::Str("failed".into())));
            fields.push(("attempts".into(), Json::U64(u64::from(*attempts))));
            fields.push(("error".into(), Json::Str(error.clone())));
        }
    }
    Json::Obj(fields).render()
}

/// Renders an in-flight progress marker for `key` as a single JSONL line
/// (no trailing newline): `{"key":…,"status":"chunk","attempts":…}`.
///
/// A chunked sweep appends one of these the first time a point parks
/// between chunks, so an operator inspecting a killed sweep's checkpoint
/// can tell "was mid-run" from "never started". Progress markers carry no
/// resumable state: loaders skip them and the point re-runs from scratch.
pub fn render_progress(key: &str, attempts: u32) -> String {
    Json::Obj(vec![
        ("key".to_owned(), Json::Str(key.to_owned())),
        ("status".to_owned(), Json::Str("chunk".to_owned())),
        ("attempts".to_owned(), Json::U64(u64::from(attempts))),
    ])
    .render()
}

/// One parsed checkpoint line.
#[derive(Clone, PartialEq, Debug)]
pub enum CheckpointLine {
    /// A terminal record: the point completed or failed for good.
    Terminal(String, PointRecord),
    /// A `"chunk"` progress marker (see [`render_progress`]): the keyed
    /// point was in flight when the line was written.
    Progress {
        /// The in-flight point's checkpoint key.
        key: String,
        /// The attempt that was running when the marker was written.
        attempts: u32,
    },
}

/// Parses one JSONL line into a [`CheckpointLine`].
///
/// # Errors
///
/// Returns a description of the malformation.
pub fn parse_line(line: &str) -> Result<CheckpointLine, String> {
    let obj = Json::parse(line)?;
    let key = field_str(&obj, "key")?;
    let status = field_str(&obj, "status")?;
    let attempts = field_u64(&obj, "attempts")? as u32;
    let record = match status.as_str() {
        "done" => PointRecord::Done {
            attempts,
            stats: Box::new(stats_from_json(
                obj.get("stats")
                    .ok_or_else(|| "done record without stats".to_string())?,
            )?),
        },
        "failed" => PointRecord::Failed {
            attempts,
            error: field_str(&obj, "error")?,
        },
        "chunk" => return Ok(CheckpointLine::Progress { key, attempts }),
        other => return Err(format!("unknown status {other:?}")),
    };
    Ok(CheckpointLine::Terminal(key, record))
}

/// Parses one JSONL line into its `(key, record)` pair. A well-formed
/// progress marker is an error here — callers wanting terminal records
/// only must not silently mistake "in flight" for a result.
///
/// # Errors
///
/// Returns a description of the malformation.
pub fn parse_record(line: &str) -> Result<(String, PointRecord), String> {
    match parse_line(line)? {
        CheckpointLine::Terminal(key, record) => Ok((key, record)),
        CheckpointLine::Progress { key, .. } => Err(format!(
            "line is a chunk-progress marker for {key:?}, not a terminal record"
        )),
    }
}

/// Loads a checkpoint file into a key → record map.
///
/// A missing file is an empty checkpoint. A truncated or corrupt *final*
/// line — the signature of a sweep killed mid-write — is skipped;
/// corruption anywhere else is reported, since it means the file is not
/// what this code wrote.
///
/// # Errors
///
/// Returns [`SimError::CheckpointIo`] on I/O failure and
/// [`SimError::Checkpoint`] on non-trailing corruption.
pub fn load(path: &Path) -> Result<DetHashMap<String, PointRecord>, SimError> {
    Ok(load_lines(path)?.records)
}

/// The resume-relevant view of a checkpoint: terminal records, plus the
/// keys whose *only* trace in the file is a `"chunk"` progress marker.
///
/// Such a key was mid-run when the sweep was killed (or the marker was
/// forged — see [`load_resume`]). Either way no result exists, so the
/// point must re-run from scratch; the harness uses the parked set to
/// avoid appending a *second* marker for a point the checkpoint already
/// flags as in-flight.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ResumeState {
    /// Terminal `key → record` outcomes, exactly as [`load`] returns.
    pub records: DetHashMap<String, PointRecord>,
    /// Keys with a progress marker but no terminal record by EOF, mapped
    /// to the attempt number the (last) marker recorded. These points
    /// were parked mid-run; they resume as fresh runs, never as results.
    pub parked: DetHashMap<String, u32>,
}

/// Loads the full resume state of a checkpoint: terminal records *and*
/// the parked keys — progress markers never followed by a terminal
/// record at EOF.
///
/// Plain [`load`] deliberately drops the markers (a result map must not
/// mistake "in flight" for a result), but resume paths need them: a
/// marker whose point never finished — whether the sweep was killed or
/// the marker was forged into the file — identifies a point that must
/// re-run from scratch and must not be silently indistinguishable from
/// "never started".
///
/// # Errors
///
/// Returns [`SimError::CheckpointIo`] on I/O failure and
/// [`SimError::Checkpoint`] on non-trailing corruption.
pub fn load_resume(path: &Path) -> Result<ResumeState, SimError> {
    let loaded = load_lines(path)?;
    Ok(ResumeState {
        records: loaded.records,
        parked: loaded.parked,
    })
}

/// Like [`load`], but *repairs* a trailing torn record instead of merely
/// skipping it: the file is truncated back to the last whole line (and
/// the repair logged to stderr), so a subsequent [`Writer::append`]
/// cannot concatenate a fresh record onto the unterminated tail and turn
/// a harmless kill artifact into mid-file corruption. Resume paths that
/// reopen the file for appending must use this; read-only consumers can
/// keep using [`load`].
///
/// # Errors
///
/// Returns [`SimError::CheckpointIo`] on read/truncate failure and
/// [`SimError::Checkpoint`] on non-trailing corruption.
pub fn load_and_repair(path: &Path) -> Result<DetHashMap<String, PointRecord>, SimError> {
    Ok(load_and_repair_resume(path)?.records)
}

/// [`load_resume`] with the torn-tail repair of [`load_and_repair`]:
/// the resume state *and* a file safe to append to. This is what the
/// sweep engine calls — it needs the parked set (to re-run those points
/// without double-marking them) and will append fresh outcomes.
///
/// # Errors
///
/// Returns [`SimError::CheckpointIo`] on read/truncate failure and
/// [`SimError::Checkpoint`] on non-trailing corruption.
pub fn load_and_repair_resume(path: &Path) -> Result<ResumeState, SimError> {
    let loaded = load_lines(path)?;
    if let Some(tail_offset) = loaded.torn_tail_offset {
        eprintln!(
            "[checkpoint] {}: truncating torn trailing record at byte {tail_offset} \
             (interrupted append); the point will be recomputed",
            path.display()
        );
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_error(path, "truncate", &e))?;
        file.set_len(tail_offset)
            .map_err(|e| io_error(path, "truncate", &e))?;
    }
    Ok(ResumeState {
        records: loaded.records,
        parked: loaded.parked,
    })
}

/// A parsed checkpoint plus the byte offset of a torn trailing record,
/// when one was found.
struct LoadedCheckpoint {
    records: DetHashMap<String, PointRecord>,
    parked: DetHashMap<String, u32>,
    torn_tail_offset: Option<u64>,
}

/// Maps an I/O failure on `path` to the typed [`SimError::CheckpointIo`].
fn io_error(path: &Path, op: &'static str, e: &std::io::Error) -> SimError {
    SimError::CheckpointIo {
        path: path.display().to_string(),
        op,
        kind: e.kind(),
        detail: e.to_string(),
    }
}

/// The shared body of [`load`] and [`load_and_repair`]: parses every
/// whole record and reports — without acting on — a torn trailing line.
///
/// Records stream straight from a buffered reader into the resume map —
/// one line buffer, reused — so replay memory is O(points retained), not
/// O(file). A paper-scale sweep's checkpoint (thousands of fat `stats`
/// records) resumes without ever holding the file's text in memory.
fn load_lines(path: &Path) -> Result<LoadedCheckpoint, SimError> {
    let mut loaded = LoadedCheckpoint {
        records: DetHashMap::default(),
        parked: DetHashMap::default(),
        torn_tail_offset: None,
    };
    let file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(loaded),
        Err(e) => return Err(io_error(path, "read", &e)),
    };
    let mut reader = std::io::BufReader::new(file);
    let mut buf = String::new();
    // A parse failure is only the torn-tail signature if no further
    // non-blank line follows, so a failure is *parked* here and either
    // promoted to a hard error by the next line or left as the tail.
    // Offsets track where each line starts so repair can cut exactly at
    // the interrupted append.
    let mut pending_failure: Option<(u64, usize, String)> = None;
    let mut offset = 0u64;
    let mut line_no = 0usize;
    loop {
        buf.clear();
        let read = std::io::BufRead::read_line(&mut reader, &mut buf)
            .map_err(|e| io_error(path, "read", &e))?;
        if read == 0 {
            break;
        }
        let start = offset;
        offset += read as u64;
        let line = buf.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            continue;
        }
        line_no += 1;
        if let Some((_, failed_line, e)) = pending_failure.take() {
            return Err(SimError::Checkpoint(format!(
                "{} line {}: {e}",
                path.display(),
                failed_line
            )));
        }
        match parse_line(line) {
            Ok(CheckpointLine::Terminal(key, record)) => {
                // A terminal record supersedes any earlier in-flight
                // marker for its key: the point is no longer parked.
                loaded.parked.remove(&key);
                loaded.records.insert(key, record);
            }
            Ok(CheckpointLine::Progress { key, attempts }) => {
                // In-flight marker from a chunked sweep that was killed:
                // no result exists yet, so the key is *parked* — unless a
                // terminal record follows later in the file. A parked
                // point re-runs from scratch; the resume loaders surface
                // the set so the harness can tell "was mid-run" from
                // "never started" (and avoid double-marking the file).
                loaded.parked.insert(key, attempts);
            }
            Err(e) => pending_failure = Some((start, line_no, e)),
        }
    }
    if let Some((start, _, _)) = pending_failure {
        // Interrupted final append: resume will redo this point.
        loaded.torn_tail_offset = Some(start);
    }
    Ok(loaded)
}

/// Appends one record to the checkpoint file (creating it if needed) and
/// flushes, so a kill immediately afterwards loses nothing.
///
/// One-shot convenience over [`Writer`]: opens, appends, closes. Sweeps
/// hold a [`Writer`] open instead of paying an open per record.
///
/// # Errors
///
/// Returns [`SimError::CheckpointIo`] on I/O failure.
pub fn append(path: &Path, key: &str, record: &PointRecord) -> Result<(), SimError> {
    Writer::open(path)?.append(key, record)
}

/// A shared, internally synchronized checkpoint appender.
///
/// The parallel sweep engine funnels every worker's outcome through one
/// `Writer`: the open file handle sits behind a mutex, and each record is
/// rendered first, then written as a single `write_all` of one full line
/// and flushed while the lock is held. Concurrent completions therefore
/// can never interleave or tear records — the JSONL file parses
/// line-by-line no matter how many workers append — and a kill loses at
/// most the final in-flight line, which [`load`] already tolerates.
#[derive(Debug)]
pub struct Writer {
    path: PathBuf,
    file: Mutex<File>,
}

impl Writer {
    /// Opens (creating if needed) the checkpoint file for appending.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointIo`] on I/O failure.
    pub fn open(path: &Path) -> Result<Self, SimError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_error(path, "open", &e))?;
        Ok(Self {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record as a single flushed line. Callable from any
    /// thread through a shared reference.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointIo`] on I/O failure, with the
    /// [`std::io::ErrorKind`] preserved so a supervisor can distinguish a
    /// full disk (`StorageFull`) or short write (`WriteZero`) from a
    /// transient error.
    pub fn append(&self, key: &str, record: &PointRecord) -> Result<(), SimError> {
        self.append_line(render_record(key, record))
    }

    /// Appends an in-flight progress marker (see [`render_progress`]) as
    /// a single flushed line. Callable from any thread through a shared
    /// reference.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointIo`] on I/O failure, as
    /// [`Writer::append`] does.
    pub fn append_progress(&self, key: &str, attempts: u32) -> Result<(), SimError> {
        self.append_line(render_progress(key, attempts))
    }

    fn append_line(&self, mut line: String) -> Result<(), SimError> {
        line.push('\n');
        let mut file = match self.file.lock() {
            Ok(guard) => guard,
            // A worker that panicked while appending cannot have left a
            // partial line (the buffer is written in one call); the file
            // handle itself is still sound to use.
            Err(poisoned) => poisoned.into_inner(),
        };
        file.write_all(line.as_bytes())
            .map_err(|e| io_error(&self.path, "append", &e))?;
        file.flush().map_err(|e| io_error(&self.path, "flush", &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(cases: bool) -> RunStats {
        let mut latency_histogram = [0u64; 24];
        latency_histogram[7] = 11;
        latency_histogram[9] = 4;
        RunStats {
            org: "CAMEO".into(),
            bench: "astar".into(),
            execution_cycles: u64::MAX - 3, // would not survive an f64 trip
            instructions: 12345,
            demand_reads: 15,
            demand_writes: 5,
            serviced_stacked: 10,
            serviced_off_chip: 5,
            faults: 2,
            bandwidth: BandwidthReport {
                stacked_bytes: 1 << 40,
                off_chip_bytes: 9,
                storage_bytes: 0,
            },
            cases: cases.then(|| PredictionCaseCounts::from_array([1, 2, 3, 4, 5])),
            migrated_pages: 0,
            read_latency_sum: 999,
            latency_histogram,
        }
    }

    #[test]
    fn stats_round_trip_bit_exact() {
        for cases in [false, true] {
            let stats = sample_stats(cases);
            let json = stats_to_json(&stats).render();
            let back = stats_from_json(&Json::parse(&json).expect("rendered JSON parses"))
                .expect("rendered stats decode");
            assert_eq!(back, stats);
        }
    }

    #[test]
    fn record_round_trip() {
        let done = PointRecord::Done {
            attempts: 2,
            stats: Box::new(sample_stats(true)),
        };
        let line = render_record("astar::CAMEO", &done);
        assert_eq!(
            parse_record(&line).expect("rendered record parses"),
            ("astar::CAMEO".to_owned(), done)
        );
        let failed = PointRecord::Failed {
            attempts: 3,
            error: "weird \"quoted\"\npanic".into(),
        };
        let line = render_record("mcf::Cache", &failed);
        assert_eq!(
            parse_record(&line).expect("escapes round-trip"),
            ("mcf::Cache".to_owned(), failed)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parser_accepts_numbers_strings_nesting() {
        let v = Json::parse(" {\"a\": [1, -2.5, true, null, \"x\\u0041\"]} ")
            .expect("valid JSON parses");
        let arr = v.get("a").expect("object has field a");
        match arr {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::U64(1));
                assert_eq!(items[1], Json::F64(-2.5));
                assert_eq!(items[2], Json::Bool(true));
                assert_eq!(items[3], Json::Null);
                assert_eq!(items[4], Json::Str("xA".into()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn load_tolerates_truncated_tail_only() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_ckpt_test_{}.jsonl", std::process::id()));
        let good = render_record(
            "a::x",
            &PointRecord::Failed {
                attempts: 1,
                error: "e".into(),
            },
        );
        std::fs::write(&path, format!("{good}\n{{\"key\":\"b::x\",\"sta")).expect("tmp write");
        let map = load(&path).expect("truncated tail skipped");
        assert_eq!(map.len(), 1);
        assert!(map.contains_key("a::x"));
        // The same corruption mid-file is an error.
        std::fs::write(&path, format!("{{\"key\":\"b::x\",\"sta\n{good}\n")).expect("tmp write");
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).expect("tmp cleanup");
    }

    /// A torn trailing record is not just skipped by [`load_and_repair`]
    /// — it is cut out of the file, so the append-after-resume path can
    /// never concatenate a fresh record onto the unterminated tail (which
    /// would turn a harmless kill artifact into mid-file corruption that
    /// [`load`] rejects).
    #[test]
    fn repair_truncates_torn_tail_so_appends_stay_parseable() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_ckpt_repair_{}.jsonl", std::process::id()));
        let good = render_record(
            "a::x",
            &PointRecord::Failed {
                attempts: 1,
                error: "e".into(),
            },
        );
        let torn = "{\"key\":\"b::x\",\"sta";
        std::fs::write(&path, format!("{good}\n{torn}")).expect("tmp write");

        // Without repair, appending after a torn tail corrupts the file
        // mid-line — exactly the failure mode repair exists to prevent.
        let map = load_and_repair(&path).expect("repair tolerates torn tail");
        assert_eq!(map.len(), 1);
        assert!(map.contains_key("a::x"));
        let text = std::fs::read_to_string(&path).expect("tmp readable");
        assert_eq!(text, format!("{good}\n"), "torn bytes removed from disk");

        // The repaired file accepts appends and stays fully parseable.
        let rec = PointRecord::Failed {
            attempts: 2,
            error: "redo".into(),
        };
        append(&path, "b::x", &rec).expect("append after repair");
        let map = load(&path).expect("repaired-then-appended file loads");
        assert_eq!(map.len(), 2);
        assert_eq!(map.get("b::x"), Some(&rec));

        // Repair on a clean file is a no-op.
        let before = std::fs::read_to_string(&path).expect("tmp readable");
        let map = load_and_repair(&path).expect("clean file repairs trivially");
        assert_eq!(map.len(), 2);
        assert_eq!(
            std::fs::read_to_string(&path).expect("tmp readable"),
            before
        );
        std::fs::remove_file(&path).expect("tmp cleanup");
    }

    /// Repair refuses to touch a file whose corruption is *not* the
    /// torn-tail signature, and reports the typed mid-file error.
    #[test]
    fn repair_rejects_mid_file_corruption() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_ckpt_midfile_{}.jsonl", std::process::id()));
        let good = render_record(
            "a::x",
            &PointRecord::Failed {
                attempts: 1,
                error: "e".into(),
            },
        );
        std::fs::write(&path, format!("{{\"key\":\"b::x\",\"sta\n{good}\n")).expect("tmp write");
        let before = std::fs::read_to_string(&path).expect("tmp readable");
        assert!(matches!(
            load_and_repair(&path),
            Err(SimError::Checkpoint(_))
        ));
        assert_eq!(
            std::fs::read_to_string(&path).expect("tmp readable"),
            before,
            "mid-file corruption must be left for a human, not truncated"
        );
        std::fs::remove_file(&path).expect("tmp cleanup");
    }

    /// The streaming loader's parked-failure logic: a torn record
    /// followed only by blank lines is still the tail (skipped, offset
    /// reported), while any later *record* promotes it to a hard error —
    /// and a multi-record file streams into the map intact.
    #[test]
    fn streaming_load_parks_tail_failures_and_streams_records() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_ckpt_stream_{}.jsonl", std::process::id()));
        let mut text = String::new();
        for i in 0..200 {
            let rec = PointRecord::Failed {
                attempts: 1,
                error: format!("err {i}"),
            };
            text.push_str(&render_record(&format!("p{i}::x"), &rec));
            text.push('\n');
        }
        let whole_len = text.len() as u64;
        // Torn tail, then nothing but blank lines: still a torn tail.
        text.push_str("{\"key\":\"torn::x\",\"sta\n\n  \n");
        std::fs::write(&path, &text).expect("tmp write");
        let map = load(&path).expect("blank lines after a torn tail stay a torn tail");
        assert_eq!(map.len(), 200);
        assert!(map.contains_key("p0::x") && map.contains_key("p199::x"));
        // Repair cuts exactly at the torn append's start offset.
        load_and_repair(&path).expect("repairable");
        assert_eq!(
            std::fs::metadata(&path).expect("tmp stat").len(),
            whole_len,
            "repair truncated at the torn line's byte offset"
        );
        std::fs::remove_file(&path).expect("tmp cleanup");
    }

    #[test]
    fn progress_marker_round_trips_and_is_not_a_record() {
        let line = render_progress("mcf::CAMEO", 2);
        assert_eq!(
            parse_line(&line).expect("rendered progress parses"),
            CheckpointLine::Progress {
                key: "mcf::CAMEO".into(),
                attempts: 2
            }
        );
        let err = parse_record(&line).expect_err("progress is not a terminal record");
        assert!(err.contains("chunk-progress"), "{err}");
    }

    /// Progress markers anywhere in the file — not just the tail — are
    /// skipped by the loaders: a killed chunked sweep leaves them behind
    /// and its in-flight points must simply re-run.
    #[test]
    fn load_skips_progress_markers() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_ckpt_progress_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let writer = Writer::open(&path).expect("tmp dir is writable");
        writer
            .append_progress("a::x", 1)
            .expect("progress appends like a record");
        let rec = PointRecord::Failed {
            attempts: 1,
            error: "e".into(),
        };
        writer.append("b::y", &rec).expect("append succeeds");
        writer
            .append_progress("c::z", 3)
            .expect("trailing progress marker");
        let records = load(&path).expect("progress markers never corrupt a load");
        assert_eq!(records.len(), 1);
        assert_eq!(records.get("b::y"), Some(&rec));
        assert!(
            load_and_repair(&path)
                .expect("repair tolerates markers too")
                .len()
                == 1
        );
        std::fs::remove_file(&path).expect("tmp cleanup");
    }

    /// The parked-resume contract: a progress marker for a key with no
    /// terminal record by EOF surfaces in [`ResumeState::parked`], a
    /// later terminal record un-parks its key, and [`load`] stays a
    /// results-only view in both cases.
    #[test]
    fn resume_loader_parks_dangling_progress_markers() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_ckpt_parked_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let writer = Writer::open(&path).expect("tmp dir is writable");
        writer.append_progress("dangling::x", 2).expect("marker");
        writer.append_progress("finished::y", 1).expect("marker");
        let rec = PointRecord::Done {
            attempts: 1,
            stats: Box::new(sample_stats(false)),
        };
        writer.append("finished::y", &rec).expect("append");

        let resume = load_resume(&path).expect("markers never corrupt a load");
        assert_eq!(resume.parked.len(), 1, "only the dangling key is parked");
        assert_eq!(resume.parked.get("dangling::x"), Some(&2));
        assert_eq!(resume.records.get("finished::y"), Some(&rec));
        assert!(!resume.records.contains_key("dangling::x"));

        // The repairing variant sees the same state, and the plain map
        // view still drops markers entirely.
        let repaired = load_and_repair_resume(&path).expect("clean file");
        assert_eq!(repaired, resume);
        assert_eq!(load(&path).expect("loads").len(), 1);
        std::fs::remove_file(&path).expect("tmp cleanup");
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_ckpt_append_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert!(load(&path).expect("missing file is empty").is_empty());
        let rec = PointRecord::Done {
            attempts: 1,
            stats: Box::new(sample_stats(true)),
        };
        append(&path, "astar::CAMEO", &rec).expect("append succeeds");
        let map = load(&path).expect("appended file loads");
        assert_eq!(map.get("astar::CAMEO"), Some(&rec));
        std::fs::remove_file(&path).expect("tmp cleanup");
    }

    /// Hammers one shared [`Writer`] from many threads and verifies the
    /// resulting JSONL has no interleaved or torn records: every line
    /// parses on its own, and every (thread, record) pair is present
    /// exactly once with the payload it wrote.
    #[test]
    fn concurrent_appends_never_tear_records() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50;
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_ckpt_conc_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let writer = Writer::open(&path).expect("tmp dir is writable");
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let writer = &writer;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // A long error string makes torn writes visible.
                        let rec = PointRecord::Failed {
                            attempts: 1,
                            error: format!("t{t}i{i}:").repeat(64),
                        };
                        writer
                            .append(&format!("t{t}::{i}"), &rec)
                            .expect("tmp append succeeds");
                    }
                });
            }
        });
        let text = std::fs::read_to_string(&path).expect("tmp readable");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), THREADS * PER_THREAD as usize);
        for line in &lines {
            let (key, rec) = parse_record(line).expect("every line is a whole record");
            let (t, i) = key
                .split_once("::")
                .map(|(a, b)| (a.trim_start_matches('t').to_owned(), b.to_owned()))
                .expect("key has the t<thread>::<i> shape");
            match rec {
                PointRecord::Failed { error, .. } => {
                    assert_eq!(error, format!("t{t}i{i}:").repeat(64));
                }
                other => panic!("expected failed record, got {other:?}"),
            }
        }
        // And the map view sees every record.
        let map = load(&path).expect("concurrently written file loads");
        assert_eq!(map.len(), THREADS * PER_THREAD as usize);
        std::fs::remove_file(&path).expect("tmp cleanup");
    }
}
