//! CAMEO as a full-system organization: the hardware controller plus the
//! OS that sees the combined (minus LLT reserve) capacity.

use cameo::{Cameo, CameoConfig, LltDesign, PredictionCaseCounts, PredictorKind};
use cameo_types::{
    Access, ByteSize, Cycle, LineAddr, MemKind, NopSink, ServiceLocation, TraceSink,
};
use cameo_vmem::{Placement, Vmm, VmmConfig, PAGE_FAULT_CYCLES};

use crate::org::{MemoryOrganization, OrgResult};
use crate::stats::BandwidthReport;

/// Stacked + off-chip memory under CAMEO hardware management.
///
/// The OS sees one flat space of [`Cameo::visible_capacity`] bytes and
/// places pages randomly; the controller relocates individual lines under
/// the OS without its knowledge.
#[derive(Clone, Debug)]
pub struct CameoOrg<S: TraceSink = NopSink> {
    vmm: Vmm,
    cameo: Cameo<S>,
}

impl CameoOrg {
    /// Creates a CAMEO system with the given LLT design and predictor,
    /// tracing disabled.
    pub fn new(
        stacked: ByteSize,
        off_chip: ByteSize,
        llt: LltDesign,
        predictor: PredictorKind,
        cores: u16,
        llp_entries: usize,
        seed: u64,
    ) -> Self {
        Self::with_sink(
            stacked,
            off_chip,
            llt,
            predictor,
            cores,
            llp_entries,
            seed,
            NopSink,
        )
    }
}

impl<S: TraceSink> CameoOrg<S> {
    /// Creates a CAMEO system emitting trace events into `sink`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_sink(
        stacked: ByteSize,
        off_chip: ByteSize,
        llt: LltDesign,
        predictor: PredictorKind,
        cores: u16,
        llp_entries: usize,
        seed: u64,
        sink: S,
    ) -> Self {
        Self::with_sink_on(
            cameo_memsim::DramConfig::stacked(stacked),
            cameo_memsim::DramConfig::off_chip(off_chip),
            llt,
            predictor,
            cores,
            llp_entries,
            seed,
            sink,
        )
    }

    /// Creates a CAMEO system on explicit device models (e.g. a
    /// tiered-latency TL-DRAM stacked die); capacities are taken from the
    /// configs and passed through to the controller.
    #[allow(clippy::too_many_arguments)]
    pub fn with_sink_on(
        stacked_dev: cameo_memsim::DramConfig,
        off_chip_dev: cameo_memsim::DramConfig,
        llt: LltDesign,
        predictor: PredictorKind,
        cores: u16,
        llp_entries: usize,
        seed: u64,
        sink: S,
    ) -> Self {
        let cameo = Cameo::with_sink_on(
            CameoConfig {
                stacked: stacked_dev.capacity,
                off_chip: off_chip_dev.capacity,
                llt,
                predictor,
                cores,
                llp_entries,
            },
            stacked_dev,
            off_chip_dev,
            sink,
        );
        let vmm = Vmm::new(VmmConfig {
            // The OS has no notion of fast/slow regions under CAMEO: one
            // flat visible space, randomly placed.
            stacked: ByteSize::ZERO,
            off_chip: cameo.visible_capacity(),
            placement: Placement::Random,
            seed,
        });
        Self { vmm, cameo }
    }

    /// The underlying controller (for LLT/predictor statistics).
    pub fn controller(&self) -> &Cameo<S> {
        &self.cameo
    }

    /// Switches the swap policy (builder-style), e.g. to the
    /// frequency-filtered extension of the paper's Section VI-D.
    pub fn with_swap_policy(mut self, policy: cameo::SwapPolicy) -> Self {
        self.cameo.set_swap_policy(policy);
        self
    }

    /// Arms the controller's devices with seeded fault injection
    /// (builder-style). Inert when `cfg` has all rates at zero.
    #[cfg(feature = "faults")]
    pub fn with_fault_injection(
        mut self,
        cfg: cameo_memsim::faults::FaultConfig,
        seed: u64,
    ) -> Self {
        self.cameo.inject_faults(cfg, seed);
        self
    }

    /// Selects the fault-recovery policy (builder-style); default is
    /// [`cameo::recovery::RecoveryConfig::none`].
    #[cfg(feature = "faults")]
    pub fn with_recovery(mut self, cfg: cameo::recovery::RecoveryConfig) -> Self {
        self.cameo.set_recovery(cfg);
        self
    }

    fn org_name(llt: LltDesign, predictor: PredictorKind) -> &'static str {
        match (llt, predictor) {
            (LltDesign::Ideal, _) => "CAMEO(Ideal-LLT)",
            (LltDesign::Sram, _) => "CAMEO(SRAM-LLT)",
            (LltDesign::Embedded, _) => "CAMEO(Embedded-LLT)",
            (LltDesign::CoLocated, PredictorKind::SerialAccess) => "CAMEO(SAM)",
            (LltDesign::CoLocated, PredictorKind::Llp) => "CAMEO",
            (LltDesign::CoLocated, PredictorKind::Perfect) => "CAMEO(PerfectLLP)",
        }
    }
}

impl<S: TraceSink> MemoryOrganization for CameoOrg<S> {
    fn name(&self) -> &'static str {
        Self::org_name(self.cameo.config().llt, self.cameo.config().predictor)
    }

    fn access(&mut self, now: Cycle, access: &Access) -> OrgResult {
        let t = self
            .vmm
            .translate(access.line.page(), access.kind.is_write());
        if let Some(fault) = t.fault {
            // The line arrives with the page-in; no controller access is
            // made on behalf of the faulting request.
            let first = LineAddr::new(t.phys.first_line().raw());
            if fault.evicted.is_some_and(|(_, dirty)| dirty) {
                self.cameo.bulk_page_read(now, first);
            }
            self.cameo.bulk_page_write(now, first);
            return OrgResult {
                completion: now + Cycle::new(PAGE_FAULT_CYCLES),
                serviced_by: ServiceLocation::Storage,
                faulted: true,
            };
        }
        let phys = Access {
            line: LineAddr::new(t.phys.line(access.line.offset_in_page()).raw()),
            ..*access
        };
        let r = self.cameo.access(now, &phys);
        OrgResult {
            completion: r.completion,
            serviced_by: match r.serviced_by {
                MemKind::Stacked => ServiceLocation::Stacked,
                MemKind::OffChip => ServiceLocation::OffChip,
            },
            faulted: false,
        }
    }

    fn visible_capacity(&self) -> ByteSize {
        self.cameo.visible_capacity()
    }

    fn bandwidth(&self) -> BandwidthReport {
        BandwidthReport {
            stacked_bytes: self.cameo.stacked().stats().bytes_total(),
            off_chip_bytes: self.cameo.off_chip().stats().bytes_total(),
            storage_bytes: self.vmm.stats().storage_bytes(),
        }
    }

    fn faults(&self) -> u64 {
        self.vmm.stats().faults
    }

    fn service_counts(&self) -> (u64, u64) {
        let s = self.cameo.stats();
        (s.serviced_stacked, s.serviced_off_chip)
    }

    fn prediction_cases(&self) -> Option<PredictionCaseCounts> {
        matches!(self.cameo.config().llt, LltDesign::CoLocated).then(|| self.cameo.stats().cases)
    }

    fn prefill(&mut self, page: cameo_types::PageAddr) {
        self.vmm.translate(page, false);
    }

    fn prefill_batch(&mut self, pages: &[cameo_types::PageAddr]) {
        self.vmm.translate_batch(pages, false);
    }

    fn reset_stats(&mut self) {
        self.cameo.reset_stats();
        self.vmm.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::CoreId;

    fn org() -> CameoOrg {
        CameoOrg::new(
            ByteSize::from_mib(1),
            ByteSize::from_mib(3),
            LltDesign::CoLocated,
            PredictorKind::Llp,
            2,
            64,
            3,
        )
    }

    #[test]
    fn full_capacity_minus_reserve_visible() {
        let o = org();
        assert_eq!(
            o.visible_capacity(),
            ByteSize::from_mib(4) - ByteSize::from_kib(32)
        );
        assert_eq!(o.name(), "CAMEO");
    }

    #[test]
    fn repeated_access_migrates_to_stacked() {
        let mut o = org();
        let a = Access::read(CoreId(0), LineAddr::new(777), 0x40);
        let r1 = o.access(Cycle::ZERO, &a);
        assert!(r1.faulted);
        // Wherever the page landed, the second read promotes (or already
        // finds) the line in stacked memory; the third must be stacked.
        let r2 = o.access(r1.completion, &a);
        let r3 = o.access(r2.completion, &a);
        assert_eq!(r3.serviced_by, ServiceLocation::Stacked);
    }

    #[test]
    fn prediction_cases_exposed() {
        let mut o = org();
        let a = Access::read(CoreId(0), LineAddr::new(123), 0x40);
        let r1 = o.access(Cycle::ZERO, &a); // page fault: no prediction made
        o.access(r1.completion, &a);
        let cases = o.prediction_cases().expect("co-located design predicts");
        assert_eq!(cases.total(), 1);
    }

    #[test]
    fn ideal_design_reports_no_cases() {
        let o = CameoOrg::new(
            ByteSize::from_mib(1),
            ByteSize::from_mib(3),
            LltDesign::Ideal,
            PredictorKind::SerialAccess,
            1,
            64,
            3,
        );
        assert!(o.prediction_cases().is_none());
        assert_eq!(o.name(), "CAMEO(Ideal-LLT)");
    }
}
