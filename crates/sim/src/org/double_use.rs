//! DoubleUse: the paper's idealistic upper bound (Section II-D).
//!
//! Stacked DRAM serves as an Alloy cache **and** main memory magically
//! grows by the stacked capacity. Physically impossible — the same
//! gigabytes are counted twice — but it bounds what a design that gets both
//! capacity and fine-grained locality could achieve, and CAMEO's claim is
//! to come within a few percent of it.

use cameo_types::{Access, ByteSize, Cycle};
use cameo_vmem::{Placement, Vmm, VmmConfig};

use crate::org::alloy_org::AlloyCacheOrg;
use crate::org::{MemoryOrganization, OrgResult};
use crate::stats::BandwidthReport;

/// The DoubleUse organization: an Alloy cache over a memory that is
/// idealistically enlarged by the stacked capacity.
#[derive(Clone, Debug)]
pub struct DoubleUseOrg {
    inner: AlloyCacheOrg,
    visible: ByteSize,
}

impl DoubleUseOrg {
    /// Creates the idealized system: visible memory `stacked + off_chip`,
    /// plus a stacked cache of `stacked` bytes.
    pub fn new(stacked: ByteSize, off_chip: ByteSize, cores: u16, seed: u64) -> Self {
        let visible = stacked + off_chip;
        let vmm = Vmm::new(VmmConfig {
            stacked: ByteSize::ZERO,
            off_chip: visible,
            placement: Placement::Random,
            seed,
        });
        Self {
            inner: AlloyCacheOrg::with_vmm(vmm, stacked, visible, cores),
            visible,
        }
    }
}

impl MemoryOrganization for DoubleUseOrg {
    fn name(&self) -> &'static str {
        "DoubleUse"
    }

    fn access(&mut self, now: Cycle, access: &Access) -> OrgResult {
        self.inner.access(now, access)
    }

    fn visible_capacity(&self) -> ByteSize {
        self.visible
    }

    fn bandwidth(&self) -> BandwidthReport {
        self.inner.bandwidth()
    }

    fn faults(&self) -> u64 {
        self.inner.faults()
    }

    fn service_counts(&self) -> (u64, u64) {
        self.inner.service_counts()
    }

    fn prefill(&mut self, page: cameo_types::PageAddr) {
        self.inner.prefill(page);
    }

    fn prefill_batch(&mut self, pages: &[cameo_types::PageAddr]) {
        self.inner.prefill_batch(pages);
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::{CoreId, LineAddr, ServiceLocation};

    #[test]
    fn visible_capacity_is_enlarged() {
        let o = DoubleUseOrg::new(ByteSize::from_mib(1), ByteSize::from_mib(3), 1, 9);
        assert_eq!(o.visible_capacity(), ByteSize::from_mib(4));
        assert_eq!(o.name(), "DoubleUse");
    }

    #[test]
    fn caches_like_alloy() {
        let mut o = DoubleUseOrg::new(ByteSize::from_mib(1), ByteSize::from_mib(3), 1, 9);
        let a = Access::read(CoreId(0), LineAddr::new(42), 0x40);
        let r1 = o.access(Cycle::ZERO, &a);
        assert!(r1.faulted);
        let r2 = o.access(r1.completion, &a); // cold miss fills the cache
        let r3 = o.access(r2.completion, &a);
        assert_eq!(r3.serviced_by, ServiceLocation::Stacked);
    }
}
