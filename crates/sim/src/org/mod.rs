//! Memory organizations: one implementation per design point the paper
//! compares.
//!
//! | Organization | Visible memory | Stacked DRAM role |
//! |---|---|---|
//! | [`BaselineOrg`] | off-chip only | absent |
//! | [`AlloyCacheOrg`] | off-chip only | hardware cache (Alloy) |
//! | [`LohHillCacheOrg`] | off-chip only | hardware cache (Loh-Hill + MissMap) |
//! | [`TlmOrg`] (Static/Dynamic/Freq/Oracle) | stacked + off-chip | OS-managed fast region |
//! | [`MemCacheOrg`] | split of stacked + off-chip | part OS memory, part hardware cache |
//! | [`CameoOrg`] | stacked + off-chip − LLT reserve | hardware-swapped memory |
//! | [`DoubleUseOrg`] | stacked + off-chip | cache *and* extra capacity (idealistic) |
//!
//! Every organization owns its devices and OS state and exposes the single
//! [`MemoryOrganization::access`] entry point the runner drives.

mod alloy_org;
mod baseline;
mod cameo_org;
mod double_use;
mod lh_org;
mod memcache_org;
mod paging;
mod tlm_org;

pub use alloy_org::AlloyCacheOrg;
pub use baseline::BaselineOrg;
pub use cameo_org::CameoOrg;
pub use double_use::DoubleUseOrg;
pub use lh_org::LohHillCacheOrg;
pub use memcache_org::MemCacheOrg;
pub use tlm_org::{TlmOrg, TlmPolicy};

use cameo::PredictionCaseCounts;
use cameo_types::{Access, ByteSize, Cycle, ServiceLocation};

use crate::stats::BandwidthReport;

/// Result of one organization-level access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OrgResult {
    /// Cycle the demanded data is available to the core.
    pub completion: Cycle,
    /// Where the demand was serviced.
    pub serviced_by: ServiceLocation,
    /// Whether a page fault was taken on the way.
    pub faulted: bool,
}

/// A complete memory system under test: OS + devices + management policy.
///
/// Accesses carry *virtual* line addresses; the organization performs its
/// own translation, paging, and device routing.
///
/// `Send` is a supertrait: the chunked sweep engine parks an in-progress
/// point's organization between chunks and lets any worker resume it, so
/// a boxed organization must be free to migrate across threads.
pub trait MemoryOrganization: Send {
    /// Short label for reports (e.g. `"CAMEO"`, `"TLM-Dynamic"`).
    fn name(&self) -> &'static str;

    /// Services one post-L3 request issued at `now`.
    fn access(&mut self, now: Cycle, access: &Access) -> OrgResult;

    /// OS-visible memory capacity.
    fn visible_capacity(&self) -> ByteSize;

    /// Bus traffic accumulated since the last stats reset.
    fn bandwidth(&self) -> BandwidthReport;

    /// Page faults since the last stats reset.
    fn faults(&self) -> u64;

    /// Demand reads serviced by (stacked, off-chip) since the last reset.
    fn service_counts(&self) -> (u64, u64);

    /// Location-prediction case counters, if this organization predicts.
    fn prediction_cases(&self) -> Option<PredictionCaseCounts> {
        None
    }

    /// Pages moved by migration since the last reset.
    fn migrated_pages(&self) -> u64 {
        0
    }

    /// Pre-touches a virtual page at zero cost, as if the workload had
    /// already been running before the simulated slice (the paper measures
    /// mid-execution slices, so memory starts populated). When the
    /// footprint exceeds visible memory the prefill itself evicts, leaving
    /// the genuine capacity-miss behaviour to the timed run; what it
    /// removes is the compulsory-fault transient that a short slice would
    /// otherwise overstate.
    fn prefill(&mut self, page: cameo_types::PageAddr);

    /// Pre-touches a batch of virtual pages, in slice order, with
    /// per-page effects identical to calling [`Self::prefill`] on each.
    /// Organizations backed by a [`cameo_vmem::Vmm`] override this with
    /// one batched translation call so the (large) prefill transient
    /// pays the page-table sizing and dispatch cost once instead of per
    /// page.
    fn prefill_batch(&mut self, pages: &[cameo_types::PageAddr]) {
        for &page in pages {
            self.prefill(page);
        }
    }

    /// Clears all counters while keeping residency/mapping state — called
    /// when the measured region begins after warmup.
    fn reset_stats(&mut self);
}
