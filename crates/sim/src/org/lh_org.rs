//! The Loh-Hill DRAM cache (MICRO 2011) — the set-associative
//! tags-in-DRAM design the paper cites alongside Alloy ([10] in the
//! paper; Alloy's own evaluation is largely a comparison against it).
//!
//! A 2 KiB stacked-DRAM row is one set: 3 of its 32 lines hold tags, the
//! remaining 29 are data ways. Every hit therefore costs *two* same-row
//! accesses (tag lines, then the data way); a **MissMap** — a presence
//! table held in SRAM/L3 — lets misses skip the stacked probe entirely and
//! go straight to memory. We model the MissMap as a precise presence bitmap
//! with an L3-like lookup latency (the real 2 MB MissMap has its own
//! misses; the simplification *favors* LH, which makes the Alloy-beats-LH
//! comparison conservative).

use cameo_cachesim::{CacheConfig, Replacement, SetAssocCache};
use cameo_memsim::{Dram, DramConfig};
use cameo_types::{Access, ByteSize, Cycle, LineAddr, ServiceLocation, LINES_PER_PAGE};
use cameo_vmem::{Placement, Vmm, VmmConfig};

use crate::org::paging::service_fault;
use crate::org::{MemoryOrganization, OrgResult};
use crate::stats::BandwidthReport;

/// Data ways per 32-line row (3 lines hold the 29 ways' tags).
const WAYS_PER_SET: u32 = 29;

/// Bytes of tag information read per probe (three 64-byte tag lines).
const TAG_BYTES: u32 = 192;

/// MissMap lookup latency: the paper's L3 latency (the MissMap lives
/// there).
const MISSMAP_CYCLES: u64 = 24;

/// Stacked DRAM as a Loh-Hill set-associative DRAM cache with a MissMap.
#[derive(Clone, Debug)]
pub struct LohHillCacheOrg {
    vmm: Vmm,
    stacked: Dram,
    off_chip: Dram,
    directory: SetAssocCache,
    /// Precise presence bitmap over visible physical lines (ideal MissMap).
    missmap: Vec<u64>,
    sets: u64,
    hits: u64,
    misses: u64,
}

impl LohHillCacheOrg {
    /// Creates the organization: `stacked` bytes of LH cache over
    /// `off_chip` bytes of visible memory.
    ///
    /// # Panics
    ///
    /// Panics if `stacked` holds less than one 32-line row.
    pub fn new(stacked: ByteSize, off_chip: ByteSize, seed: u64) -> Self {
        let sets = stacked.lines() / 32;
        assert!(sets > 0, "LH cache needs at least one row");
        let directory = SetAssocCache::with_policy(
            CacheConfig {
                capacity: ByteSize::from_lines(sets * u64::from(WAYS_PER_SET)),
                ways: WAYS_PER_SET,
                latency: Cycle::new(0),
            },
            Replacement::Lru,
        );
        let missmap_words = (off_chip.lines() as usize).div_ceil(64);
        Self {
            vmm: Vmm::new(VmmConfig {
                stacked: ByteSize::ZERO,
                off_chip,
                placement: Placement::Random,
                seed,
            }),
            stacked: Dram::new(DramConfig::stacked(stacked)),
            off_chip: Dram::new(DramConfig::off_chip(off_chip)),
            directory,
            missmap: vec![0; missmap_words],
            sets,
            hits: 0,
            misses: 0,
        }
    }

    /// Hit rate of the DRAM cache, `None` before any demand read.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    fn present(&self, line: LineAddr) -> bool {
        let idx = line.raw() as usize;
        self.missmap[idx / 64] & (1 << (idx % 64)) != 0
    }

    fn set_present(&mut self, line: LineAddr, present: bool) {
        let idx = line.raw() as usize;
        if present {
            self.missmap[idx / 64] |= 1 << (idx % 64);
        } else {
            self.missmap[idx / 64] &= !(1 << (idx % 64));
        }
    }

    /// Device line of the set's row (tags live at the row's start; the
    /// data way follows in the same row, so the second access is a row
    /// hit).
    fn row_line(&self, line: LineAddr) -> u64 {
        (line.raw() % self.sets) * 32
    }

    fn fill(&mut self, now: Cycle, phys: LineAddr, dirty: bool) {
        if let Some(victim) = self.directory.access(phys, dirty).evicted {
            self.set_present(victim.line, false);
            if victim.dirty {
                self.off_chip.write_line(now, victim.line.raw());
            }
        }
        self.set_present(phys, true);
        // Install the data way and update the tag line (posted).
        let row = self.row_line(phys);
        self.stacked.write_line(now, row + 8);
        self.stacked.write_line(now, row);
    }

    fn read(&mut self, now: Cycle, phys: LineAddr) -> (Cycle, ServiceLocation) {
        let after_missmap = now + Cycle::new(MISSMAP_CYCLES);
        if self.present(phys) {
            self.hits += 1;
            // Tag lines, then the data way out of the (now open) row.
            let row = self.row_line(phys);
            let tags_done = self.stacked.access(after_missmap, row, false, TAG_BYTES);
            let data_done = self.stacked.read_line(tags_done, row + 8);
            // LRU update.
            let out = self.directory.access(phys, false);
            debug_assert!(out.hit, "missmap and directory must agree");
            (data_done, ServiceLocation::Stacked)
        } else {
            self.misses += 1;
            // The MissMap saves the probe: straight to memory.
            let fetch = self.off_chip.read_line(after_missmap, phys.raw());
            self.fill(now, phys, false);
            (fetch, ServiceLocation::OffChip)
        }
    }

    fn write(&mut self, now: Cycle, phys: LineAddr) -> (Cycle, ServiceLocation) {
        let after_missmap = now + Cycle::new(MISSMAP_CYCLES);
        if self.present(phys) {
            let row = self.row_line(phys);
            let done = self.stacked.write_line(after_missmap, row + 8);
            let out = self.directory.access(phys, true);
            debug_assert!(out.hit, "missmap and directory must agree");
            (done, ServiceLocation::Stacked)
        } else {
            // Write-no-allocate, like the Alloy organization.
            let done = self.off_chip.write_line(after_missmap, phys.raw());
            (done, ServiceLocation::OffChip)
        }
    }

    fn invalidate_frame(&mut self, frame_first_line: u64) {
        for i in 0..LINES_PER_PAGE as u64 {
            let line = LineAddr::new(frame_first_line + i);
            if self.present(line) {
                self.directory.invalidate(line);
                self.set_present(line, false);
            }
        }
    }
}

impl MemoryOrganization for LohHillCacheOrg {
    fn name(&self) -> &'static str {
        "Cache(LH)"
    }

    fn access(&mut self, now: Cycle, access: &Access) -> OrgResult {
        let t = self
            .vmm
            .translate(access.line.page(), access.kind.is_write());
        if let Some(fault) = t.fault {
            let done = service_fault(&mut self.off_chip, now, t.phys.first_line().raw(), &fault);
            self.invalidate_frame(t.phys.first_line().raw());
            return OrgResult {
                completion: done,
                serviced_by: ServiceLocation::Storage,
                faulted: true,
            };
        }
        let phys = LineAddr::new(t.phys.line(access.line.offset_in_page()).raw());
        let (completion, serviced_by) = if access.kind.is_write() {
            self.write(now, phys)
        } else {
            self.read(now, phys)
        };
        OrgResult {
            completion,
            serviced_by,
            faulted: false,
        }
    }

    fn visible_capacity(&self) -> ByteSize {
        self.vmm.config().off_chip
    }

    fn bandwidth(&self) -> BandwidthReport {
        BandwidthReport {
            stacked_bytes: self.stacked.stats().bytes_total(),
            off_chip_bytes: self.off_chip.stats().bytes_total(),
            storage_bytes: self.vmm.stats().storage_bytes(),
        }
    }

    fn faults(&self) -> u64 {
        self.vmm.stats().faults
    }

    fn service_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn prefill(&mut self, page: cameo_types::PageAddr) {
        self.vmm.translate(page, false);
    }

    fn prefill_batch(&mut self, pages: &[cameo_types::PageAddr]) {
        self.vmm.translate_batch(pages, false);
    }

    fn reset_stats(&mut self) {
        self.stacked.reset_stats();
        self.off_chip.reset_stats();
        self.vmm.reset_stats();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::CoreId;

    fn org() -> LohHillCacheOrg {
        LohHillCacheOrg::new(ByteSize::from_mib(1), ByteSize::from_mib(3), 5)
    }

    #[test]
    fn fill_then_hit() {
        let mut o = org();
        let a = Access::read(CoreId(0), LineAddr::new(500), 0x40);
        let r1 = o.access(Cycle::ZERO, &a);
        assert!(r1.faulted);
        let r2 = o.access(r1.completion, &a); // cold miss fills
        assert_eq!(r2.serviced_by, ServiceLocation::OffChip);
        let r3 = o.access(r2.completion, &a);
        assert_eq!(r3.serviced_by, ServiceLocation::Stacked);
        assert_eq!(o.hit_rate(), Some(0.5));
    }

    #[test]
    fn hit_costs_more_than_alloy() {
        // LH reads tag lines before the data way: its hit latency exceeds
        // Alloy's single-TAD probe — the Alloy paper's core observation.
        use crate::org::AlloyCacheOrg;
        let mut lh = org();
        let mut alloy = AlloyCacheOrg::new(ByteSize::from_mib(1), ByteSize::from_mib(3), 1, 5);
        let a = Access::read(CoreId(0), LineAddr::new(500), 0x40);
        // Fault + fill both.
        let f1 = lh.access(Cycle::ZERO, &a);
        let f2 = lh.access(f1.completion, &a);
        let t_lh_start = f2.completion;
        let lh_hit = lh.access(t_lh_start, &a).completion - t_lh_start;

        let g1 = alloy.access(Cycle::ZERO, &a);
        let g2 = alloy.access(g1.completion, &a);
        let t_alloy_start = g2.completion;
        let alloy_hit = alloy.access(t_alloy_start, &a).completion - t_alloy_start;
        assert!(
            lh_hit > alloy_hit,
            "LH hit {lh_hit:?} must exceed Alloy hit {alloy_hit:?}"
        );
    }

    #[test]
    fn missmap_skips_probe_on_misses() {
        let mut o = org();
        let a = Access::read(CoreId(0), LineAddr::new(500), 0x40);
        let r1 = o.access(Cycle::ZERO, &a); // fault
        let before = o.stacked.stats().demand_reads;
        // A different, uncached line in the same page: miss goes straight
        // to off-chip; the stacked device sees no probe read.
        let b = Access::read(CoreId(0), LineAddr::new(501), 0x40);
        o.access(r1.completion, &b);
        assert_eq!(o.stacked.stats().demand_reads, before);
    }

    #[test]
    fn set_associativity_avoids_direct_mapped_conflicts() {
        // Two lines mapping to the same set coexist in LH (29 ways) where
        // Alloy's direct-mapped cache would ping-pong.
        let mut o = org();
        let sets = o.sets;
        let a = Access::read(CoreId(0), LineAddr::new(7), 0x40);
        let conflicting = Access::read(CoreId(0), LineAddr::new(7 + sets), 0x40);
        let mut now = Cycle::ZERO;
        for access in [&a, &conflicting, &a, &conflicting] {
            now = o.access(now, access).completion;
        }
        // Second round of both: hits (each faulted once and missed once).
        let r1 = o.access(now, &a);
        let r2 = o.access(r1.completion, &conflicting);
        assert_eq!(r1.serviced_by, ServiceLocation::Stacked);
        assert_eq!(r2.serviced_by, ServiceLocation::Stacked);
    }

    #[test]
    fn capacity_is_29_of_32() {
        let o = org();
        let data_lines = o.directory.config().capacity.lines();
        assert_eq!(data_lines, ByteSize::from_mib(1).lines() / 32 * 29);
    }
}
