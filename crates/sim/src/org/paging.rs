//! Shared page-fault servicing: SSD latency plus the DRAM traffic of
//! moving 4 KiB pages in and out.

use cameo_memsim::Dram;
use cameo_types::{Cycle, PAGE_BYTES};
use cameo_vmem::{FaultInfo, PAGE_FAULT_CYCLES};

/// Charges the DRAM side of servicing a page fault on `device` (the device
/// backing the granted frame): a bulk 4 KiB write for the page coming in,
/// preceded by a bulk read if a dirty victim page had to be written back to
/// storage first. Returns the cycle the faulting access may proceed —
/// dominated by the paper's 100 K-cycle SSD latency, with the DRAM
/// transfers overlapped under it.
pub(crate) fn service_fault(
    device: &mut Dram,
    now: Cycle,
    frame_first_line: u64,
    fault: &FaultInfo,
) -> Cycle {
    if fault.evicted.is_some_and(|(_, dirty)| dirty) {
        device.access(now, frame_first_line, false, PAGE_BYTES as u32);
    }
    let dram_done = device.access(now, frame_first_line, true, PAGE_BYTES as u32);
    (now + Cycle::new(PAGE_FAULT_CYCLES)).later(dram_done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_memsim::DramConfig;
    use cameo_types::ByteSize;

    #[test]
    fn fault_costs_ssd_latency_and_moves_bytes() {
        let mut d = Dram::new(DramConfig::off_chip(ByteSize::from_mib(16)));
        let f = FaultInfo { evicted: None };
        let done = service_fault(&mut d, Cycle::new(10), 0, &f);
        assert_eq!(done, Cycle::new(10 + PAGE_FAULT_CYCLES));
        assert_eq!(d.stats().bytes_written, 4096);
        assert_eq!(d.stats().bytes_read, 0);
    }

    #[test]
    fn dirty_eviction_reads_page_out() {
        let mut d = Dram::new(DramConfig::off_chip(ByteSize::from_mib(16)));
        let f = FaultInfo {
            evicted: Some((cameo_types::PageAddr::new(3), true)),
        };
        service_fault(&mut d, Cycle::ZERO, 64, &f);
        assert_eq!(d.stats().bytes_read, 4096);
        assert_eq!(d.stats().bytes_written, 4096);
    }

    #[test]
    fn clean_eviction_skips_readout() {
        let mut d = Dram::new(DramConfig::off_chip(ByteSize::from_mib(16)));
        let f = FaultInfo {
            evicted: Some((cameo_types::PageAddr::new(3), false)),
        };
        service_fault(&mut d, Cycle::ZERO, 64, &f);
        assert_eq!(d.stats().bytes_read, 0);
    }
}
