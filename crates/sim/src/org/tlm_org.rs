//! Two-Level Memory organizations: stacked DRAM as OS-visible fast memory
//! (paper Sections II-B/C and VI-D).

use cameo_memsim::{Dram, DramConfig};
use cameo_types::{
    Access, ByteSize, Cycle, NopSink, PageAddr, ServiceLocation, TraceEvent, TraceSink, PAGE_BYTES,
};
use cameo_vmem::tlm::{DynamicMigrator, FreqMigrator, MigrationTraffic, OracleProfile};
use cameo_vmem::{Placement, Vmm, VmmConfig};

use crate::org::paging::service_fault;
use crate::org::{MemoryOrganization, OrgResult};
use crate::stats::BandwidthReport;

/// The OS page-placement policy of a TLM system.
#[derive(Clone, Debug)]
pub enum TlmPolicy {
    /// Locality-oblivious random placement across both regions.
    Static,
    /// Swap-on-touch page migration into stacked memory.
    Dynamic(DynamicMigrator),
    /// Epoch-based promotion of the hottest pages.
    Freq(FreqMigrator),
    /// Profiled placement: hot pages are faulted straight into stacked
    /// frames and never migrate.
    Oracle(OracleProfile),
}

impl TlmPolicy {
    fn label(&self) -> &'static str {
        match self {
            TlmPolicy::Static => "TLM-Static",
            TlmPolicy::Dynamic(_) => "TLM-Dynamic",
            TlmPolicy::Freq(_) => "TLM-Freq",
            TlmPolicy::Oracle(_) => "TLM-Oracle",
        }
    }
}

/// A Two-Level Memory system: both device capacities are OS-visible;
/// frames `0..stacked_pages` live in stacked DRAM.
#[derive(Clone, Debug)]
pub struct TlmOrg<S: TraceSink = NopSink> {
    vmm: Vmm,
    stacked: Dram,
    off_chip: Dram,
    stacked_lines: u64,
    policy: TlmPolicy,
    reads_stacked: u64,
    reads_off_chip: u64,
    migrated_pages: u64,
    /// Migration bytes awaiting issue on each device (drained a chunk at a
    /// time so a large rebalance batch spreads over the epoch instead of
    /// monopolizing a bus at one instant).
    pending_stacked_bytes: u64,
    pending_off_bytes: u64,
    /// Rotates the addresses migration chunks are charged to, spreading
    /// them over channels and banks.
    migration_cursor: u64,
    sink: S,
}

impl TlmOrg {
    /// Creates a TLM system with the given policy, tracing disabled.
    pub fn new(stacked: ByteSize, off_chip: ByteSize, policy: TlmPolicy, seed: u64) -> Self {
        Self::with_sink(stacked, off_chip, policy, seed, NopSink)
    }
}

impl<S: TraceSink> TlmOrg<S> {
    /// Creates a TLM system emitting trace events into `sink`.
    pub fn with_sink(
        stacked: ByteSize,
        off_chip: ByteSize,
        policy: TlmPolicy,
        seed: u64,
        sink: S,
    ) -> Self {
        Self::with_sink_on(
            DramConfig::stacked(stacked),
            DramConfig::off_chip(off_chip),
            policy,
            seed,
            sink,
        )
    }

    /// Creates a TLM system on explicit device models (e.g. a
    /// tiered-latency TL-DRAM stacked die); capacities are taken from the
    /// configs.
    pub fn with_sink_on(
        stacked_dev: DramConfig,
        off_chip_dev: DramConfig,
        policy: TlmPolicy,
        seed: u64,
        sink: S,
    ) -> Self {
        let stacked = stacked_dev.capacity;
        let off_chip = off_chip_dev.capacity;
        let placement = match policy {
            // Oracle decides per page at fault time; others place randomly.
            TlmPolicy::Oracle(_) => Placement::OffChipFirst,
            _ => Placement::Random,
        };
        Self {
            vmm: Vmm::new(VmmConfig {
                stacked,
                off_chip,
                placement,
                seed,
            }),
            stacked: Dram::new(stacked_dev),
            off_chip: Dram::new(off_chip_dev),
            stacked_lines: stacked.lines(),
            policy,
            reads_stacked: 0,
            reads_off_chip: 0,
            migrated_pages: 0,
            pending_stacked_bytes: 0,
            pending_off_bytes: 0,
            migration_cursor: 0,
            sink,
        }
    }

    /// Routes a physical line to its device and performs the access.
    fn device_access(
        &mut self,
        now: Cycle,
        phys_line: u64,
        is_write: bool,
    ) -> (Cycle, ServiceLocation) {
        if phys_line < self.stacked_lines {
            let done = self.stacked.access(now, phys_line, is_write, 64);
            (done, ServiceLocation::Stacked)
        } else {
            let done = self
                .off_chip
                .access(now, phys_line - self.stacked_lines, is_write, 64);
            (done, ServiceLocation::OffChip)
        }
    }

    /// Charges a swap-on-touch migration immediately: TLM-Dynamic's page
    /// swap is demand-coupled ("both memory modules must read and write the
    /// respective 4 KB pages"), so its traffic contends with the access
    /// stream right away.
    fn charge_migration_now(&mut self, now: Cycle, traffic: &MigrationTraffic, page: PageAddr) {
        self.migrated_pages += u64::from(traffic.pages_moved);
        let stacked_line = page.first_line().raw() % self.stacked_lines.max(1);
        let mut remaining = traffic.stacked_bytes;
        let mut write = true;
        while remaining > 0 {
            let chunk = remaining.min(PAGE_BYTES as u64) as u32;
            self.stacked.access(now, stacked_line, write, chunk);
            write = !write;
            remaining -= u64::from(chunk);
        }
        let off_lines = self.vmm.config().off_chip.lines().max(1);
        let off_line = page.first_line().raw() % off_lines;
        let mut remaining = traffic.off_chip_bytes;
        let mut write = false;
        while remaining > 0 {
            let chunk = remaining.min(PAGE_BYTES as u64) as u32;
            self.off_chip.access(now, off_line, write, chunk);
            write = !write;
            remaining -= u64::from(chunk);
        }
    }

    /// Queues epoch-rebalance traffic; it is drained in page-sized chunks
    /// by [`TlmOrg::drain_migration`] on subsequent accesses, so a large
    /// TLM-Freq batch spreads over the epoch the way an OS migration daemon
    /// would, instead of monopolizing a bus at one instant.
    fn charge_migration(&mut self, now: Cycle, traffic: &MigrationTraffic, page: PageAddr) {
        let _ = page;
        self.migrated_pages += u64::from(traffic.pages_moved);
        self.pending_stacked_bytes += traffic.stacked_bytes;
        self.pending_off_bytes += traffic.off_chip_bytes;
        self.drain_migration(now);
    }

    /// Issues at most one page-sized chunk of pending migration traffic per
    /// device, alternating read/write and rotating addresses across rows so
    /// the load spreads over channels and banks.
    fn drain_migration(&mut self, now: Cycle) {
        self.migration_cursor = self.migration_cursor.wrapping_add(1);
        // 32-line stride = one DRAM row: consecutive chunks land on
        // different channels under the row-interleaved mapping.
        let stride = self.migration_cursor * 32;
        if self.pending_stacked_bytes > 0 {
            let chunk = self.pending_stacked_bytes.min(PAGE_BYTES as u64) as u32;
            let line = stride % self.stacked_lines.max(1);
            let write = self.migration_cursor.is_multiple_of(2);
            self.stacked.access(now, line, write, chunk);
            self.pending_stacked_bytes -= u64::from(chunk);
        }
        if self.pending_off_bytes > 0 {
            let chunk = self.pending_off_bytes.min(PAGE_BYTES as u64) as u32;
            let off_lines = self.vmm.config().off_chip.lines().max(1);
            let line = stride % off_lines;
            let write = self.migration_cursor % 2 == 1;
            self.off_chip.access(now, line, write, chunk);
            self.pending_off_bytes -= u64::from(chunk);
        }
    }
}

impl<S: TraceSink> MemoryOrganization for TlmOrg<S> {
    fn name(&self) -> &'static str {
        self.policy.label()
    }

    fn access(&mut self, now: Cycle, access: &Access) -> OrgResult {
        let page = access.line.page();
        let is_write = access.kind.is_write();
        // Oracle steers hot pages into stacked frames at fault time.
        let t = match &self.policy {
            TlmPolicy::Oracle(profile) => {
                let region = profile.region_for(page);
                self.vmm.translate_in(page, is_write, region)
            }
            _ => self.vmm.translate(page, is_write),
        };
        if let Some(fault) = t.fault {
            // The line arrives with the page-in; the OS placement at fault
            // time stands in for migration on this touch.
            let frame_line = t.phys.first_line().raw();
            let done = if frame_line < self.stacked_lines {
                service_fault(&mut self.stacked, now, frame_line, &fault)
            } else {
                service_fault(
                    &mut self.off_chip,
                    now,
                    frame_line - self.stacked_lines,
                    &fault,
                )
            };
            return OrgResult {
                completion: done,
                serviced_by: ServiceLocation::Storage,
                faulted: true,
            };
        }

        let phys_line = t.phys.line(access.line.offset_in_page()).raw();
        let (completion, serviced_by) = self.device_access(now, phys_line, is_write);
        self.drain_migration(now);

        // Post-access migration (uses the *post-translation* frame). The
        // policy is temporarily moved out so it can borrow the VMM and the
        // devices independently.
        let mut policy = std::mem::replace(&mut self.policy, TlmPolicy::Static);
        match &mut policy {
            TlmPolicy::Static | TlmPolicy::Oracle(_) => {}
            TlmPolicy::Dynamic(migrator) => {
                if let Some(traffic) =
                    migrator.on_access_traced(&mut self.vmm, page, t.frame, now, &mut self.sink)
                {
                    self.charge_migration_now(now, &traffic, page);
                }
            }
            TlmPolicy::Freq(migrator) => {
                if let Some(report) =
                    migrator.on_access_traced(&mut self.vmm, page, now, &mut self.sink)
                {
                    self.charge_migration(now, &report.traffic, page);
                }
            }
        }
        self.policy = policy;

        if !is_write {
            match serviced_by {
                ServiceLocation::Stacked => self.reads_stacked += 1,
                ServiceLocation::OffChip => self.reads_off_chip += 1,
                ServiceLocation::Storage => {}
            }
            if S::ENABLED {
                self.sink.emit(
                    now,
                    TraceEvent::Service {
                        stacked: serviced_by == ServiceLocation::Stacked,
                    },
                );
            }
        }
        OrgResult {
            completion,
            serviced_by,
            faulted: false,
        }
    }

    fn visible_capacity(&self) -> ByteSize {
        self.vmm.config().stacked + self.vmm.config().off_chip
    }

    fn bandwidth(&self) -> BandwidthReport {
        BandwidthReport {
            stacked_bytes: self.stacked.stats().bytes_total(),
            off_chip_bytes: self.off_chip.stats().bytes_total(),
            storage_bytes: self.vmm.stats().storage_bytes(),
        }
    }

    fn faults(&self) -> u64 {
        self.vmm.stats().faults
    }

    fn service_counts(&self) -> (u64, u64) {
        (self.reads_stacked, self.reads_off_chip)
    }

    fn migrated_pages(&self) -> u64 {
        self.migrated_pages
    }

    fn prefill(&mut self, page: cameo_types::PageAddr) {
        // Route through the same placement policy the timed path uses.
        match &self.policy {
            TlmPolicy::Oracle(profile) => {
                let region = profile.region_for(page);
                self.vmm.translate_in(page, false, region);
            }
            _ => {
                self.vmm.translate(page, false);
            }
        }
    }

    fn reset_stats(&mut self) {
        self.stacked.reset_stats();
        self.off_chip.reset_stats();
        self.vmm.reset_stats();
        self.reads_stacked = 0;
        self.reads_off_chip = 0;
        self.migrated_pages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::{CoreId, LineAddr};

    fn mk(policy: TlmPolicy) -> TlmOrg {
        TlmOrg::new(ByteSize::from_mib(1), ByteSize::from_mib(3), policy, 7)
    }

    #[test]
    fn static_capacity_is_full_sum() {
        let o = mk(TlmPolicy::Static);
        assert_eq!(o.visible_capacity(), ByteSize::from_mib(4));
        assert_eq!(o.name(), "TLM-Static");
    }

    #[test]
    fn dynamic_promotes_touched_pages() {
        let mut o = mk(TlmPolicy::Dynamic(DynamicMigrator::new()));
        let a = Access::read(CoreId(0), LineAddr::new(12345), 0x40);
        let r1 = o.access(Cycle::ZERO, &a);
        assert!(r1.faulted);
        // Wherever the fault placed the page, the first post-fault touch
        // promotes it (or finds it already stacked): the next read must hit
        // stacked memory.
        let r2 = o.access(r1.completion, &a);
        let r3 = o.access(r2.completion, &a);
        assert_eq!(r3.serviced_by, ServiceLocation::Stacked);
    }

    #[test]
    fn dynamic_migration_consumes_bandwidth() {
        let mut o = mk(TlmPolicy::Dynamic(DynamicMigrator::new()));
        let mut now = Cycle::ZERO;
        // Touch enough distinct pages twice: the first touch faults the
        // page in, the second promotes it (swapping once stacked is full).
        for round in 0..2 {
            let _ = round;
            for p in 0..600u64 {
                let a = Access::read(CoreId(0), LineAddr::new(p * 64), 0x40);
                now = o.access(now, &a).completion;
            }
        }
        assert!(o.migrated_pages() > 0);
        let bw = o.bandwidth();
        assert!(bw.stacked_bytes > 0 && bw.off_chip_bytes > 0);
    }

    #[test]
    fn oracle_places_profiled_hot_pages_in_stacked() {
        let profile = OracleProfile::from_counts(vec![(PageAddr::new(5), 100)], 256);
        let mut o = mk(TlmPolicy::Oracle(profile));
        let hot = Access::read(CoreId(0), LineAddr::new(5 * 64), 0x40);
        let r1 = o.access(Cycle::ZERO, &hot);
        let r2 = o.access(r1.completion, &hot);
        assert_eq!(r2.serviced_by, ServiceLocation::Stacked);
        // An unprofiled page lands off-chip.
        let cold = Access::read(CoreId(0), LineAddr::new(99 * 64), 0x40);
        let r3 = o.access(r2.completion, &cold);
        let r4 = o.access(r3.completion, &cold);
        assert_eq!(r4.serviced_by, ServiceLocation::OffChip);
        assert_eq!(o.migrated_pages(), 0);
    }

    #[test]
    fn freq_policy_labels() {
        let o = mk(TlmPolicy::Freq(FreqMigrator::new(100)));
        assert_eq!(o.name(), "TLM-Freq");
    }
}
