//! Stacked DRAM as a hardware cache: the Alloy Cache organization
//! (paper Section II-A, baseline "Cache" bars).

use cameo_cachesim::alloy::{AlloyDirectory, HitPredictor, PredictedRoute, TAD_BYTES};
use cameo_memsim::{Dram, DramConfig};
use cameo_types::{
    Access, ByteSize, Cycle, LineAddr, NopSink, ServiceLocation, TraceEvent, TraceSink,
    LINES_PER_PAGE,
};
use cameo_vmem::{Placement, Vmm, VmmConfig};

use crate::org::paging::service_fault;
use crate::org::{MemoryOrganization, OrgResult};
use crate::stats::BandwidthReport;

/// Stacked DRAM organized as a direct-mapped, line-granularity Alloy cache
/// in front of off-chip memory. The stacked capacity is *not* part of the
/// OS address space — that is exactly the deficiency CAMEO fixes.
#[derive(Clone, Debug)]
pub struct AlloyCacheOrg<S: TraceSink = NopSink> {
    vmm: Vmm,
    stacked: Dram,
    off_chip: Dram,
    directory: AlloyDirectory,
    predictor: HitPredictor,
    hits: u64,
    misses: u64,
    sink: S,
}

impl AlloyCacheOrg {
    /// Creates the organization: `stacked` bytes of cache over `off_chip`
    /// bytes of visible memory, tracing disabled.
    pub fn new(stacked: ByteSize, off_chip: ByteSize, cores: u16, seed: u64) -> Self {
        Self::with_sink(stacked, off_chip, cores, seed, NopSink)
    }

    /// Builds with an existing VMM (used by DoubleUse, whose visible memory
    /// is enlarged).
    pub(crate) fn with_vmm(
        vmm: Vmm,
        stacked: ByteSize,
        off_chip_capacity: ByteSize,
        cores: u16,
    ) -> Self {
        Self {
            vmm,
            stacked: Dram::new(DramConfig::stacked(stacked)),
            off_chip: Dram::new(DramConfig::off_chip(off_chip_capacity)),
            directory: AlloyDirectory::new(stacked.lines()),
            predictor: HitPredictor::new(cores, 256),
            hits: 0,
            misses: 0,
            sink: NopSink,
        }
    }
}

impl<S: TraceSink> AlloyCacheOrg<S> {
    /// Creates the organization with trace events emitted into `sink`.
    pub fn with_sink(
        stacked: ByteSize,
        off_chip: ByteSize,
        cores: u16,
        seed: u64,
        sink: S,
    ) -> Self {
        Self::with_sink_on(
            DramConfig::stacked(stacked),
            DramConfig::off_chip(off_chip),
            cores,
            seed,
            sink,
        )
    }

    /// Creates the organization on explicit device models (e.g. a
    /// tiered-latency TL-DRAM stacked die); capacities are taken from the
    /// configs.
    pub fn with_sink_on(
        stacked_dev: DramConfig,
        off_chip_dev: DramConfig,
        cores: u16,
        seed: u64,
        sink: S,
    ) -> Self {
        let stacked = stacked_dev.capacity;
        let off_chip = off_chip_dev.capacity;
        Self {
            vmm: Vmm::new(VmmConfig {
                stacked: ByteSize::ZERO,
                off_chip,
                placement: Placement::Random,
                seed,
            }),
            stacked: Dram::new(stacked_dev),
            off_chip: Dram::new(off_chip_dev),
            directory: AlloyDirectory::new(stacked.lines()),
            predictor: HitPredictor::new(cores, 256),
            hits: 0,
            misses: 0,
            sink,
        }
    }

    /// Hit rate of the DRAM cache, `None` before any demand read.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// On a page fault, the frame's previous contents are invalid: drop any
    /// cached lines of the recycled physical frame. Their dirty data needs
    /// no writeback — the page they belonged to just went to storage.
    fn invalidate_frame(&mut self, frame_first_line: u64) {
        for i in 0..LINES_PER_PAGE as u64 {
            self.directory
                .invalidate(LineAddr::new(frame_first_line + i));
        }
    }

    fn read(&mut self, now: Cycle, access: &Access, phys: LineAddr) -> (Cycle, ServiceLocation) {
        let route = self.predictor.predict(access.core, access.pc);
        // The TAD probe always happens (tag is in the cache row).
        let set = self.directory.set_of(phys);
        let probe_done = self.stacked.access(now, set, false, TAD_BYTES);
        let hit = self.directory.probe(phys);
        self.predictor
            .train_traced(access.core, access.pc, hit, now, &mut self.sink);
        if hit {
            self.hits += 1;
            if route == PredictedRoute::Memory {
                // Wasted parallel fetch.
                self.off_chip.read_line(now, phys.raw());
            }
            return (probe_done, ServiceLocation::Stacked);
        }
        self.misses += 1;
        let fetch_done = match route {
            PredictedRoute::Memory => {
                let parallel = self.off_chip.read_line(now, phys.raw());
                probe_done.later(parallel)
            }
            PredictedRoute::Cache => self.off_chip.read_line(probe_done, phys.raw()),
        };
        // Fill the line; write back the displaced dirty victim.
        if let Some(victim) = self.directory.fill(phys, false) {
            if victim.dirty {
                self.off_chip.write_line(now, victim.line.raw());
            }
        }
        self.stacked.access(now, set, true, TAD_BYTES);
        (fetch_done, ServiceLocation::OffChip)
    }

    fn write(&mut self, now: Cycle, phys: LineAddr) -> (Cycle, ServiceLocation) {
        let set = self.directory.set_of(phys);
        let probe_done = self.stacked.access(now, set, false, TAD_BYTES);
        if self.directory.probe(phys) {
            self.directory.mark_dirty(phys);
            let done = self.stacked.access(probe_done, set, true, TAD_BYTES);
            (done, ServiceLocation::Stacked)
        } else {
            // Write-no-allocate: update memory directly.
            let done = self.off_chip.write_line(probe_done, phys.raw());
            (done, ServiceLocation::OffChip)
        }
    }
}

impl<S: TraceSink> MemoryOrganization for AlloyCacheOrg<S> {
    fn name(&self) -> &'static str {
        "Cache(Alloy)"
    }

    fn access(&mut self, now: Cycle, access: &Access) -> OrgResult {
        let t = self
            .vmm
            .translate(access.line.page(), access.kind.is_write());
        if let Some(fault) = t.fault {
            // The line arrives with the page-in; recycled-frame tags are
            // dropped and no demand access reaches the cache or memory.
            let done = service_fault(&mut self.off_chip, now, t.phys.first_line().raw(), &fault);
            self.invalidate_frame(t.phys.first_line().raw());
            return OrgResult {
                completion: done,
                serviced_by: ServiceLocation::Storage,
                faulted: true,
            };
        }
        let phys = LineAddr::new(t.phys.line(access.line.offset_in_page()).raw());
        let (completion, serviced_by) = if access.kind.is_write() {
            self.write(now, phys)
        } else {
            self.read(now, access, phys)
        };
        if S::ENABLED && !access.kind.is_write() {
            self.sink.emit(
                now,
                TraceEvent::Service {
                    stacked: serviced_by == ServiceLocation::Stacked,
                },
            );
        }
        OrgResult {
            completion,
            serviced_by,
            faulted: false,
        }
    }

    fn visible_capacity(&self) -> ByteSize {
        self.vmm.config().off_chip
    }

    fn bandwidth(&self) -> BandwidthReport {
        BandwidthReport {
            stacked_bytes: self.stacked.stats().bytes_total(),
            off_chip_bytes: self.off_chip.stats().bytes_total(),
            storage_bytes: self.vmm.stats().storage_bytes(),
        }
    }

    fn faults(&self) -> u64 {
        self.vmm.stats().faults
    }

    fn service_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn prefill(&mut self, page: cameo_types::PageAddr) {
        self.vmm.translate(page, false);
    }

    fn prefill_batch(&mut self, pages: &[cameo_types::PageAddr]) {
        self.vmm.translate_batch(pages, false);
    }

    fn reset_stats(&mut self) {
        self.stacked.reset_stats();
        self.off_chip.reset_stats();
        self.vmm.reset_stats();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::CoreId;

    fn org() -> AlloyCacheOrg {
        AlloyCacheOrg::new(ByteSize::from_mib(1), ByteSize::from_mib(3), 2, 5)
    }

    #[test]
    fn second_access_hits_cache() {
        let mut o = org();
        let a = Access::read(CoreId(0), LineAddr::new(500), 0x40);
        let r1 = o.access(Cycle::ZERO, &a);
        assert!(r1.faulted); // page-in; the cache is not touched
        let r2 = o.access(r1.completion, &a);
        assert_eq!(r2.serviced_by, ServiceLocation::OffChip); // cold miss fills
        let r3 = o.access(r2.completion, &a);
        assert_eq!(r3.serviced_by, ServiceLocation::Stacked);
        assert_eq!(o.hit_rate(), Some(0.5));
    }

    #[test]
    fn cache_hit_is_faster_than_miss() {
        let mut o = org();
        let a = Access::read(CoreId(0), LineAddr::new(500), 0x40);
        let r1 = o.access(Cycle::ZERO, &a); // page fault (no fill)
        let t0 = r1.completion;
        let miss = o.access(t0, &a).completion - t0; // cold miss, fills
        let t1 = t0 + miss;
        let hit = o.access(t1, &a).completion - t1;
        assert!(hit < miss);
    }

    #[test]
    fn visible_capacity_excludes_stacked() {
        assert_eq!(org().visible_capacity(), ByteSize::from_mib(3));
    }

    #[test]
    fn writes_do_not_allocate() {
        let mut o = org();
        let w = Access::write(CoreId(0), LineAddr::new(128), 0x44);
        let r1 = o.access(Cycle::ZERO, &w);
        let r2 = o.access(r1.completion, &w);
        assert_eq!(r2.serviced_by, ServiceLocation::OffChip);
        // A read after the writes still misses (no allocation happened).
        let rd = o.access(
            r2.completion,
            &Access::read(CoreId(0), LineAddr::new(128), 0x44),
        );
        assert_eq!(rd.serviced_by, ServiceLocation::OffChip);
    }
}
