//! The MemCache hybrid organization: stacked DRAM statically partitioned
//! into an OS-visible memory region and a hardware-managed cache region
//! (Bakhshalipour et al. — a direct extension of the paper's design space
//! between "all cache" and "all memory").

use cameo_cachesim::alloy::{AlloyDirectory, HitPredictor, PredictedRoute, TAD_BYTES};
use cameo_memsim::{Dram, DramConfig};
use cameo_types::{
    Access, ByteSize, Cycle, LineAddr, NopSink, ServiceLocation, TraceEvent, TraceSink,
    LINES_PER_PAGE,
};
use cameo_vmem::{Placement, Vmm, VmmConfig};

use crate::org::paging::service_fault;
use crate::org::{MemoryOrganization, OrgResult};
use crate::stats::BandwidthReport;

/// Stacked DRAM split at a configurable ratio: the first `split_percent`
/// of its capacity (page-aligned) is OS-visible fast memory — frames the
/// VMM places like TLM-Static's stacked region — and the remainder is a
/// direct-mapped, line-granularity Alloy-style cache in front of the
/// off-chip region. Both halves live on *one* physical device, so memory
/// traffic and cache traffic contend for the same banks and buses.
#[derive(Clone, Debug)]
pub struct MemCacheOrg<S: TraceSink = NopSink> {
    vmm: Vmm,
    /// The whole stacked die: device lines `0..mem_lines` hold the
    /// OS-visible region, `mem_lines..` host the cache sets.
    stacked: Dram,
    off_chip: Dram,
    mem_lines: u64,
    cache_lines: u64,
    directory: AlloyDirectory,
    predictor: HitPredictor,
    name: &'static str,
    hits: u64,
    misses: u64,
    reads_stacked: u64,
    reads_off_chip: u64,
    sink: S,
}

/// Static labels for the sweep's split points, the generic fallback for
/// ad-hoc ratios ([`MemoryOrganization::name`] returns `&'static str`).
fn split_label(split_percent: u8) -> &'static str {
    match split_percent {
        25 => "MemCache@25",
        50 => "MemCache@50",
        75 => "MemCache@75",
        _ => "MemCache",
    }
}

impl MemCacheOrg {
    /// Creates the hybrid: `split_percent`% of `stacked` as OS-visible
    /// memory, the rest as cache over `off_chip`, tracing disabled.
    ///
    /// # Panics
    ///
    /// Panics if `split_percent` is not in `1..=99` or either region
    /// rounds down to zero pages.
    pub fn new(
        stacked: ByteSize,
        off_chip: ByteSize,
        split_percent: u8,
        cores: u16,
        seed: u64,
    ) -> Self {
        Self::with_sink(stacked, off_chip, split_percent, cores, seed, NopSink)
    }
}

impl<S: TraceSink> MemCacheOrg<S> {
    /// Creates the hybrid with trace events emitted into `sink`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MemCacheOrg::new`].
    pub fn with_sink(
        stacked: ByteSize,
        off_chip: ByteSize,
        split_percent: u8,
        cores: u16,
        seed: u64,
        sink: S,
    ) -> Self {
        Self::with_sink_on(
            DramConfig::stacked(stacked),
            DramConfig::off_chip(off_chip),
            split_percent,
            cores,
            seed,
            sink,
        )
    }

    /// Creates the hybrid on explicit device models (e.g. a tiered-latency
    /// TL-DRAM stacked die); capacities are taken from the configs.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MemCacheOrg::new`].
    pub fn with_sink_on(
        stacked_dev: DramConfig,
        off_chip_dev: DramConfig,
        split_percent: u8,
        cores: u16,
        seed: u64,
        sink: S,
    ) -> Self {
        assert!(
            (1..=99).contains(&split_percent),
            "split must leave both a memory and a cache region (got {split_percent}%)"
        );
        let stacked = stacked_dev.capacity;
        let off_chip = off_chip_dev.capacity;
        // Page-align the boundary: the OS region must hold whole frames.
        let mem = ByteSize::from_pages(stacked.pages() * u64::from(split_percent) / 100);
        let cache = stacked - mem;
        assert!(mem.pages() > 0, "memory region rounds to zero pages");
        assert!(cache.pages() > 0, "cache region rounds to zero pages");
        Self {
            vmm: Vmm::new(VmmConfig {
                stacked: mem,
                off_chip,
                placement: Placement::Random,
                seed,
            }),
            stacked: Dram::new(stacked_dev),
            off_chip: Dram::new(off_chip_dev),
            mem_lines: mem.lines(),
            cache_lines: cache.lines(),
            directory: AlloyDirectory::new(cache.lines()),
            predictor: HitPredictor::new(cores, 256),
            name: split_label(split_percent),
            hits: 0,
            misses: 0,
            reads_stacked: 0,
            reads_off_chip: 0,
            sink,
        }
    }

    /// Lines in the OS-visible stacked memory region.
    #[inline]
    pub fn memory_region_lines(&self) -> u64 {
        self.mem_lines
    }

    /// Lines (= direct-mapped sets) in the stacked cache region.
    #[inline]
    pub fn cache_region_lines(&self) -> u64 {
        self.cache_lines
    }

    /// Hit rate of the cache region, `None` before any off-chip-region
    /// demand read.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Stacked device line holding cache set `set`.
    #[inline]
    fn set_line(&self, set: u64) -> u64 {
        self.mem_lines + set
    }

    /// Drops cached lines of a recycled off-chip frame (device-local
    /// addressing); their page just went to storage, so no writeback.
    fn invalidate_frame(&mut self, off_first_line: u64) {
        for i in 0..LINES_PER_PAGE as u64 {
            self.directory.invalidate(LineAddr::new(off_first_line + i));
        }
    }

    /// Read of an off-chip-region line through the cache (the Alloy path,
    /// with tags and data in the stacked die's cache region).
    fn cached_read(
        &mut self,
        now: Cycle,
        access: &Access,
        off_line: LineAddr,
    ) -> (Cycle, ServiceLocation) {
        let route = self.predictor.predict(access.core, access.pc);
        let set = self.directory.set_of(off_line);
        let probe_done = self.stacked.access(now, self.set_line(set), false, TAD_BYTES);
        let hit = self.directory.probe(off_line);
        self.predictor
            .train_traced(access.core, access.pc, hit, now, &mut self.sink);
        if hit {
            self.hits += 1;
            if route == PredictedRoute::Memory {
                // Wasted parallel fetch.
                self.off_chip.read_line(now, off_line.raw());
            }
            return (probe_done, ServiceLocation::Stacked);
        }
        self.misses += 1;
        let fetch_done = match route {
            PredictedRoute::Memory => {
                let parallel = self.off_chip.read_line(now, off_line.raw());
                probe_done.later(parallel)
            }
            PredictedRoute::Cache => self.off_chip.read_line(probe_done, off_line.raw()),
        };
        if let Some(victim) = self.directory.fill(off_line, false) {
            if victim.dirty {
                self.off_chip.write_line(now, victim.line.raw());
            }
        }
        self.stacked.access(now, self.set_line(set), true, TAD_BYTES);
        (fetch_done, ServiceLocation::OffChip)
    }

    /// Write of an off-chip-region line: write-hit updates the cached
    /// copy, write-miss goes straight to memory (write-no-allocate).
    fn cached_write(&mut self, now: Cycle, off_line: LineAddr) -> (Cycle, ServiceLocation) {
        let set = self.directory.set_of(off_line);
        let probe_done = self.stacked.access(now, self.set_line(set), false, TAD_BYTES);
        if self.directory.probe(off_line) {
            self.directory.mark_dirty(off_line);
            let done = self
                .stacked
                .access(probe_done, self.set_line(set), true, TAD_BYTES);
            (done, ServiceLocation::Stacked)
        } else {
            let done = self.off_chip.write_line(probe_done, off_line.raw());
            (done, ServiceLocation::OffChip)
        }
    }

    /// Internal conservation checks, active under `deep-audit` only: the
    /// directory never overflows its region and the service tallies never
    /// disagree with the hit/miss taxonomy.
    #[cfg(feature = "deep-audit")]
    fn audit(&self) {
        assert!(
            self.directory.occupancy() as u64 <= self.cache_lines,
            "MemCache directory overflowed its cache region: {} > {}",
            self.directory.occupancy(),
            self.cache_lines
        );
        assert!(
            self.hits + self.misses <= self.reads_stacked + self.reads_off_chip,
            "MemCache cache taxonomy exceeds serviced reads"
        );
    }
}

impl<S: TraceSink> MemoryOrganization for MemCacheOrg<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn access(&mut self, now: Cycle, access: &Access) -> OrgResult {
        let is_write = access.kind.is_write();
        let t = self.vmm.translate(access.line.page(), is_write);
        if let Some(fault) = t.fault {
            // The line arrives with the page-in, serviced by the owning
            // device; a recycled off-chip frame drops its cached tags.
            let frame_line = t.phys.first_line().raw();
            let done = if frame_line < self.mem_lines {
                service_fault(&mut self.stacked, now, frame_line, &fault)
            } else {
                let off_first = frame_line - self.mem_lines;
                let done = service_fault(&mut self.off_chip, now, off_first, &fault);
                self.invalidate_frame(off_first);
                done
            };
            return OrgResult {
                completion: done,
                serviced_by: ServiceLocation::Storage,
                faulted: true,
            };
        }

        let phys_line = t.phys.line(access.line.offset_in_page()).raw();
        let (completion, serviced_by) = if phys_line < self.mem_lines {
            // OS-visible stacked region: direct access, no metadata.
            let done = self.stacked.access(now, phys_line, is_write, 64);
            (done, ServiceLocation::Stacked)
        } else {
            let off_line = LineAddr::new(phys_line - self.mem_lines);
            if is_write {
                self.cached_write(now, off_line)
            } else {
                self.cached_read(now, access, off_line)
            }
        };

        if !is_write {
            match serviced_by {
                ServiceLocation::Stacked => self.reads_stacked += 1,
                ServiceLocation::OffChip => self.reads_off_chip += 1,
                ServiceLocation::Storage => {}
            }
            if S::ENABLED {
                self.sink.emit(
                    now,
                    TraceEvent::Service {
                        stacked: serviced_by == ServiceLocation::Stacked,
                    },
                );
            }
        }
        #[cfg(feature = "deep-audit")]
        self.audit();
        OrgResult {
            completion,
            serviced_by,
            faulted: false,
        }
    }

    fn visible_capacity(&self) -> ByteSize {
        self.vmm.config().stacked + self.vmm.config().off_chip
    }

    fn bandwidth(&self) -> BandwidthReport {
        BandwidthReport {
            stacked_bytes: self.stacked.stats().bytes_total(),
            off_chip_bytes: self.off_chip.stats().bytes_total(),
            storage_bytes: self.vmm.stats().storage_bytes(),
        }
    }

    fn faults(&self) -> u64 {
        self.vmm.stats().faults
    }

    fn service_counts(&self) -> (u64, u64) {
        (self.reads_stacked, self.reads_off_chip)
    }

    fn prefill(&mut self, page: cameo_types::PageAddr) {
        self.vmm.translate(page, false);
    }

    fn prefill_batch(&mut self, pages: &[cameo_types::PageAddr]) {
        self.vmm.translate_batch(pages, false);
    }

    fn reset_stats(&mut self) {
        self.stacked.reset_stats();
        self.off_chip.reset_stats();
        self.vmm.reset_stats();
        self.hits = 0;
        self.misses = 0;
        self.reads_stacked = 0;
        self.reads_off_chip = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::CoreId;

    fn org(split: u8) -> MemCacheOrg {
        MemCacheOrg::new(ByteSize::from_mib(1), ByteSize::from_mib(3), split, 2, 5)
    }

    #[test]
    fn visible_capacity_includes_memory_region_only() {
        // 50% of 1 MiB is OS-visible stacked memory + 3 MiB off-chip.
        assert_eq!(
            org(50).visible_capacity(),
            ByteSize::from_kib(512) + ByteSize::from_mib(3)
        );
        assert_eq!(
            org(25).visible_capacity(),
            ByteSize::from_kib(256) + ByteSize::from_mib(3)
        );
    }

    #[test]
    fn labels_cover_sweep_splits() {
        assert_eq!(org(25).name(), "MemCache@25");
        assert_eq!(org(50).name(), "MemCache@50");
        assert_eq!(org(75).name(), "MemCache@75");
        assert_eq!(org(40).name(), "MemCache");
    }

    #[test]
    fn off_chip_region_reads_fill_the_cache() {
        let mut o = org(50);
        // Touch enough distinct pages that some land in the off-chip
        // region, then re-read: second reads of off-chip pages must start
        // hitting the cache region.
        let mut now = Cycle::ZERO;
        for round in 0..3 {
            let _ = round;
            for p in 0..300u64 {
                let a = Access::read(CoreId(0), LineAddr::new(p * 64), 0x40);
                now = o.access(now, &a).completion;
            }
        }
        assert!(o.hit_rate().is_some_and(|r| r > 0.0));
        let (stacked, off) = o.service_counts();
        assert!(stacked > 0 && off > 0);
    }

    #[test]
    fn memory_region_line_stays_stacked() {
        let mut o = org(75);
        let a = Access::read(CoreId(0), LineAddr::new(500), 0x40);
        // Fault the page in, then retry until placement is known; pages in
        // the stacked region service from stacked with no cache metadata.
        let r1 = o.access(Cycle::ZERO, &a);
        assert!(r1.faulted);
        let r2 = o.access(r1.completion, &a);
        assert!(!r2.faulted);
        let r3 = o.access(r2.completion, &a);
        assert_eq!(r3.serviced_by, r2.serviced_by);
    }

    #[test]
    fn writes_do_not_allocate_in_cache_region() {
        let mut o = org(50);
        let mut now = Cycle::ZERO;
        // Prefill many pages so some map to the off-chip region, then
        // write without reading: the cache must stay cold.
        for p in 0..200u64 {
            let w = Access::write(CoreId(0), LineAddr::new(p * 64), 0x44);
            now = o.access(now, &w).completion;
            now = o.access(now, &w).completion;
        }
        assert_eq!(o.hit_rate(), None, "no demand reads, no fills");
    }

    #[test]
    #[should_panic(expected = "split must leave")]
    fn degenerate_split_rejected() {
        org(0);
    }

    #[test]
    fn tiered_stacked_device_composes() {
        let stacked = ByteSize::from_mib(1);
        let o: MemCacheOrg = MemCacheOrg::with_sink_on(
            DramConfig::stacked_tiered(stacked),
            DramConfig::off_chip(ByteSize::from_mib(3)),
            50,
            2,
            5,
            NopSink,
        );
        assert_eq!(o.name(), "MemCache@50");
    }
}
