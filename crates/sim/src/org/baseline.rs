//! The baseline system: commodity off-chip DRAM only, no stacked memory.

use cameo_memsim::{Dram, DramConfig};
use cameo_types::{Access, ByteSize, Cycle, ServiceLocation};
use cameo_vmem::{Placement, Vmm, VmmConfig};

use crate::org::paging::service_fault;
use crate::org::{MemoryOrganization, OrgResult};
use crate::stats::BandwidthReport;

/// The paper's baseline: 12 GB (scaled) of off-chip DRAM, demand paging to
/// SSD. All speedups are reported relative to this system.
#[derive(Clone, Debug)]
pub struct BaselineOrg {
    vmm: Vmm,
    off_chip: Dram,
    reads: u64,
}

impl BaselineOrg {
    /// Creates the baseline with `off_chip` visible capacity.
    pub fn new(off_chip: ByteSize, seed: u64) -> Self {
        Self {
            vmm: Vmm::new(VmmConfig {
                stacked: ByteSize::ZERO,
                off_chip,
                placement: Placement::Random,
                seed,
            }),
            off_chip: Dram::new(DramConfig::off_chip(off_chip)),
            reads: 0,
        }
    }
}

impl MemoryOrganization for BaselineOrg {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn access(&mut self, now: Cycle, access: &Access) -> OrgResult {
        let page = access.line.page();
        let t = self.vmm.translate(page, access.kind.is_write());
        if let Some(fault) = t.fault {
            // The demanded line arrives with the 4 KiB page-in; no separate
            // DRAM access is made on behalf of the faulting request.
            let done = service_fault(&mut self.off_chip, now, t.phys.first_line().raw(), &fault);
            return OrgResult {
                completion: done,
                serviced_by: ServiceLocation::Storage,
                faulted: true,
            };
        }
        let phys_line = t.phys.line(access.line.offset_in_page()).raw();
        let completion = if access.kind.is_write() {
            self.off_chip.write_line(now, phys_line)
        } else {
            self.reads += 1;
            self.off_chip.read_line(now, phys_line)
        };
        OrgResult {
            completion,
            serviced_by: ServiceLocation::OffChip,
            faulted: false,
        }
    }

    fn visible_capacity(&self) -> ByteSize {
        self.vmm.config().off_chip
    }

    fn bandwidth(&self) -> BandwidthReport {
        BandwidthReport {
            stacked_bytes: 0,
            off_chip_bytes: self.off_chip.stats().bytes_total(),
            storage_bytes: self.vmm.stats().storage_bytes(),
        }
    }

    fn faults(&self) -> u64 {
        self.vmm.stats().faults
    }

    fn service_counts(&self) -> (u64, u64) {
        (0, self.reads)
    }

    fn prefill(&mut self, page: cameo_types::PageAddr) {
        self.vmm.translate(page, false);
    }

    fn prefill_batch(&mut self, pages: &[cameo_types::PageAddr]) {
        self.vmm.translate_batch(pages, false);
    }

    fn reset_stats(&mut self) {
        self.off_chip.reset_stats();
        self.vmm.reset_stats();
        self.reads = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::{CoreId, LineAddr};

    #[test]
    fn faults_then_services_off_chip() {
        let mut org = BaselineOrg::new(ByteSize::from_mib(1), 1);
        let a = Access::read(CoreId(0), LineAddr::new(100), 0x40);
        let r1 = org.access(Cycle::ZERO, &a);
        assert!(r1.faulted);
        assert_eq!(r1.serviced_by, ServiceLocation::Storage);
        assert!(r1.completion.raw() >= cameo_vmem::PAGE_FAULT_CYCLES);
        let r2 = org.access(r1.completion, &a);
        assert!(!r2.faulted);
        assert_eq!(r2.serviced_by, ServiceLocation::OffChip);
        assert_eq!(org.faults(), 1);
        // The faulting read was serviced by the page-in, not the DRAM read
        // path, so only the second read counts.
        assert_eq!(org.service_counts(), (0, 1));
    }

    #[test]
    fn reset_clears_counters() {
        let mut org = BaselineOrg::new(ByteSize::from_mib(1), 1);
        org.access(Cycle::ZERO, &Access::read(CoreId(0), LineAddr::new(0), 0));
        org.reset_stats();
        assert_eq!(org.faults(), 0);
        assert_eq!(org.bandwidth().off_chip_bytes, 0);
        assert_eq!(org.service_counts(), (0, 0));
    }
}
