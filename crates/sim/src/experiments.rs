//! One-call experiment entry points used by the bench binaries and the
//! examples.

use cameo::{LltDesign, PredictorKind};
use cameo_memsim::DramConfig;
use cameo_types::{ByteSize, DetHashMap, DeviceKind, NopSink, PageAddr};
use cameo_vmem::tlm::{DynamicMigrator, FreqMigrator, OracleProfile};
use cameo_workloads::{BenchSpec, TraceGenerator};

use crate::config::SystemConfig;
use crate::error::SimError;
use crate::org::{
    AlloyCacheOrg, BaselineOrg, CameoOrg, DoubleUseOrg, LohHillCacheOrg, MemCacheOrg,
    MemoryOrganization, TlmOrg, TlmPolicy,
};
use crate::runner::{trace_configs, Runner};
use crate::stats::RunStats;
use crate::trace::SharedSink;

pub use crate::stats::gmean;

/// Every design point the paper's figures compare.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OrgKind {
    /// Off-chip memory only.
    Baseline,
    /// Stacked DRAM as an Alloy cache.
    AlloyCache,
    /// Stacked DRAM as a Loh-Hill set-associative DRAM cache with MissMap.
    LhCache,
    /// TLM with random static placement.
    TlmStatic,
    /// TLM with swap-on-touch migration.
    TlmDynamic,
    /// TLM with epoch-based frequency placement.
    TlmFreq,
    /// TLM with profiled oracle placement.
    TlmOracle,
    /// CAMEO with a chosen LLT design and predictor.
    Cameo {
        /// LLT hardware design.
        llt: LltDesign,
        /// Location-prediction scheme.
        predictor: PredictorKind,
    },
    /// The MemCache hybrid: stacked DRAM part OS-visible memory, part
    /// hardware cache, split at a configurable percentage.
    MemCache {
        /// Percentage of stacked capacity that is OS-visible memory.
        split_percent: u8,
    },
    /// The idealistic cache-plus-extra-capacity upper bound.
    DoubleUse,
}

impl OrgKind {
    /// The paper's headline CAMEO configuration: Co-Located LLT + LLP.
    pub fn cameo_default() -> Self {
        OrgKind::Cameo {
            llt: LltDesign::CoLocated,
            predictor: PredictorKind::Llp,
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            OrgKind::Baseline => "Baseline",
            OrgKind::AlloyCache => "Cache",
            OrgKind::LhCache => "Cache(LH)",
            OrgKind::TlmStatic => "TLM-Static",
            OrgKind::TlmDynamic => "TLM-Dynamic",
            OrgKind::TlmFreq => "TLM-Freq",
            OrgKind::TlmOracle => "TLM-Oracle",
            OrgKind::Cameo {
                llt: LltDesign::Ideal,
                ..
            } => "CAMEO(Ideal-LLT)",
            OrgKind::Cameo {
                llt: LltDesign::Sram,
                ..
            } => "CAMEO(SRAM-LLT)",
            OrgKind::Cameo {
                llt: LltDesign::Embedded,
                ..
            } => "CAMEO(Embedded-LLT)",
            OrgKind::Cameo {
                llt: LltDesign::CoLocated,
                predictor: PredictorKind::SerialAccess,
            } => "CAMEO(SAM)",
            OrgKind::Cameo {
                llt: LltDesign::CoLocated,
                predictor: PredictorKind::Llp,
            } => "CAMEO",
            OrgKind::Cameo {
                llt: LltDesign::CoLocated,
                predictor: PredictorKind::Perfect,
            } => "CAMEO(Perfect)",
            OrgKind::MemCache { split_percent: 25 } => "MemCache@25",
            OrgKind::MemCache { split_percent: 50 } => "MemCache@50",
            OrgKind::MemCache { split_percent: 75 } => "MemCache@75",
            // Ad-hoc splits share one label; only the sweep's three
            // canonical splits are addressable by name.
            OrgKind::MemCache { .. } => "MemCache",
            OrgKind::DoubleUse => "DoubleUse",
        }
    }

    /// Every distinctly-labelled design point, in the figures' canonical
    /// column order. (LLT designs other than Co-Located ignore the
    /// predictor in their label; this list carries them with LLP.)
    #[must_use]
    pub fn all() -> Vec<OrgKind> {
        let cameo = |llt, predictor| OrgKind::Cameo { llt, predictor };
        vec![
            OrgKind::Baseline,
            OrgKind::AlloyCache,
            OrgKind::LhCache,
            OrgKind::TlmStatic,
            OrgKind::TlmDynamic,
            OrgKind::TlmFreq,
            OrgKind::TlmOracle,
            cameo(LltDesign::Ideal, PredictorKind::Llp),
            cameo(LltDesign::Sram, PredictorKind::Llp),
            cameo(LltDesign::Embedded, PredictorKind::Llp),
            cameo(LltDesign::CoLocated, PredictorKind::SerialAccess),
            OrgKind::cameo_default(),
            cameo(LltDesign::CoLocated, PredictorKind::Perfect),
            OrgKind::MemCache { split_percent: 25 },
            OrgKind::MemCache { split_percent: 50 },
            OrgKind::MemCache { split_percent: 75 },
            OrgKind::DoubleUse,
        ]
    }

    /// Resolves a figure label (as printed by [`OrgKind::label`],
    /// compared case-insensitively) back to its organization — the
    /// inverse the sweep daemon needs to accept orgs by name over the
    /// wire.
    #[must_use]
    pub fn parse(label: &str) -> Option<OrgKind> {
        OrgKind::all()
            .into_iter()
            .find(|kind| kind.label().eq_ignore_ascii_case(label))
    }
}

/// Counts per-page accesses of the exact trace the timed run will replay —
/// the profiling pass TLM-Oracle assumes (paper Section VI-D).
pub fn page_profile(bench: &BenchSpec, config: &SystemConfig) -> Vec<(PageAddr, u64)> {
    let mut counts: DetHashMap<PageAddr, u64> = DetHashMap::default();
    let events_per_core = config.expected_events_per_core(bench.mpki);
    for tc in trace_configs(bench, config) {
        let mut generator = TraceGenerator::new(*bench, tc);
        for _ in 0..events_per_core {
            let e = generator.next_event();
            *counts.entry(e.line.page()).or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

/// The (stacked, off-chip) device models of one point on the device axis.
///
/// `TlDram` tiers the stacked die ([`DramConfig::stacked_tiered`]); the
/// off-chip DDR device stays flat on both axes.
pub fn device_configs(
    device: DeviceKind,
    stacked: ByteSize,
    off_chip: ByteSize,
) -> (DramConfig, DramConfig) {
    let stacked_dev = match device {
        DeviceKind::Flat => DramConfig::stacked(stacked),
        DeviceKind::TlDram => DramConfig::stacked_tiered(stacked),
    };
    (stacked_dev, DramConfig::off_chip(off_chip))
}

/// Builds a fresh organization of `kind` for one benchmark run, on the
/// paper's flat Table I devices.
pub fn build_org(
    bench: &BenchSpec,
    kind: OrgKind,
    config: &SystemConfig,
) -> Box<dyn MemoryOrganization> {
    build_org_on(bench, kind, DeviceKind::Flat, config)
}

/// Builds a fresh organization of `kind` on the chosen device axis.
///
/// [`DeviceKind::Flat`] constructs exactly what [`build_org`] does. The
/// baseline has no stacked device, and the LH cache and DoubleUse sit
/// outside the design-comparison sweep, so those three always use the
/// flat devices regardless of `device`.
pub fn build_org_on(
    bench: &BenchSpec,
    kind: OrgKind,
    device: DeviceKind,
    config: &SystemConfig,
) -> Box<dyn MemoryOrganization> {
    let stacked = config.stacked();
    let off_chip = config.off_chip();
    let (stacked_dev, off_chip_dev) = device_configs(device, stacked, off_chip);
    let seed = config.seed ^ 0xBEEF;
    match kind {
        OrgKind::Baseline => Box::new(BaselineOrg::new(off_chip, seed)),
        OrgKind::AlloyCache => Box::new(AlloyCacheOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            config.cores,
            seed,
            NopSink,
        )),
        OrgKind::LhCache => Box::new(LohHillCacheOrg::new(stacked, off_chip, seed)),
        OrgKind::TlmStatic => Box::new(TlmOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            TlmPolicy::Static,
            seed,
            NopSink,
        )),
        OrgKind::TlmDynamic => Box::new(TlmOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            TlmPolicy::Dynamic(DynamicMigrator::new()),
            seed,
            NopSink,
        )),
        OrgKind::TlmFreq => Box::new(TlmOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            TlmPolicy::Freq(FreqMigrator::new(config.freq_epoch)),
            seed,
            NopSink,
        )),
        OrgKind::TlmOracle => {
            let profile = OracleProfile::from_counts(page_profile(bench, config), stacked.pages());
            Box::new(TlmOrg::with_sink_on(
                stacked_dev,
                off_chip_dev,
                TlmPolicy::Oracle(profile),
                seed,
                NopSink,
            ))
        }
        OrgKind::Cameo { llt, predictor } => Box::new(CameoOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            llt,
            predictor,
            config.cores,
            config.llp_entries,
            seed,
            NopSink,
        )),
        OrgKind::MemCache { split_percent } => Box::new(MemCacheOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            split_percent,
            config.cores,
            seed,
            NopSink,
        )),
        OrgKind::DoubleUse => Box::new(DoubleUseOrg::new(stacked, off_chip, config.cores, seed)),
    }
}

/// Builds a fresh organization of `kind` with the armed `sink` receiving
/// its trace events.
///
/// The kinds the tracing subsystem instruments — CAMEO (controller events),
/// Alloy (hit-predictor and service events) and the TLM policies (migration
/// and service events) — are constructed around `sink`; the remaining kinds
/// (Baseline, LH cache, DoubleUse) have no emission sites and fall back to
/// [`build_org`], so their armed runs record an empty trace.
pub fn build_org_traced(
    bench: &BenchSpec,
    kind: OrgKind,
    config: &SystemConfig,
    sink: SharedSink,
) -> Box<dyn MemoryOrganization> {
    build_org_traced_on(bench, kind, DeviceKind::Flat, config, sink)
}

/// Builds a fresh traced organization of `kind` on the chosen device
/// axis; the same fallback rules as [`build_org_on`] and
/// [`build_org_traced`] apply.
pub fn build_org_traced_on(
    bench: &BenchSpec,
    kind: OrgKind,
    device: DeviceKind,
    config: &SystemConfig,
    sink: SharedSink,
) -> Box<dyn MemoryOrganization> {
    let stacked = config.stacked();
    let off_chip = config.off_chip();
    let (stacked_dev, off_chip_dev) = device_configs(device, stacked, off_chip);
    let seed = config.seed ^ 0xBEEF;
    match kind {
        OrgKind::Baseline | OrgKind::LhCache | OrgKind::DoubleUse => {
            build_org_on(bench, kind, device, config)
        }
        OrgKind::AlloyCache => Box::new(AlloyCacheOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            config.cores,
            seed,
            sink,
        )),
        OrgKind::TlmStatic => Box::new(TlmOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            TlmPolicy::Static,
            seed,
            sink,
        )),
        OrgKind::TlmDynamic => Box::new(TlmOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            TlmPolicy::Dynamic(DynamicMigrator::new()),
            seed,
            sink,
        )),
        OrgKind::TlmFreq => Box::new(TlmOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            TlmPolicy::Freq(FreqMigrator::new(config.freq_epoch)),
            seed,
            sink,
        )),
        OrgKind::TlmOracle => {
            let profile = OracleProfile::from_counts(page_profile(bench, config), stacked.pages());
            Box::new(TlmOrg::with_sink_on(
                stacked_dev,
                off_chip_dev,
                TlmPolicy::Oracle(profile),
                seed,
                sink,
            ))
        }
        OrgKind::Cameo { llt, predictor } => Box::new(CameoOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            llt,
            predictor,
            config.cores,
            config.llp_entries,
            seed,
            sink,
        )),
        OrgKind::MemCache { split_percent } => Box::new(MemCacheOrg::with_sink_on(
            stacked_dev,
            off_chip_dev,
            split_percent,
            config.cores,
            seed,
            sink,
        )),
    }
}

/// Runs one benchmark under one organization and returns its statistics.
///
/// # Panics
///
/// Panics if `config` is invalid; batch code should prefer
/// [`try_run_benchmark`], which reports the problem as a [`SimError`].
pub fn run_benchmark(bench: &BenchSpec, kind: OrgKind, config: &SystemConfig) -> RunStats {
    try_run_benchmark(bench, kind, config, None)
        .expect("configuration must be valid; use try_run_benchmark to handle errors")
}

/// Fallible variant of [`run_benchmark`], with an optional cycle-budget
/// watchdog (see [`Runner::try_run`]).
///
/// # Errors
///
/// Returns [`SimError::Config`] for an invalid configuration or
/// [`SimError::WatchdogExpired`] when the budget trips.
pub fn try_run_benchmark(
    bench: &BenchSpec,
    kind: OrgKind,
    config: &SystemConfig,
    budget_cycles: Option<u64>,
) -> Result<RunStats, SimError> {
    let mut org = build_org(bench, kind, config);
    Runner::new(*bench, config)?.try_run(org.as_mut(), budget_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SystemConfig {
        SystemConfig {
            scale: 4096,
            cores: 2,
            instructions_per_core: 40_000,
            warmup_fraction: 0.25,
            ..Default::default()
        }
    }

    #[test]
    fn org_labels_round_trip_through_parse() {
        let all = OrgKind::all();
        assert_eq!(all.len(), 17, "one entry per distinct label");
        for kind in &all {
            assert_eq!(
                OrgKind::parse(kind.label()),
                Some(*kind),
                "label {:?} must parse back",
                kind.label()
            );
        }
        assert_eq!(OrgKind::parse("cameo"), Some(OrgKind::cameo_default()));
        assert_eq!(OrgKind::parse("BASELINE"), Some(OrgKind::Baseline));
        assert_eq!(OrgKind::parse("nosuch"), None);
    }

    #[test]
    fn all_orgs_run_astar() {
        let cfg = quick();
        let bench = cameo_workloads::require("astar").expect("suite benchmark");
        let kinds = [
            OrgKind::Baseline,
            OrgKind::AlloyCache,
            OrgKind::TlmStatic,
            OrgKind::TlmDynamic,
            OrgKind::TlmFreq,
            OrgKind::TlmOracle,
            OrgKind::cameo_default(),
            OrgKind::MemCache { split_percent: 50 },
            OrgKind::DoubleUse,
        ];
        for kind in kinds {
            let stats = run_benchmark(&bench, kind, &cfg);
            assert!(stats.instructions > 0, "{}", kind.label());
            assert!(stats.execution_cycles > 0, "{}", kind.label());
        }
    }

    #[test]
    fn device_axis_builds_every_swept_org() {
        let cfg = quick();
        let bench = cameo_workloads::require("astar").expect("suite benchmark");
        for device in DeviceKind::all() {
            for kind in [
                OrgKind::AlloyCache,
                OrgKind::TlmDynamic,
                OrgKind::cameo_default(),
                OrgKind::MemCache { split_percent: 25 },
                OrgKind::MemCache { split_percent: 75 },
            ] {
                let mut org = build_org_on(&bench, kind, device, &cfg);
                let stats = Runner::new(bench, &cfg)
                    .expect("valid config")
                    .try_run(org.as_mut(), None)
                    .expect("run completes");
                assert!(
                    stats.demand_reads > 0,
                    "{}@{}",
                    kind.label(),
                    device.label()
                );
            }
        }
    }

    #[test]
    fn flat_device_axis_is_identical_to_plain_build() {
        // The device-axis builder with DeviceKind::Flat must construct
        // byte-identical systems to build_org: golden suites depend on it.
        let cfg = quick();
        let bench = cameo_workloads::require("astar").expect("suite benchmark");
        for kind in [
            OrgKind::cameo_default(),
            OrgKind::AlloyCache,
            OrgKind::MemCache { split_percent: 50 },
        ] {
            let run = |mut org: Box<dyn MemoryOrganization>| {
                Runner::new(bench, &cfg)
                    .expect("valid config")
                    .try_run(org.as_mut(), None)
                    .expect("run completes")
            };
            let plain = run(build_org(&bench, kind, &cfg));
            let on_flat = run(build_org_on(&bench, kind, DeviceKind::Flat, &cfg));
            assert_eq!(plain, on_flat, "{}", kind.label());
        }
    }

    #[test]
    fn stacked_designs_beat_baseline_on_latency_workload() {
        let cfg = SystemConfig {
            scale: 4096,
            cores: 2,
            instructions_per_core: 200_000,
            ..Default::default()
        };
        let bench = cameo_workloads::require("sphinx3").expect("suite benchmark");
        let baseline = run_benchmark(&bench, OrgKind::Baseline, &cfg);
        for kind in [
            OrgKind::AlloyCache,
            OrgKind::cameo_default(),
            OrgKind::DoubleUse,
        ] {
            let s = run_benchmark(&bench, kind, &cfg);
            let speedup = s.speedup_over(&baseline);
            assert!(
                speedup > 1.0,
                "{} speedup {:.3} not > 1",
                kind.label(),
                speedup
            );
        }
    }

    #[test]
    fn page_profile_covers_trace() {
        let cfg = quick();
        let bench = cameo_workloads::require("astar").expect("suite benchmark");
        let profile = page_profile(&bench, &cfg);
        assert!(!profile.is_empty());
        let total: u64 = profile.iter().map(|(_, c)| *c).sum();
        let expected = cfg.expected_events_per_core(bench.mpki) * u64::from(cfg.cores);
        assert_eq!(total, expected);
    }

    #[test]
    fn traced_build_matches_untraced_results() {
        use crate::trace::{SharedSink, TraceOptions};
        let cfg = quick();
        let bench = cameo_workloads::require("astar").expect("suite benchmark");
        for kind in [
            OrgKind::cameo_default(),
            OrgKind::AlloyCache,
            OrgKind::TlmDynamic,
        ] {
            let plain = run_benchmark(&bench, kind, &cfg);
            let sink = SharedSink::new(TraceOptions::default());
            let mut org = build_org_traced(&bench, kind, &cfg, sink.clone());
            let traced = Runner::new(bench, &cfg)
                .expect("valid config")
                .try_run(org.as_mut(), None)
                .expect("run completes");
            assert_eq!(
                plain,
                traced,
                "{}: tracing must not perturb results",
                kind.label()
            );
            let totals = sink.take().totals();
            assert!(totals.serviced() > 0, "{}: no service events", kind.label());
            // The epoch counters agree with the end-of-run aggregates for
            // the post-warmup measured region... plus warmup (events are
            // emitted from cycle zero; stats are reset at the boundary).
            assert!(
                totals.stacked_serviced + totals.off_chip_serviced
                    >= traced.serviced_stacked + traced.serviced_off_chip,
                "{}: event counts below reported aggregates",
                kind.label()
            );
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(OrgKind::cameo_default().label(), "CAMEO");
        assert_eq!(OrgKind::AlloyCache.label(), "Cache");
    }
}
