//! Full-system simulation driver for the CAMEO reproduction.
//!
//! Ties together the substrates — DRAM timing ([`cameo_memsim`]), caches
//! ([`cameo_cachesim`]), the OS ([`cameo_vmem`]), the CAMEO controller
//! ([`cameo`]) and the workload generators ([`cameo_workloads`]) — into the
//! experiment harness that regenerates every table and figure of the paper:
//!
//! * [`SystemConfig`] — the paper's Table I system, scaled for tractable
//!   simulation;
//! * [`org`] — one [`MemoryOrganization`] per design point: Baseline,
//!   Alloy Cache, TLM-Static/Dynamic/Freq/Oracle, CAMEO (any LLT design ×
//!   any predictor) and the idealistic DoubleUse;
//! * [`Runner`](runner::Runner) — the multi-core event loop with an
//!   MLP-bounded core timing model;
//! * [`RunStats`] — execution time, service breakdown, per-device
//!   bandwidth, paging and prediction-case counters;
//! * [`energy`] — the normalized power / EDP model of Figure 14;
//! * [`experiments`] — one-call experiment entry points used by the bench
//!   binaries;
//! * [`l3_stream`] — an explicit-L3 trace mode where the post-L3 stream
//!   emerges from the cache model instead of being generated directly;
//! * [`report`] — plain-text/CSV table formatting;
//! * [`trace`] — the armed event sink and epoch aggregation for the
//!   zero-overhead tracing subsystem defined in [`cameo_types`].
//!
//! # Examples
//!
//! ```no_run
//! use cameo_sim::experiments::{run_benchmark, OrgKind};
//! use cameo_sim::SystemConfig;
//!
//! let config = SystemConfig::default();
//! let bench = cameo_workloads::require("astar").expect("astar is in the Table II suite");
//! let baseline = run_benchmark(&bench, OrgKind::Baseline, &config);
//! let cameo = run_benchmark(&bench, OrgKind::cameo_default(), &config);
//! println!("speedup: {:.2}x", cameo.speedup_over(&baseline));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod config;
mod core_model;
pub mod energy;
mod error;
pub mod experiments;
pub mod harness;
pub mod l3_stream;
pub mod org;
mod pool;
pub mod report;
pub mod runner;
mod stats;
pub mod trace;

pub use config::{ConfigError, SystemConfig};
pub use core_model::CoreTimeline;
pub use error::SimError;
pub use org::{MemoryOrganization, OrgResult};
pub use stats::{BandwidthReport, RunStats};
