//! Typed errors for the simulation driver.
//!
//! The runner and the batch harness report failures as values instead of
//! panicking, so a sweep over many design points can record what went wrong
//! with one point and keep going (see [`crate::harness`]).

use cameo_workloads::UnknownBenchmark;

use crate::config::ConfigError;

/// Anything that can go wrong while setting up or driving a simulation.
#[derive(Clone, PartialEq, Debug)]
pub enum SimError {
    /// The [`crate::SystemConfig`] failed validation.
    Config(ConfigError),
    /// A benchmark name did not resolve against the Table II suite.
    UnknownBenchmark(UnknownBenchmark),
    /// `run_with_streams` was handed an empty stream list.
    EmptyStreams,
    /// The cycle-budget watchdog tripped: a core's issue clock passed the
    /// budget before every core retired its instructions.
    WatchdogExpired {
        /// The configured budget, in cycles.
        budget_cycles: u64,
        /// Instructions the offending core had retired when it tripped.
        retired_instructions: u64,
    },
    /// A design point panicked inside the crash-isolated harness.
    PointPanicked {
        /// The design-point key (`bench::org`).
        key: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A design point failed on every allowed attempt.
    PointExhausted {
        /// The design-point key (`bench::org`).
        key: String,
        /// Attempts made (initial try plus retries).
        attempts: u32,
        /// Rendering of the last attempt's error.
        last_error: String,
    },
    /// Reading or writing the sweep checkpoint file failed.
    Checkpoint(String),
    /// A checkpoint (or journal) file failed an I/O operation, with the
    /// [`std::io::ErrorKind`] preserved so callers can tell persistent
    /// conditions (disk full = `StorageFull`/`QuotaExceeded`, short
    /// write = `WriteZero`) from transient ones instead of parsing a
    /// rendered message.
    CheckpointIo {
        /// The file involved.
        path: String,
        /// The operation that failed (`"open"`, `"append"`, `"flush"`,
        /// `"read"`, `"truncate"`).
        op: &'static str,
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// Rendering of the underlying OS error.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid system configuration: {e}"),
            SimError::UnknownBenchmark(e) => e.fmt(f),
            SimError::EmptyStreams => f.write_str("need at least one miss stream"),
            SimError::WatchdogExpired {
                budget_cycles,
                retired_instructions,
            } => write!(
                f,
                "cycle-budget watchdog expired: {retired_instructions} instructions \
                 retired within the {budget_cycles}-cycle budget"
            ),
            SimError::PointPanicked { key, message } => {
                write!(f, "design point {key} panicked: {message}")
            }
            SimError::PointExhausted {
                key,
                attempts,
                last_error,
            } => write!(
                f,
                "design point {key} failed after {attempts} attempts; last error: {last_error}"
            ),
            SimError::Checkpoint(detail) => write!(f, "checkpoint I/O failed: {detail}"),
            SimError::CheckpointIo {
                path,
                op,
                kind,
                detail,
            } => write!(f, "checkpoint {op} on {path} failed ({kind:?}): {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<UnknownBenchmark> for SimError {
    fn from(e: UnknownBenchmark) -> Self {
        SimError::UnknownBenchmark(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_detail() {
        let e = SimError::from(ConfigError::ZeroScale);
        assert!(e.to_string().contains("scale must be positive"));
        let e = SimError::WatchdogExpired {
            budget_cycles: 500,
            retired_instructions: 42,
        };
        assert!(e.to_string().contains("500"));
        let e = SimError::PointExhausted {
            key: "astar::CAMEO".into(),
            attempts: 3,
            last_error: "boom".into(),
        };
        assert!(e.to_string().contains("astar::CAMEO") && e.to_string().contains("boom"));
    }

    #[test]
    fn checkpoint_io_preserves_the_kind() {
        let e = SimError::CheckpointIo {
            path: "/tmp/x.jsonl".into(),
            op: "append",
            kind: std::io::ErrorKind::WriteZero,
            detail: "short write".into(),
        };
        assert!(e.to_string().contains("append"));
        assert!(e.to_string().contains("WriteZero"));
        assert!(matches!(
            e,
            SimError::CheckpointIo {
                kind: std::io::ErrorKind::WriteZero,
                ..
            }
        ));
    }

    #[test]
    fn unknown_benchmark_converts() {
        let err = cameo_workloads::require("nope").expect_err("not a suite name");
        let sim: SimError = err.into();
        assert!(sim.to_string().contains("nope"));
    }
}
