//! The multi-core event loop driving an organization with rate-mode
//! workload copies.

use cameo_types::{Access, AccessKind, CoreId, Cycle};
use cameo_workloads::{BenchSpec, MissEvent, MissStream, TraceConfig, TraceGenerator};

use crate::config::SystemConfig;
use crate::core_model::CoreTimeline;
use crate::error::SimError;
use crate::org::MemoryOrganization;
use crate::stats::RunStats;

/// Drives `cores` rate-mode copies of one benchmark through a memory
/// organization and produces [`RunStats`] for the post-warmup region.
///
/// Event ordering is global: the core with the earliest next-issue time
/// goes next, so device-level contention between cores is modeled
/// faithfully.
pub struct Runner<'a> {
    bench: BenchSpec,
    config: &'a SystemConfig,
}

struct CoreState<S> {
    timeline: CoreTimeline,
    stream: S,
    pending: MissEvent,
}

/// Sentinel in the next-issue scan for a core that retired all of its
/// instructions. Projected issue times are real cycle counts and sit many
/// orders of magnitude below this; the watchdog trips long before any
/// clock could approach it.
const CORE_DONE: u64 = u64::MAX;

/// Index of the core with the earliest projected issue time, breaking
/// ties toward the lowest index — the same `(time, index)` lexicographic
/// order the former `BinaryHeap<Reverse<(u64, usize)>>` produced, so
/// event interleaving (and therefore every statistic) is bit-identical.
/// A flat scan beats heap maintenance for the small fixed core counts we
/// simulate (the paper's configurations are 8-core).
fn earliest_core(next_issue: &[u64]) -> Option<usize> {
    let mut best = CORE_DONE;
    let mut idx = None;
    for (i, &t) in next_issue.iter().enumerate() {
        if t < best {
            best = t;
            idx = Some(i);
        }
    }
    idx
}

/// Per-core trace configurations for one benchmark under `config`.
///
/// Table II footprints are totals over all rate-mode copies: each core owns
/// `footprint / cores`, in a disjoint virtual range. Exposed so that
/// profiling passes (TLM-Oracle) generate exactly the streams the timed run
/// will see.
pub fn trace_configs(bench: &BenchSpec, config: &SystemConfig) -> Vec<TraceConfig> {
    let per_core_pages =
        (bench.footprint.scale_down(config.scale).pages() / u64::from(config.cores)).max(1);
    (0..config.cores)
        .map(|core| TraceConfig {
            scale: config.scale * u64::from(config.cores),
            seed: config
                .seed
                .wrapping_mul(0x9E37)
                .wrapping_add(u64::from(core)),
            core_offset_pages: u64::from(core) * per_core_pages,
        })
        .collect()
}

impl<'a> Runner<'a> {
    /// Creates a runner for one benchmark under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is invalid (see
    /// [`SystemConfig::validate`]).
    pub fn new(bench: BenchSpec, config: &'a SystemConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(Self { bench, config })
    }

    fn build_streams(&self) -> Vec<TraceGenerator> {
        trace_configs(&self.bench, self.config)
            .into_iter()
            .map(|tc| TraceGenerator::new(self.bench, tc))
            .collect()
    }

    /// Runs the benchmark's synthetic rate-mode streams to completion and
    /// returns the measured-region statistics.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations; prefer
    /// [`Runner::try_run`] in batch settings.
    pub fn run(&self, org: &mut dyn MemoryOrganization) -> RunStats {
        self.try_run(org, None)
            .expect("unbudgeted run with generated streams cannot report a runner error")
    }

    /// Runs with caller-provided per-core miss streams — e.g. recorded
    /// traces replayed through `cameo-trace` — instead of the synthetic
    /// generators. Heterogeneous stream sets can be passed as
    /// `Vec<Box<dyn MissStream>>`; concrete types dispatch statically.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty.
    pub fn run_with_streams<S: MissStream>(
        &self,
        org: &mut dyn MemoryOrganization,
        streams: Vec<S>,
    ) -> RunStats {
        self.try_run_with_streams(org, streams, None)
            .expect("unbudgeted run was handed at least one stream")
    }

    /// Like [`Runner::run`], with an optional cycle-budget watchdog: if any
    /// core's issue clock passes `budget_cycles` before all cores retire
    /// their instructions, the run aborts with
    /// [`SimError::WatchdogExpired`] instead of spinning forever on a
    /// misbehaving organization.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WatchdogExpired`] when the budget trips.
    pub fn try_run(
        &self,
        org: &mut dyn MemoryOrganization,
        budget_cycles: Option<u64>,
    ) -> Result<RunStats, SimError> {
        self.try_run_with_streams(org, self.build_streams(), budget_cycles)
    }

    /// Fallible core of the runner: caller-provided streams plus the
    /// optional cycle-budget watchdog of [`Runner::try_run`]. Generic over
    /// the stream type so the synthetic-trace path ([`Runner::try_run`])
    /// monomorphizes on [`TraceGenerator`] and dispatches `next_event`
    /// statically instead of through a `Box<dyn MissStream>` vtable.
    ///
    /// One unbounded [`RunSession::step`]: the chunked and unchunked
    /// paths share every instruction of the event loop, which is what
    /// makes chunked results bit-identical to this one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyStreams`] if `streams` is empty, or
    /// [`SimError::WatchdogExpired`] when the budget trips.
    pub fn try_run_with_streams<S: MissStream>(
        &self,
        org: &mut dyn MemoryOrganization,
        streams: Vec<S>,
        budget_cycles: Option<u64>,
    ) -> Result<RunStats, SimError> {
        let mut session = RunSession::new(&self.bench, self.config, org, streams)?;
        match session.step(org, budget_cycles, u64::MAX)? {
            SessionStatus::Complete(stats) => Ok(*stats),
            SessionStatus::Running => {
                unreachable!("an unbounded step only returns once every core retired")
            }
        }
    }

    /// Starts a resumable session over the synthetic rate-mode streams:
    /// the chunked-sweep entry point. The caller drives it with bounded
    /// [`RunSession::step`] calls (possibly from different threads in
    /// turn) until it completes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is invalid.
    pub fn start(
        &self,
        org: &mut dyn MemoryOrganization,
    ) -> Result<RunSession<TraceGenerator>, SimError> {
        RunSession::new(&self.bench, self.config, org, self.build_streams())
    }
}

/// What a bounded [`RunSession::step`] left behind.
#[derive(Debug)]
pub enum SessionStatus {
    /// The access budget ran out with cores still active; step again.
    Running,
    /// Every core retired its instructions; the session is finished and
    /// must not be stepped again. Boxed: the stats dwarf the `Running`
    /// arm, and they head straight into [`PointRecord::Done`], which
    /// stores them boxed anyway.
    ///
    /// [`PointRecord::Done`]: crate::checkpoint::PointRecord::Done
    Complete(Box<RunStats>),
}

/// A paused, resumable run: the complete state of the runner's event loop
/// between two post-L3 accesses.
///
/// Produced by [`Runner::start`] (or [`RunSession::new`] with explicit
/// streams) after the prefill transient; each [`RunSession::step`] then
/// services at most `max_accesses` events. The loop body is the *same
/// code* the one-shot [`Runner::try_run_with_streams`] path executes, so
/// a run split into chunks of any size retires the identical event
/// sequence and produces bit-identical [`RunStats`] — the property the
/// work-stealing sweep engine's determinism guarantee rests on. The
/// session owns no organization: the caller passes `org` to every step,
/// which is what lets a sweep worker park the pair and another worker
/// steal and resume it.
pub struct RunSession<S> {
    bench: String,
    cores: Vec<CoreState<S>>,
    next_issue: Vec<u64>,
    warmup_instr: u64,
    total_instr: u64,
    /// Divisor for the per-core instruction average (`cfg.cores`).
    core_count: u64,
    measuring: bool,
    measure_offsets: Vec<Cycle>,
    measure_instr_start: Vec<u64>,
    demand_reads: u64,
    demand_writes: u64,
    faults: u64,
    serviced_stacked: u64,
    serviced_off_chip: u64,
    read_latency_sum: u64,
    latency_histogram: [u64; 24],
}

impl<S: MissStream> RunSession<S> {
    /// Validates the configuration, runs the prefill transient through
    /// `org`, and parks the event loop before its first access.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] on an invalid configuration and
    /// [`SimError::EmptyStreams`] if `streams` is empty.
    pub fn new(
        bench: &BenchSpec,
        cfg: &SystemConfig,
        org: &mut dyn MemoryOrganization,
        streams: Vec<S>,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if streams.is_empty() {
            return Err(SimError::EmptyStreams);
        }
        let warmup_instr = (cfg.instructions_per_core as f64 * cfg.warmup_fraction) as u64;
        let total_instr = cfg.instructions_per_core;

        // The measured slice starts mid-execution: pre-touch every page of
        // every copy (interleaved across cores so residency is fair when
        // the footprint exceeds memory) to absorb the compulsory-fault
        // transient that the paper's 20 B-instruction slices amortize away.
        // The interleaved order is materialized first so one batched call
        // covers the whole transient; the order (and therefore every
        // placement decision) is exactly the per-page loop's.
        let prefill_lists: Vec<Vec<cameo_types::PageAddr>> =
            streams.iter().map(MissStream::prefill_pages).collect();
        let longest = prefill_lists.iter().map(Vec::len).max().unwrap_or(0);
        let mut interleaved = Vec::with_capacity(prefill_lists.iter().map(Vec::len).sum());
        for i in 0..longest {
            for list in &prefill_lists {
                if let Some(page) = list.get(i) {
                    interleaved.push(*page);
                }
            }
        }
        drop(prefill_lists);
        org.prefill_batch(&interleaved);
        drop(interleaved);

        let cores: Vec<CoreState<S>> = streams
            .into_iter()
            .map(|mut stream| {
                let pending = stream.next_event();
                CoreState {
                    timeline: CoreTimeline::new(cfg.ipc, cfg.mlp),
                    stream,
                    pending,
                }
            })
            .collect();

        // Per-core projected issue times ([`CORE_DONE`] once retired),
        // min-scanned by [`earliest_core`]. The projection includes
        // MLP-window stalls so device accesses are generated in
        // (approximately) nondecreasing time order.
        let next_issue: Vec<u64> = cores
            .iter()
            .map(|c| c.timeline.projected_issue(c.pending.gap_instructions).raw())
            .collect();

        let core_len = cores.len();
        Ok(Self {
            bench: bench.name.to_owned(),
            cores,
            next_issue,
            warmup_instr,
            total_instr,
            core_count: u64::from(cfg.cores),
            measuring: warmup_instr == 0,
            measure_offsets: vec![Cycle::ZERO; core_len],
            measure_instr_start: vec![0; core_len],
            demand_reads: 0,
            demand_writes: 0,
            faults: 0,
            serviced_stacked: 0,
            serviced_off_chip: 0,
            read_latency_sum: 0,
            latency_histogram: [0u64; 24],
        })
    }

    /// Services up to `max_accesses` post-L3 events, then pauses.
    ///
    /// Must be called with the same organization the session was created
    /// over. After [`SessionStatus::Complete`] the session is spent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WatchdogExpired`] when any core's issue clock
    /// passes `budget_cycles` — the budget is over the *simulated* clock,
    /// which is monotonic across steps, so passing the same budget to
    /// every step bounds the whole run exactly as the one-shot path does.
    pub fn step(
        &mut self,
        org: &mut dyn MemoryOrganization,
        budget_cycles: Option<u64>,
        max_accesses: u64,
    ) -> Result<SessionStatus, SimError> {
        let mut remaining = max_accesses;
        while remaining > 0 {
            let Some(idx) = earliest_core(&self.next_issue) else {
                return Ok(SessionStatus::Complete(Box::new(self.finish(org))));
            };
            remaining -= 1;
            let finished_instructions;
            {
                let core = &mut self.cores[idx];
                let event = core.pending;
                core.timeline.advance(event.gap_instructions);
                let issue = core.timeline.issue();
                if let Some(budget) = budget_cycles {
                    if issue.raw() > budget {
                        return Err(SimError::WatchdogExpired {
                            budget_cycles: budget,
                            retired_instructions: core.timeline.instructions(),
                        });
                    }
                }
                let access = Access {
                    core: CoreId(idx as u16),
                    line: event.line,
                    pc: event.pc,
                    kind: if event.is_write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                };
                let result = org.access(issue, &access);
                if result.faulted {
                    // The OS runs; the core resumes when the page is in.
                    core.timeline.block_until(result.completion);
                    if self.measuring {
                        self.faults += 1;
                    }
                } else if !event.is_write {
                    core.timeline.complete_read(result.completion);
                }
                if self.measuring {
                    if event.is_write {
                        self.demand_writes += 1;
                    } else {
                        self.demand_reads += 1;
                        let lat = result.completion.saturating_sub(issue).raw();
                        self.read_latency_sum += lat;
                        self.latency_histogram[crate::stats::latency_bucket(lat)] += 1;
                        match result.serviced_by {
                            cameo_types::ServiceLocation::Stacked => self.serviced_stacked += 1,
                            cameo_types::ServiceLocation::OffChip => self.serviced_off_chip += 1,
                            cameo_types::ServiceLocation::Storage => {}
                        }
                    }
                }
                finished_instructions = core.timeline.instructions();
            }

            // Warmup boundary: once every core has crossed it, zero the
            // counters and record per-core time offsets.
            if !self.measuring
                && self
                    .cores
                    .iter()
                    .all(|c| c.timeline.instructions() >= self.warmup_instr)
            {
                self.measuring = true;
                org.reset_stats();
                for (i, c) in self.cores.iter().enumerate() {
                    self.measure_offsets[i] = c.timeline.time();
                    self.measure_instr_start[i] = c.timeline.instructions();
                }
            }

            if finished_instructions < self.total_instr {
                let core = &mut self.cores[idx];
                core.pending = core.stream.next_event();
                self.next_issue[idx] = core
                    .timeline
                    .projected_issue(core.pending.gap_instructions)
                    .raw();
            } else {
                self.next_issue[idx] = CORE_DONE;
            }
        }
        if earliest_core(&self.next_issue).is_none() {
            // The budget ran out exactly at retirement; finish now rather
            // than making the caller pay a whole extra chunk round-trip.
            return Ok(SessionStatus::Complete(Box::new(self.finish(org))));
        }
        Ok(SessionStatus::Running)
    }

    /// Drains the timelines and assembles the measured-region statistics.
    fn finish(&mut self, org: &mut dyn MemoryOrganization) -> RunStats {
        // Instructions are reported as the per-core average so that CPI is
        // a per-core figure (rate-mode variance across copies is
        // negligible, as the paper notes).
        let mut execution_cycles = 0u64;
        let mut instructions_total = 0u64;
        for (i, core) in self.cores.iter_mut().enumerate() {
            let end = core.timeline.drain();
            execution_cycles =
                execution_cycles.max(end.saturating_sub(self.measure_offsets[i]).raw());
            instructions_total += core.timeline.instructions() - self.measure_instr_start[i];
        }
        let instructions = instructions_total / self.core_count;

        let stats = RunStats {
            org: org.name().to_owned(),
            bench: self.bench.clone(),
            execution_cycles: execution_cycles.max(1),
            instructions: instructions.max(1),
            demand_reads: self.demand_reads,
            demand_writes: self.demand_writes,
            serviced_stacked: self.serviced_stacked,
            serviced_off_chip: self.serviced_off_chip,
            faults: self.faults,
            bandwidth: org.bandwidth(),
            cases: org.prediction_cases(),
            migrated_pages: org.migrated_pages(),
            read_latency_sum: self.read_latency_sum,
            latency_histogram: self.latency_histogram,
        };
        #[cfg(feature = "deep-audit")]
        if let Err(violation) = stats.audit() {
            // Inconsistent counters mean every derived metric is garbage;
            // aborting the audited run is the point. lint: allow(no-panic)
            panic!("deep-audit: run statistics inconsistent: {violation}");
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::BaselineOrg;

    fn quick_config() -> SystemConfig {
        SystemConfig {
            scale: 4096,
            cores: 2,
            instructions_per_core: 50_000,
            warmup_fraction: 0.2,
            ..Default::default()
        }
    }

    fn runner<'a>(name: &str, cfg: &'a SystemConfig) -> Runner<'a> {
        let bench = cameo_workloads::require(name).expect("suite benchmark");
        Runner::new(bench, cfg).expect("test config is valid")
    }

    #[test]
    fn baseline_run_produces_sane_stats() {
        let cfg = quick_config();
        let mut org = BaselineOrg::new(cfg.off_chip(), cfg.seed);
        let stats = runner("astar", &cfg).run(&mut org);
        assert!(stats.execution_cycles > 0);
        assert!(stats.instructions > 0);
        assert!(stats.demand_reads > 0);
        assert_eq!(stats.serviced_stacked, 0); // baseline has no stacked DRAM
                                               // Base IPC is 2 in the default config: CPI floor is 0.5.
        assert!(stats.cpi() > 0.5);
    }

    #[test]
    fn deterministic_runs() {
        let cfg = quick_config();
        let mut a = BaselineOrg::new(cfg.off_chip(), cfg.seed);
        let mut b = BaselineOrg::new(cfg.off_chip(), cfg.seed);
        let sa = runner("astar", &cfg).run(&mut a);
        let sb = runner("astar", &cfg).run(&mut b);
        assert_eq!(sa.execution_cycles, sb.execution_cycles);
        assert_eq!(sa.demand_reads, sb.demand_reads);
        assert_eq!(sa.bandwidth, sb.bandwidth);
    }

    #[test]
    fn warmup_reduces_measured_instructions() {
        let cfg = quick_config();
        let mut org = BaselineOrg::new(cfg.off_chip(), cfg.seed);
        let stats = runner("astar", &cfg).run(&mut org);
        let expected_total = cfg.instructions_per_core;
        assert!(stats.instructions < expected_total);
        assert!(stats.instructions > expected_total / 2);
    }

    #[test]
    fn invalid_config_is_a_value_not_a_panic() {
        let cfg = SystemConfig {
            scale: 0,
            ..Default::default()
        };
        let bench = cameo_workloads::require("astar").expect("suite benchmark");
        let err = Runner::new(bench, &cfg).err().expect("zero scale rejected");
        assert!(err.to_string().contains("scale must be positive"));
    }

    #[test]
    fn watchdog_trips_on_tiny_budget() {
        let cfg = quick_config();
        let mut org = BaselineOrg::new(cfg.off_chip(), cfg.seed);
        let err = runner("astar", &cfg)
            .try_run(&mut org, Some(10))
            .expect_err("a 10-cycle budget cannot cover the run");
        assert!(matches!(
            err,
            crate::error::SimError::WatchdogExpired {
                budget_cycles: 10,
                ..
            }
        ));
        // A generous budget completes normally.
        let stats = runner("astar", &cfg)
            .try_run(
                &mut BaselineOrg::new(cfg.off_chip(), cfg.seed),
                Some(u64::MAX),
            )
            .expect("u64::MAX budget never trips");
        assert!(stats.demand_reads > 0);
    }

    #[test]
    fn empty_streams_rejected() {
        let cfg = quick_config();
        let mut org = BaselineOrg::new(cfg.off_chip(), cfg.seed);
        let err = runner("astar", &cfg)
            .try_run_with_streams(
                &mut org,
                Vec::<cameo_workloads::TraceGenerator>::new(),
                None,
            )
            .expect_err("no streams to drive");
        assert_eq!(err, crate::error::SimError::EmptyStreams);
    }
}
