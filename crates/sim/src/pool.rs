//! The scoped-thread worker pool behind parallel sweeps.
//!
//! This is the one module in the workspace that creates threads (enforced
//! by the `thread-spawn` xtask lint), and it only ever creates *scoped*
//! threads: workers borrow the sweep's points, options and builder
//! directly, and [`std::thread::scope`] guarantees they are joined before
//! the sweep returns — no detached thread can outlive the data it
//! borrows or leak past a sweep.
//!
//! Work distribution is a single shared atomic cursor over `0..count`:
//! each worker claims the next index with `fetch_add` until the range is
//! exhausted or the pool is cancelled. Dynamic claiming keeps all workers
//! busy even when point runtimes are wildly uneven (a watchdog-bounded
//! retry loop next to a quick baseline), which static striping would not.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Cooperative cancellation flag shared by the pool and its tasks.
///
/// A task that hits a pool-fatal condition (e.g. the sweep's checkpoint
/// file stops accepting writes) calls [`Cancel::cancel`]; workers finish
/// their in-flight task and stop claiming new ones.
#[derive(Debug, Default)]
pub(crate) struct Cancel {
    flag: AtomicBool,
}

impl Cancel {
    /// Requests that the pool stop claiming new tasks.
    pub(crate) fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Runs `task(0..count)` across at most `jobs` scoped worker threads and
/// returns once every claimed task has finished. Each index is claimed
/// exactly once; after [`Cancel::cancel`], unclaimed indices are skipped.
///
/// With `jobs <= 1` (or a single task) the tasks run inline on the
/// calling thread — byte-for-byte the serial code path, no threads.
pub(crate) fn for_each_indexed<F>(jobs: usize, count: usize, task: F)
where
    F: Fn(usize, &Cancel) + Sync,
{
    let cancel = Cancel::default();
    let next = AtomicUsize::new(0);
    let claim = || {
        if cancel.is_cancelled() {
            return None;
        }
        let n = next.fetch_add(1, Ordering::Relaxed);
        (n < count).then_some(n)
    };
    let workers = jobs.min(count);
    if workers <= 1 {
        while let Some(n) = claim() {
            task(n, &cancel);
        }
        return;
    }
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let claim = &claim;
            let task = &task;
            let cancel = &cancel;
            std::thread::Builder::new()
                .name(format!("cameo-sweep-{worker}"))
                .spawn_scoped(scope, move || {
                    while let Some(n) = claim() {
                        task(n, cancel);
                    }
                })
                .expect("spawning a scoped worker fails only on OS thread exhaustion");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    fn run_and_collect(jobs: usize, count: usize) -> Vec<usize> {
        let seen = Mutex::new(Vec::new());
        for_each_indexed(jobs, count, |n, _| {
            seen.lock().expect("no test task panics while recording").push(n);
        });
        seen.into_inner().expect("all workers joined before inspection")
    }

    #[test]
    fn every_index_runs_exactly_once() {
        for jobs in [1, 2, 4, 7] {
            let seen = run_and_collect(jobs, 23);
            assert_eq!(seen.len(), 23, "jobs={jobs}");
            let distinct: BTreeSet<usize> = seen.iter().copied().collect();
            assert_eq!(distinct, (0..23).collect(), "jobs={jobs}");
        }
    }

    #[test]
    fn serial_path_preserves_order() {
        // jobs=1 must be the exact serial loop: in-order, same thread.
        let seen = run_and_collect(1, 10);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_task_ranges() {
        assert!(run_and_collect(4, 0).is_empty());
        assert_eq!(run_and_collect(4, 1), vec![0]);
    }

    #[test]
    fn cancel_stops_new_claims() {
        let seen = Mutex::new(Vec::new());
        // Serial pool: cancelling in the first task must leave the rest
        // unclaimed, deterministically.
        for_each_indexed(1, 100, |n, cancel| {
            seen.lock().expect("no test task panics while recording").push(n);
            cancel.cancel();
        });
        assert_eq!(seen.into_inner().expect("pool returned"), vec![0]);
    }

    #[test]
    fn parallel_cancel_bounds_claims() {
        let ran = AtomicUsize::new(0);
        for_each_indexed(4, 1000, |_, cancel| {
            ran.fetch_add(1, Ordering::Relaxed);
            cancel.cancel();
        });
        // At most one in-flight task per worker after the first cancel.
        assert!(ran.load(Ordering::Relaxed) <= 4);
    }

    /// Exhaustive-interleaving check of the claim protocol.
    ///
    /// The `claim` closure above is two separate atomic steps — the
    /// cancel check and the `fetch_add` — and a worker can be suspended
    /// between them. This model enumerates *every* two-worker schedule
    /// of those steps (DFS over the interleaving tree, memoized on the
    /// exact shared state) and asserts the properties the sweep relies
    /// on: no index is ever run twice, without cancellation every index
    /// runs, and the cursor overshoots `count` by at most one failed
    /// claim per worker. Each worker is a three-step loop mirroring
    /// `for_each_indexed`:
    ///
    /// 1. `CHECK`: read the cancel flag; stop if set.
    /// 2. `CLAIM`: `n = next.fetch_add(1)`; stop if `n >= count`.
    /// 3. `RUN`: execute task `n` (optionally cancelling), loop to 1.
    mod interleavings {
        use std::collections::BTreeSet;

        const WORKERS: usize = 2;
        const CHECK: u8 = 0;
        const CLAIM: u8 = 1;
        const RUN: u8 = 2;
        const DONE: u8 = 3;

        /// The shared state of the modeled pool plus each worker's
        /// program counter. `executed` is a bitmask of run indices;
        /// `fetches` counts `fetch_add` calls (the overshoot metric).
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        struct State {
            pc: [u8; WORKERS],
            claimed: [usize; WORKERS],
            next: usize,
            cancelled: bool,
            executed: u32,
            fetches: usize,
        }

        fn explore(count: usize, cancel_at: Option<usize>) {
            let start = State {
                pc: [CHECK; WORKERS],
                claimed: [usize::MAX; WORKERS],
                next: 0,
                cancelled: false,
                executed: 0,
                fetches: 0,
            };
            let mut seen: BTreeSet<State> = BTreeSet::new();
            let mut stack = vec![start];
            let mut terminals = 0usize;
            while let Some(state) = stack.pop() {
                if !seen.insert(state) {
                    continue;
                }
                if state.pc.iter().all(|&pc| pc == DONE) {
                    terminals += 1;
                    assert!(
                        state.fetches <= count + WORKERS,
                        "cursor overshot: {} fetch_adds for count={count}",
                        state.fetches
                    );
                    if !state.cancelled {
                        assert_eq!(
                            state.executed,
                            (1u32 << count) - 1,
                            "an index was skipped without cancellation"
                        );
                    }
                    continue;
                }
                for w in 0..WORKERS {
                    let mut s = state;
                    match s.pc[w] {
                        CHECK => s.pc[w] = if s.cancelled { DONE } else { CLAIM },
                        CLAIM => {
                            let n = s.next;
                            s.next += 1;
                            s.fetches += 1;
                            if n < count {
                                s.claimed[w] = n;
                                s.pc[w] = RUN;
                            } else {
                                s.pc[w] = DONE;
                            }
                        }
                        RUN => {
                            let n = s.claimed[w];
                            assert_eq!(
                                s.executed & (1 << n),
                                0,
                                "index {n} claimed twice in some schedule"
                            );
                            s.executed |= 1 << n;
                            if cancel_at == Some(n) {
                                s.cancelled = true;
                            }
                            s.claimed[w] = usize::MAX;
                            s.pc[w] = CHECK;
                        }
                        _ => continue,
                    }
                    stack.push(s);
                }
            }
            assert!(terminals > 0, "no terminal schedule reached");
        }

        #[test]
        fn all_schedules_claim_each_index_once_and_completely() {
            for count in 1..=4 {
                explore(count, None);
            }
        }

        #[test]
        fn all_schedules_with_cancellation_stay_unique_and_bounded() {
            for count in 1..=4 {
                for cancel_at in 0..count {
                    explore(count, Some(cancel_at));
                }
            }
        }
    }
}
