//! The scoped-thread work-stealing pool behind parallel sweeps.
//!
//! This is the one module in the workspace that creates threads (enforced
//! by the `thread-spawn` xtask lint), and it only ever creates *scoped*
//! threads: workers borrow the sweep's points, options and builder
//! directly, and [`std::thread::scope`] guarantees they are joined before
//! the sweep returns — no detached thread can outlive the data it
//! borrows or leak past a sweep.
//!
//! Work distribution is per-worker Chase–Lev deques (owner pushes and
//! pops at the bottom, thieves steal at the top) instead of a single
//! shared claim cursor. The deques buy two things the cursor could not:
//!
//! 1. **Stealable continuations.** A task may *yield* instead of
//!    finishing ([`TaskStatus::Yield`]); the worker re-pushes it and goes
//!    back to claiming. The harness uses this to split one long sweep
//!    point into epoch-sized chunks, so a 23 ms point no longer
//!    serializes the tail of a sweep — idle workers steal the parked
//!    continuation and run its next chunk.
//! 2. **Locality by default.** A worker drains its own deque LIFO before
//!    stealing FIFO from a victim, so a yielded point is usually resumed
//!    by the worker whose caches are still warm with it.
//!
//! The push/pop/steal protocol is verified by an exhaustive
//! interleaving model (see the `interleavings` test module): every
//! owner-plus-two-thieves schedule at atomic-step granularity is
//! enumerated and checked for double-claims and lost tasks. All deque
//! atomics are `SeqCst`: the operations run once per *chunk* (tens of
//! microseconds to milliseconds of simulation), so the cost of the
//! strongest ordering is unmeasurable, and it keeps the verified model —
//! which assumes a single total order of steps — an honest description
//! of the implementation.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Cooperative cancellation flag shared by the pool and its tasks.
///
/// A task that hits a pool-fatal condition (e.g. the sweep's checkpoint
/// file stops accepting writes) calls [`Cancel::cancel`]; workers finish
/// their in-flight task and stop claiming new ones.
#[derive(Debug, Default)]
pub(crate) struct Cancel {
    flag: AtomicBool,
}

impl Cancel {
    /// Requests that the pool stop claiming new tasks.
    pub(crate) fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// What a pool task's invocation left behind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum TaskStatus {
    /// The task is finished and must not be invoked again.
    Done,
    /// The task ran one chunk and parked resumable state; re-queue it.
    /// Any worker may run the next chunk — never two at once, because the
    /// id is claimed from the deques exactly once per push.
    Yield,
}

/// A Chase–Lev work-stealing deque over task indices, in safe Rust.
///
/// The owner pushes and pops at the *bottom*; thieves steal at the *top*.
/// `top` and `bottom` are monotonically-increasing virtual indices mapped
/// onto `slots` by modulo. Capacity is fixed at `count + 1` for a pool of
/// `count` tasks, which makes the classic stale-slot steal hazard
/// structurally impossible: a steal at index `t` can only read a stale
/// value if some push at `b' ≥ t + capacity` overwrote the slot while
/// `top` was still `t`, which would require `b' - t > count` live
/// entries — more than the total number of tasks in existence.
struct Deque {
    top: AtomicUsize,
    bottom: AtomicUsize,
    slots: Box<[AtomicUsize]>,
}

impl Deque {
    fn new(capacity: usize) -> Self {
        Self {
            top: AtomicUsize::new(0),
            bottom: AtomicUsize::new(0),
            slots: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Owner-only: makes `task` available at the bottom.
    fn push(&self, task: usize) {
        let b = self.bottom.load(Ordering::SeqCst);
        let slot = &self.slots[b % self.slots.len()];
        slot.store(task, Ordering::SeqCst);
        self.bottom.store(b.wrapping_add(1), Ordering::SeqCst);
    }

    /// Owner-only: claims the most recently pushed task, racing thieves
    /// for the last element.
    fn pop(&self) -> Option<usize> {
        let b0 = self.bottom.load(Ordering::SeqCst);
        if b0 == 0 {
            // Nothing was ever pushed that is still reachable: `bottom`
            // only rests at 0 before the first push of this deque's
            // lifetime (restores always return it to its pre-pop value).
            return None;
        }
        let b = b0 - 1;
        // Publish the claim-in-progress, then look at the top.
        self.bottom.store(b, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t > b {
            // Empty: a thief already took everything. Restore.
            self.bottom.store(b0, Ordering::SeqCst);
            return None;
        }
        let slot = &self.slots[b % self.slots.len()];
        if t < b {
            // More than one element: the bottom one is uncontended.
            return Some(slot.load(Ordering::SeqCst));
        }
        // Exactly one element: race any thief for it by advancing `top`.
        let top = &self.top;
        let race = top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.bottom.store(b0, Ordering::SeqCst);
        race.is_ok().then(|| slot.load(Ordering::SeqCst))
    }

    /// Thief: claims the oldest task. `None` means empty *or* lost a
    /// race; callers are retry loops either way.
    fn steal(&self) -> Option<usize> {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        if t >= b {
            return None;
        }
        let slot = &self.slots[t % self.slots.len()];
        let task = slot.load(Ordering::SeqCst);
        let top = &self.top;
        let race = top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst);
        race.is_ok().then_some(task)
    }
}

/// Runs `task(0..count)` across at most `jobs` scoped worker threads and
/// returns once every task has reported [`TaskStatus::Done`] (or the
/// pool was cancelled). Each task id is live on exactly one worker at a
/// time; a [`TaskStatus::Yield`] re-queues it on the yielding worker's
/// own deque, from which any worker (that one first) may claim it again.
///
/// After [`Cancel::cancel`]: no new ids are claimed; a worker holding a
/// yielding task runs it to `Done` rather than parking it (a started
/// task is never stranded half-run inside a worker); ids already parked
/// in deques are abandoned — the cancelling caller is reporting a sweep-
/// fatal error and will discard partial results anyway.
///
/// With `jobs <= 1` (or a single task) the tasks run inline on the
/// calling thread, in index order, each driven to `Done` before the
/// next starts — byte-for-byte the serial code path, no threads.
pub(crate) fn run_chunked<F>(jobs: usize, count: usize, task: F)
where
    F: Fn(usize, &Cancel) -> TaskStatus + Sync,
{
    let cancel = Cancel::default();
    let workers = jobs.min(count);
    if workers <= 1 {
        for n in 0..count {
            if cancel.is_cancelled() {
                break;
            }
            while task(n, &cancel) == TaskStatus::Yield {}
        }
        return;
    }

    // Capacity `count + 1` per deque: any single deque can in the worst
    // case hold every live task (a worker that stole widely and had them
    // all yield), and the +1 headroom is what the stale-slot argument in
    // [`Deque`]'s docs rests on.
    let deques: Vec<Deque> = (0..workers).map(|_| Deque::new(count + 1)).collect();
    // Strided initial distribution, pushed in reverse so the LIFO owner
    // pop sees ascending indices — worker 0 starts on task 0, matching
    // the old cursor pool's claim order when nothing yields.
    for (w, deque) in deques.iter().enumerate() {
        for n in (w..count).step_by(workers).rev() {
            deque.push(n);
        }
    }
    let completed = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let completed = &completed;
            let cancel = &cancel;
            let task = &task;
            std::thread::Builder::new()
                .name(format!("cameo-sweep-{w}"))
                .spawn_scoped(scope, move || loop {
                    let claimed = if cancel.is_cancelled() {
                        None
                    } else {
                        deques[w].pop().or_else(|| {
                            (1..workers).find_map(|i| deques[(w + i) % workers].steal())
                        })
                    };
                    let Some(id) = claimed else {
                        if cancel.is_cancelled() || completed.load(Ordering::SeqCst) == count {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    loop {
                        match task(id, cancel) {
                            TaskStatus::Done => {
                                completed.fetch_add(1, Ordering::SeqCst);
                                break;
                            }
                            TaskStatus::Yield => {
                                if cancel.is_cancelled() {
                                    // Drive the started task home instead
                                    // of stranding its state in a deque no
                                    // one will drain.
                                    continue;
                                }
                                deques[w].push(id);
                                break;
                            }
                        }
                    }
                })
                .expect("spawning a scoped worker fails only on OS thread exhaustion");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    /// The run-to-completion special case of [`run_chunked`]: every
    /// invocation finishes its task — the old claim-cursor pool's
    /// contract, which these tests pin on the deque engine.
    fn for_each_indexed<F>(jobs: usize, count: usize, task: F)
    where
        F: Fn(usize, &Cancel) + Sync,
    {
        run_chunked(jobs, count, |n, cancel| {
            task(n, cancel);
            TaskStatus::Done
        });
    }

    fn run_and_collect(jobs: usize, count: usize) -> Vec<usize> {
        let seen = Mutex::new(Vec::new());
        for_each_indexed(jobs, count, |n, _| {
            seen.lock()
                .expect("no test task panics while recording")
                .push(n);
        });
        seen.into_inner()
            .expect("all workers joined before inspection")
    }

    #[test]
    fn every_index_runs_exactly_once() {
        for jobs in [1, 2, 4, 7] {
            let seen = run_and_collect(jobs, 23);
            assert_eq!(seen.len(), 23, "jobs={jobs}");
            let distinct: BTreeSet<usize> = seen.iter().copied().collect();
            assert_eq!(distinct, (0..23).collect(), "jobs={jobs}");
        }
    }

    #[test]
    fn serial_path_preserves_order() {
        // jobs=1 must be the exact serial loop: in-order, same thread.
        let seen = run_and_collect(1, 10);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_task_ranges() {
        assert!(run_and_collect(4, 0).is_empty());
        assert_eq!(run_and_collect(4, 1), vec![0]);
    }

    #[test]
    fn cancel_stops_new_claims() {
        let seen = Mutex::new(Vec::new());
        // Serial pool: cancelling in the first task must leave the rest
        // unclaimed, deterministically.
        for_each_indexed(1, 100, |n, cancel| {
            seen.lock()
                .expect("no test task panics while recording")
                .push(n);
            cancel.cancel();
        });
        assert_eq!(seen.into_inner().expect("pool returned"), vec![0]);
    }

    #[test]
    fn parallel_cancel_bounds_claims() {
        let ran = AtomicUsize::new(0);
        for_each_indexed(4, 1000, |_, cancel| {
            ran.fetch_add(1, Ordering::Relaxed);
            cancel.cancel();
        });
        // At most one in-flight task per worker after the first cancel.
        assert!(ran.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn yielding_tasks_run_to_completion_chunked() {
        // Each task yields `n % 3` times before finishing; every task's
        // invocation count must be exactly yields + 1, at every job count.
        const COUNT: usize = 17;
        for jobs in [1, 2, 4] {
            let invocations: Vec<AtomicUsize> = (0..COUNT).map(|_| AtomicUsize::new(0)).collect();
            run_chunked(jobs, COUNT, |n, _| {
                let prior = invocations[n].fetch_add(1, Ordering::Relaxed);
                if prior < n % 3 {
                    TaskStatus::Yield
                } else {
                    TaskStatus::Done
                }
            });
            for (n, inv) in invocations.iter().enumerate() {
                assert_eq!(
                    inv.load(Ordering::Relaxed),
                    n % 3 + 1,
                    "task {n} at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn serial_chunked_interleaves_nothing() {
        // jobs=1: each task is driven to Done before the next starts, so
        // the invocation log is n repeated (yields+1) times, in order.
        let log = Mutex::new(Vec::new());
        let counts = [2usize, 0, 1];
        run_chunked(1, 3, |n, _| {
            let mut log = log.lock().expect("serial task records");
            log.push(n);
            let so_far = log.iter().filter(|&&x| x == n).count();
            drop(log);
            if so_far <= counts[n] {
                TaskStatus::Yield
            } else {
                TaskStatus::Done
            }
        });
        assert_eq!(
            log.into_inner().expect("pool returned"),
            vec![0, 0, 0, 1, 2, 2]
        );
    }

    #[test]
    fn cancelled_yielding_task_still_finishes() {
        // A task that cancels and then yields must still be driven to
        // Done by the worker holding it (never stranded), serial and
        // parallel alike.
        for jobs in [1, 4] {
            let invocations: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
            run_chunked(jobs, 8, |n, cancel| {
                cancel.cancel();
                if invocations[n].fetch_add(1, Ordering::Relaxed) == 0 {
                    TaskStatus::Yield
                } else {
                    TaskStatus::Done
                }
            });
            // Every task that *started* was driven through its Yield to
            // Done (exactly two invocations); unstarted tasks stay at 0.
            let counts: Vec<usize> = invocations
                .iter()
                .map(|inv| inv.load(Ordering::Relaxed))
                .collect();
            assert!(
                counts.iter().all(|&c| c == 0 || c == 2),
                "jobs={jobs}: {counts:?}"
            );
            assert!(counts.contains(&2), "jobs={jobs}");
        }
    }

    /// Exhaustive-interleaving check of the Chase–Lev deque protocol.
    ///
    /// The deque in this module is claimed to be safe under any
    /// interleaving of one owner and any number of thieves. This model
    /// enumerates *every* schedule of one owner plus two thieves over a
    /// single deque at atomic-step granularity (DFS over the
    /// interleaving tree, memoized on the exact shared state — the
    /// continuation of [`crate::pool`]'s PR 5 cursor model) and asserts
    /// the two properties the sweep engine rests on:
    ///
    /// - **uniqueness**: no push is ever claimed twice (a double-claim
    ///   would run one sweep chunk on two workers at once);
    /// - **completeness**: at every terminal schedule, every push has
    ///   been claimed exactly once (no task is lost in the deque).
    ///
    /// Two owner programs are explored: plain push-all-then-pop-all, and
    /// a variant that re-pushes the first task it pops (modeling a
    /// [`TaskStatus::Yield`] continuation re-entering the deque — a
    /// thief's re-push lands in the *thief's own* deque, a disjoint
    /// instance of this same protocol, so the single-deque model
    /// covers it). Every load, store and CAS of `top`, `bottom` and the
    /// slots is its own step; `SeqCst` everywhere in the implementation
    /// is what licenses modeling them as one global interleaving.
    mod interleavings {
        use std::collections::BTreeSet;

        const THIEVES: usize = 2;
        const MAX_TASKS: usize = 3;
        /// Slot array bound: `count + 1` for the largest driven count.
        const CAP_MAX: usize = MAX_TASKS + 1;

        // Owner phases.
        const O_PUSH_READ_B: u8 = 0;
        const O_PUSH_WRITE_SLOT: u8 = 1;
        const O_PUSH_WRITE_B: u8 = 2;
        const O_POP_READ_B: u8 = 3;
        const O_POP_WRITE_B: u8 = 4;
        const O_POP_READ_T: u8 = 5;
        const O_POP_CAS: u8 = 6;
        const O_POP_RESTORE_WON: u8 = 7;
        const O_POP_RESTORE_LOST: u8 = 8;
        const O_POP_RESTORE_EMPTY: u8 = 9;
        const O_DONE: u8 = 10;

        // Thief phases.
        const T_READ_TOP: u8 = 0;
        const T_READ_BOT: u8 = 1;
        const T_READ_SLOT: u8 = 2;
        const T_CAS: u8 = 3;
        const T_DONE: u8 = 4;

        /// The exact shared state of the modeled deque plus each agent's
        /// program counter and registers. Fixed-size arrays throughout so
        /// the state is `Copy + Ord` and memoizable in a `BTreeSet`.
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        struct State {
            top: u8,
            bottom: u8,
            slots: [u8; CAP_MAX],
            o_phase: u8,
            /// Pop: the decremented bottom. Push: the slot index basis.
            o_b: u8,
            /// Pop: the loaded top.
            o_t: u8,
            /// Push: the task id being pushed.
            o_task: u8,
            /// Initial pushes not yet started.
            o_pushes_left: u8,
            /// Re-push of the first popped task still owed (variant 2).
            o_repush_owed: bool,
            t_phase: [u8; THIEVES],
            t_t: [u8; THIEVES],
            t_task: [u8; THIEVES],
            pushes: [u8; MAX_TASKS],
            claims: [u8; MAX_TASKS],
        }

        /// Records a claim of `task`, asserting it never outruns the
        /// pushes made so far (uniqueness: one claim per push).
        fn claim(s: &mut State, task: u8, who: &str) {
            let t = task as usize;
            assert!(
                s.claims[t] < s.pushes[t],
                "{who} double-claimed task {task} in some schedule"
            );
            s.claims[t] += 1;
        }

        /// Owner bookkeeping after a successful pop of `task`: either
        /// start the owed re-push of it or go back to popping.
        fn after_owner_claim(s: &mut State, task: u8) {
            claim(s, task, "owner");
            if s.o_repush_owed {
                s.o_repush_owed = false;
                s.o_task = task;
                s.o_phase = O_PUSH_READ_B;
            } else {
                s.o_phase = O_POP_READ_B;
            }
        }

        /// One owner step. Returns `false` if the owner has no step to
        /// take (already DONE).
        fn step_owner(s: &mut State, cap: usize) -> bool {
            match s.o_phase {
                O_PUSH_READ_B => {
                    s.o_b = s.bottom;
                    s.o_phase = O_PUSH_WRITE_SLOT;
                }
                O_PUSH_WRITE_SLOT => {
                    s.slots[s.o_b as usize % cap] = s.o_task;
                    s.o_phase = O_PUSH_WRITE_B;
                }
                O_PUSH_WRITE_B => {
                    s.bottom = s.o_b + 1;
                    s.pushes[s.o_task as usize] += 1;
                    if s.o_pushes_left > 0 {
                        // Next initial push: ids are issued in order.
                        s.o_pushes_left -= 1;
                        if s.o_pushes_left > 0 {
                            s.o_task += 1;
                            s.o_phase = O_PUSH_READ_B;
                        } else {
                            s.o_phase = O_POP_READ_B;
                        }
                    } else {
                        // That was the re-push; back to popping.
                        s.o_phase = O_POP_READ_B;
                    }
                }
                O_POP_READ_B => {
                    if s.bottom == 0 {
                        s.o_phase = O_DONE;
                    } else {
                        s.o_b = s.bottom - 1;
                        s.o_phase = O_POP_WRITE_B;
                    }
                }
                O_POP_WRITE_B => {
                    s.bottom = s.o_b;
                    s.o_phase = O_POP_READ_T;
                }
                O_POP_READ_T => {
                    s.o_t = s.top;
                    if s.o_t < s.o_b {
                        // Uncontended take; the slot read is local (no
                        // thief writes slots), so it folds into this step.
                        let task = s.slots[s.o_b as usize % cap];
                        after_owner_claim(s, task);
                    } else if s.o_t == s.o_b {
                        s.o_phase = O_POP_CAS;
                    } else {
                        s.o_phase = O_POP_RESTORE_EMPTY;
                    }
                }
                O_POP_CAS => {
                    if s.top == s.o_t {
                        s.top += 1;
                        s.o_phase = O_POP_RESTORE_WON;
                    } else {
                        s.o_phase = O_POP_RESTORE_LOST;
                    }
                }
                O_POP_RESTORE_WON => {
                    s.bottom = s.o_b + 1;
                    let task = s.slots[s.o_b as usize % cap];
                    after_owner_claim(s, task);
                }
                O_POP_RESTORE_LOST => {
                    // Lost the last element to a thief: deque is empty
                    // for the owner. Restore and finish.
                    s.bottom = s.o_b + 1;
                    s.o_phase = O_DONE;
                }
                O_POP_RESTORE_EMPTY => {
                    s.bottom = s.o_b + 1;
                    s.o_phase = O_DONE;
                }
                _ => return false,
            }
            true
        }

        /// One step of thief `i`. Returns `false` if it has none to take.
        fn step_thief(s: &mut State, i: usize, cap: usize) -> bool {
            match s.t_phase[i] {
                T_READ_TOP => {
                    s.t_t[i] = s.top;
                    s.t_phase[i] = T_READ_BOT;
                }
                T_READ_BOT => {
                    if s.t_t[i] >= s.bottom {
                        // Empty from this thief's view. Once the owner is
                        // done no new pushes can appear, so an empty
                        // observation is final; otherwise retry.
                        s.t_phase[i] = if s.o_phase == O_DONE {
                            T_DONE
                        } else {
                            T_READ_TOP
                        };
                    } else {
                        s.t_phase[i] = T_READ_SLOT;
                    }
                }
                T_READ_SLOT => {
                    s.t_task[i] = s.slots[s.t_t[i] as usize % cap];
                    s.t_phase[i] = T_CAS;
                }
                T_CAS => {
                    if s.top == s.t_t[i] {
                        s.top += 1;
                        let task = s.t_task[i];
                        claim(s, task, "thief");
                    }
                    s.t_phase[i] = T_READ_TOP;
                }
                _ => return false,
            }
            true
        }

        fn explore(count: usize, repush_first_pop: bool) {
            let start = State {
                top: 0,
                bottom: 0,
                slots: [0; CAP_MAX],
                o_phase: O_PUSH_READ_B,
                o_b: 0,
                o_t: 0,
                o_task: 0,
                o_pushes_left: count as u8,
                o_repush_owed: repush_first_pop,
                t_phase: [T_READ_TOP; THIEVES],
                t_t: [0; THIEVES],
                t_task: [0; THIEVES],
                pushes: [0; MAX_TASKS],
                claims: [0; MAX_TASKS],
            };
            let cap = count + 1;
            let mut seen: BTreeSet<State> = BTreeSet::new();
            let mut stack = vec![start];
            let mut terminals = 0usize;
            while let Some(state) = stack.pop() {
                if !seen.insert(state) {
                    continue;
                }
                if state.o_phase == O_DONE && state.t_phase.iter().all(|&pc| pc == T_DONE) {
                    terminals += 1;
                    let pushed: usize = state.pushes.iter().map(|&p| p as usize).sum();
                    // The re-push only happens if the owner itself won a
                    // pop; when a thief claims the task first, the
                    // "yield" re-push would land in the thief's own
                    // deque, outside this model instance.
                    let expected = count + usize::from(repush_first_pop && !state.o_repush_owed);
                    assert_eq!(pushed, expected, "owner retired without making every push");
                    assert_eq!(
                        state.claims, state.pushes,
                        "a pushed task was lost (claims != pushes at a terminal)"
                    );
                    continue;
                }
                let mut s = state;
                if step_owner(&mut s, cap) {
                    stack.push(s);
                }
                for i in 0..THIEVES {
                    let mut s = state;
                    if step_thief(&mut s, i, cap) {
                        stack.push(s);
                    }
                }
            }
            assert!(terminals > 0, "no terminal schedule reached");
        }

        #[test]
        fn all_owner_thief_schedules_claim_each_push_exactly_once() {
            for count in 1..=MAX_TASKS {
                explore(count, false);
            }
        }

        #[test]
        fn all_schedules_with_a_yield_repush_stay_unique_and_complete() {
            for count in 1..=MAX_TASKS {
                explore(count, true);
            }
        }
    }
}
