//! The scoped-thread worker pool behind parallel sweeps.
//!
//! This is the one module in the workspace that creates threads (enforced
//! by the `thread-spawn` xtask lint), and it only ever creates *scoped*
//! threads: workers borrow the sweep's points, options and builder
//! directly, and [`std::thread::scope`] guarantees they are joined before
//! the sweep returns — no detached thread can outlive the data it
//! borrows or leak past a sweep.
//!
//! Work distribution is a single shared atomic cursor over `0..count`:
//! each worker claims the next index with `fetch_add` until the range is
//! exhausted or the pool is cancelled. Dynamic claiming keeps all workers
//! busy even when point runtimes are wildly uneven (a watchdog-bounded
//! retry loop next to a quick baseline), which static striping would not.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Cooperative cancellation flag shared by the pool and its tasks.
///
/// A task that hits a pool-fatal condition (e.g. the sweep's checkpoint
/// file stops accepting writes) calls [`Cancel::cancel`]; workers finish
/// their in-flight task and stop claiming new ones.
#[derive(Debug, Default)]
pub(crate) struct Cancel {
    flag: AtomicBool,
}

impl Cancel {
    /// Requests that the pool stop claiming new tasks.
    pub(crate) fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Runs `task(0..count)` across at most `jobs` scoped worker threads and
/// returns once every claimed task has finished. Each index is claimed
/// exactly once; after [`Cancel::cancel`], unclaimed indices are skipped.
///
/// With `jobs <= 1` (or a single task) the tasks run inline on the
/// calling thread — byte-for-byte the serial code path, no threads.
pub(crate) fn for_each_indexed<F>(jobs: usize, count: usize, task: F)
where
    F: Fn(usize, &Cancel) + Sync,
{
    let cancel = Cancel::default();
    let next = AtomicUsize::new(0);
    let claim = || {
        if cancel.is_cancelled() {
            return None;
        }
        let n = next.fetch_add(1, Ordering::Relaxed);
        (n < count).then_some(n)
    };
    let workers = jobs.min(count);
    if workers <= 1 {
        while let Some(n) = claim() {
            task(n, &cancel);
        }
        return;
    }
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let claim = &claim;
            let task = &task;
            let cancel = &cancel;
            std::thread::Builder::new()
                .name(format!("cameo-sweep-{worker}"))
                .spawn_scoped(scope, move || {
                    while let Some(n) = claim() {
                        task(n, cancel);
                    }
                })
                .expect("spawning a scoped worker fails only on OS thread exhaustion");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    fn run_and_collect(jobs: usize, count: usize) -> Vec<usize> {
        let seen = Mutex::new(Vec::new());
        for_each_indexed(jobs, count, |n, _| {
            seen.lock().expect("no test task panics while recording").push(n);
        });
        seen.into_inner().expect("all workers joined before inspection")
    }

    #[test]
    fn every_index_runs_exactly_once() {
        for jobs in [1, 2, 4, 7] {
            let seen = run_and_collect(jobs, 23);
            assert_eq!(seen.len(), 23, "jobs={jobs}");
            let distinct: BTreeSet<usize> = seen.iter().copied().collect();
            assert_eq!(distinct, (0..23).collect(), "jobs={jobs}");
        }
    }

    #[test]
    fn serial_path_preserves_order() {
        // jobs=1 must be the exact serial loop: in-order, same thread.
        let seen = run_and_collect(1, 10);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_task_ranges() {
        assert!(run_and_collect(4, 0).is_empty());
        assert_eq!(run_and_collect(4, 1), vec![0]);
    }

    #[test]
    fn cancel_stops_new_claims() {
        let seen = Mutex::new(Vec::new());
        // Serial pool: cancelling in the first task must leave the rest
        // unclaimed, deterministically.
        for_each_indexed(1, 100, |n, cancel| {
            seen.lock().expect("no test task panics while recording").push(n);
            cancel.cancel();
        });
        assert_eq!(seen.into_inner().expect("pool returned"), vec![0]);
    }

    #[test]
    fn parallel_cancel_bounds_claims() {
        let ran = AtomicUsize::new(0);
        for_each_indexed(4, 1000, |_, cancel| {
            ran.fetch_add(1, Ordering::Relaxed);
            cancel.cancel();
        });
        // At most one in-flight task per worker after the first cancel.
        assert!(ran.load(Ordering::Relaxed) <= 4);
    }
}
