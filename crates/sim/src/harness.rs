//! Crash-isolated, resumable batch harness for design-point sweeps.
//!
//! A figure-scale experiment is a grid of (benchmark × organization)
//! points, each minutes of simulation. One misbehaving point must not take
//! the sweep down, and a killed sweep must not recompute finished points.
//! The harness therefore runs every point:
//!
//! * under [`std::panic::catch_unwind`], so a panic (including `deep-audit`
//!   violations) is recorded as a [`PointRecord::Failed`] and the sweep
//!   continues;
//! * with an optional cycle-budget watchdog
//!   ([`SweepOptions::watchdog_cycles`]), so a point that stops making
//!   progress is cut off deterministically;
//! * with bounded retries, an optional wall-clock backoff, and an optional
//!   capacity-scale reduction per retry
//!   ([`SweepOptions::retry_scale_factor`]);
//! * appending each outcome to a JSONL checkpoint
//!   ([`crate::checkpoint`]), so re-invoking the sweep resumes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use cameo_workloads::BenchSpec;

use crate::checkpoint::{self, PointRecord};
use crate::config::SystemConfig;
use crate::error::SimError;
use crate::experiments::{build_org, OrgKind};
use crate::org::MemoryOrganization;
use crate::runner::Runner;
use crate::stats::RunStats;

/// One design point of a sweep: a benchmark and an organization.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepPoint {
    /// Stable identity of the point across sweep invocations — the
    /// checkpoint key. Defaults to `"<bench>::<org label>"`.
    pub key: String,
    /// Benchmark name (resolved against the Table II suite at run time).
    pub bench: String,
    /// Organization to build for the point.
    pub kind: OrgKind,
}

impl SweepPoint {
    /// A point keyed by `"<bench>::<org label>"`.
    pub fn new(bench: &str, kind: OrgKind) -> Self {
        Self {
            key: format!("{bench}::{}", kind.label()),
            bench: bench.to_owned(),
            kind,
        }
    }

    /// The same point under a caller-chosen key — needed when one sweep
    /// runs the same (bench, org) pair under different externally-imposed
    /// conditions (e.g. fault rates), which the key must distinguish.
    pub fn with_key(mut self, key: impl Into<String>) -> Self {
        self.key = key.into();
        self
    }
}

/// Sweep-wide policy knobs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SweepOptions {
    /// Base configuration for every point.
    pub config: SystemConfig,
    /// Attempts per point (first try plus retries); at least 1.
    pub max_attempts: u32,
    /// Each retry multiplies `config.scale` by this factor, shrinking the
    /// simulated capacity and footprint so a point that died of its size
    /// can still contribute a data point. `1` retries unchanged.
    pub retry_scale_factor: u64,
    /// Wall-clock backoff: retry `n` sleeps `n * retry_backoff_ms`
    /// milliseconds first (0 disables), giving transient host-level causes
    /// — memory pressure, a busy checkpoint filesystem — room to clear.
    pub retry_backoff_ms: u64,
    /// Abort a point whose issue clock passes this many cycles (see
    /// [`Runner::try_run`]). `None` disables the watchdog.
    pub watchdog_cycles: Option<u64>,
    /// Suppress the default panic-hook backtrace spam while points run
    /// crash-isolated (the panic is still captured and recorded).
    pub quiet_panics: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            config: SystemConfig::default(),
            max_attempts: 3,
            retry_scale_factor: 2,
            retry_backoff_ms: 0,
            watchdog_cycles: None,
            quiet_panics: true,
        }
    }
}

/// Outcome of one point in a finished sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct PointOutcome {
    /// The point this outcome belongs to.
    pub point: SweepPoint,
    /// What happened.
    pub record: PointRecord,
    /// Whether the record came from the checkpoint instead of being run.
    pub resumed: bool,
}

/// Everything a finished sweep produced.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SweepReport {
    /// Per-point outcomes, in input order.
    pub outcomes: Vec<PointOutcome>,
}

impl SweepReport {
    /// Statistics of a completed point, by key.
    pub fn stats_of(&self, key: &str) -> Option<&RunStats> {
        self.outcomes.iter().find_map(|o| match &o.record {
            PointRecord::Done { stats, .. } if o.point.key == key => Some(stats.as_ref()),
            _ => None,
        })
    }

    /// Number of points that completed (freshly or resumed).
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.record, PointRecord::Done { .. }))
            .count()
    }

    /// Number of points that failed every attempt.
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.completed()
    }

    /// Number of points answered from the checkpoint without re-running.
    pub fn resumed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.resumed).count()
    }
}

/// Builds the organization for one point. Custom builders let a sweep vary
/// conditions the [`OrgKind`] enum does not encode (fault injection,
/// swap-policy variants, ...).
pub type OrgBuilder<'b> = dyn Fn(&SweepPoint, &SystemConfig) -> Box<dyn MemoryOrganization> + 'b;

/// Runs a sweep with the default organization builder
/// ([`build_org`]).
///
/// # Errors
///
/// Returns [`SimError::Checkpoint`] on checkpoint I/O failure. Per-point
/// failures do *not* abort the sweep; they are recorded in the report.
pub fn run_sweep(
    points: &[SweepPoint],
    opts: &SweepOptions,
    checkpoint_path: Option<&Path>,
) -> Result<SweepReport, SimError> {
    run_sweep_with(points, opts, checkpoint_path, &|point, config| {
        // The bench was resolved before the builder is called; an identity
        // fallback keeps the builder infallible.
        let bench = cameo_workloads::by_name(&point.bench)
            .expect("run_sweep resolved the benchmark before building the organization");
        build_org(&bench, point.kind, config)
    })
}

/// Runs a sweep with a caller-provided organization builder.
///
/// Points already recorded as done in the checkpoint are skipped; failed
/// or missing points run for up to [`SweepOptions::max_attempts`]
/// attempts, each isolated with `catch_unwind` and bounded by the
/// watchdog. Every fresh outcome is appended to the checkpoint before the
/// next point starts.
///
/// # Errors
///
/// Returns [`SimError::Checkpoint`] on checkpoint I/O failure — the only
/// sweep-fatal condition.
pub fn run_sweep_with(
    points: &[SweepPoint],
    opts: &SweepOptions,
    checkpoint_path: Option<&Path>,
    build: &OrgBuilder<'_>,
) -> Result<SweepReport, SimError> {
    let done_map = match checkpoint_path {
        Some(path) => checkpoint::load(path)?,
        None => Default::default(),
    };
    let _quiet = opts.quiet_panics.then(QuietPanics::install);
    let mut report = SweepReport::default();
    for point in points {
        if let Some(record @ PointRecord::Done { .. }) = done_map.get(&point.key) {
            report.outcomes.push(PointOutcome {
                point: point.clone(),
                record: record.clone(),
                resumed: true,
            });
            continue;
        }
        let record = run_point(point, opts, build);
        if let Some(path) = checkpoint_path {
            checkpoint::append(path, &point.key, &record)?;
        }
        report.outcomes.push(PointOutcome {
            point: point.clone(),
            record,
            resumed: false,
        });
    }
    Ok(report)
}

/// Runs one point to a terminal record: retries, scale reduction, backoff.
fn run_point(point: &SweepPoint, opts: &SweepOptions, build: &OrgBuilder<'_>) -> PointRecord {
    let bench = match cameo_workloads::require(&point.bench) {
        Ok(bench) => bench,
        Err(e) => {
            // Deterministic configuration error: retrying cannot help.
            return PointRecord::Failed {
                attempts: 1,
                error: SimError::from(e).to_string(),
            };
        }
    };
    let max_attempts = opts.max_attempts.max(1);
    let mut config = opts.config;
    let mut last_error = String::new();
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            if opts.retry_backoff_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(
                    u64::from(attempt - 1) * opts.retry_backoff_ms,
                ));
            }
            config.scale = config.scale.saturating_mul(opts.retry_scale_factor.max(1));
        }
        match run_attempt(point, &bench, &config, opts, build) {
            Ok(stats) => {
                return PointRecord::Done {
                    attempts: attempt,
                    stats: Box::new(stats),
                }
            }
            Err(e) => last_error = e.to_string(),
        }
    }
    PointRecord::Failed {
        attempts: max_attempts,
        error: last_error,
    }
}

/// One crash-isolated attempt at one point.
fn run_attempt(
    point: &SweepPoint,
    bench: &BenchSpec,
    config: &SystemConfig,
    opts: &SweepOptions,
    build: &OrgBuilder<'_>,
) -> Result<RunStats, SimError> {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let mut org = build(point, config);
        Runner::new(*bench, config)?.try_run(org.as_mut(), opts.watchdog_cycles)
    }));
    match attempt {
        Ok(result) => result,
        Err(payload) => Err(SimError::PointPanicked {
            key: point.key.clone(),
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Extracts the human-readable panic message, when there is one.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The process-global panic hook, as stored by `std::panic::take_hook`.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// RAII guard replacing the process panic hook with a silent one for the
/// duration of a sweep, so crash-isolated points do not spray backtraces.
struct QuietPanics {
    previous: Option<PanicHook>,
}

impl QuietPanics {
    fn install() -> Self {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        Self {
            previous: Some(previous),
        }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            std::panic::set_hook(previous);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cameo_types::{Access, ByteSize, Cycle, PageAddr};
    use crate::org::OrgResult;
    use crate::stats::BandwidthReport;

    fn quick_opts() -> SweepOptions {
        SweepOptions {
            config: SystemConfig {
                scale: 8192,
                cores: 2,
                instructions_per_core: 20_000,
                warmup_fraction: 0.2,
                ..Default::default()
            },
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// An organization that panics after a fixed number of accesses —
    /// stands in for any buggy design point.
    #[derive(Debug)]
    struct FuseOrg {
        remaining: u64,
    }

    impl MemoryOrganization for FuseOrg {
        fn name(&self) -> &'static str {
            "Fuse"
        }
        fn access(&mut self, now: Cycle, _access: &Access) -> OrgResult {
            assert!(self.remaining > 0, "fuse blew: injected test failure");
            self.remaining -= 1;
            OrgResult {
                completion: now + Cycle::new(10),
                serviced_by: cameo_types::ServiceLocation::OffChip,
                faulted: false,
            }
        }
        fn visible_capacity(&self) -> ByteSize {
            ByteSize::from_gib(1)
        }
        fn bandwidth(&self) -> BandwidthReport {
            BandwidthReport::default()
        }
        fn faults(&self) -> u64 {
            0
        }
        fn service_counts(&self) -> (u64, u64) {
            (0, 0)
        }
        fn prediction_cases(&self) -> Option<cameo::PredictionCaseCounts> {
            None
        }
        fn prefill(&mut self, _page: PageAddr) {}
        fn reset_stats(&mut self) {}
    }

    #[test]
    fn sweep_completes_all_points() {
        let points = [
            SweepPoint::new("astar", OrgKind::Baseline),
            SweepPoint::new("astar", OrgKind::cameo_default()),
        ];
        let report = run_sweep(&points, &quick_opts(), None).expect("no checkpoint I/O involved");
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.resumed(), 0);
        assert!(report.stats_of("astar::CAMEO").is_some());
        assert!(report.stats_of("astar::Baseline").is_some());
    }

    #[test]
    fn panicking_point_is_isolated_and_recorded() {
        let points = [
            SweepPoint::new("astar", OrgKind::Baseline).with_key("ok-before"),
            SweepPoint::new("astar", OrgKind::Baseline).with_key("explodes"),
            SweepPoint::new("astar", OrgKind::Baseline).with_key("ok-after"),
        ];
        let report = run_sweep_with(&points, &quick_opts(), None, &|point, config| {
            if point.key == "explodes" {
                // The quick config issues ~60 post-L3 accesses; a 20-access
                // fuse reliably blows mid-run rather than never.
                Box::new(FuseOrg { remaining: 20 })
            } else {
                build_org(
                    &cameo_workloads::require(&point.bench).expect("suite benchmark"),
                    point.kind,
                    config,
                )
            }
        })
        .expect("no checkpoint I/O involved");
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failed(), 1);
        match &report.outcomes[1].record {
            PointRecord::Failed { attempts, error } => {
                assert_eq!(*attempts, 1);
                assert!(error.contains("fuse blew"), "{error}");
            }
            other => panic!("expected failure record, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_bounds_runaway_points() {
        let points = [SweepPoint::new("astar", OrgKind::Baseline)];
        let opts = SweepOptions {
            watchdog_cycles: Some(50),
            ..quick_opts()
        };
        let report = run_sweep(&points, &opts, None).expect("no checkpoint I/O involved");
        assert_eq!(report.failed(), 1);
        match &report.outcomes[0].record {
            PointRecord::Failed { error, .. } => {
                assert!(error.contains("watchdog"), "{error}");
            }
            other => panic!("expected watchdog failure, got {other:?}"),
        }
    }

    #[test]
    fn unknown_benchmark_fails_without_retries() {
        let opts = SweepOptions {
            max_attempts: 5,
            ..quick_opts()
        };
        let points = [SweepPoint::new("notabench", OrgKind::Baseline)];
        let report = run_sweep(&points, &opts, None).expect("no checkpoint I/O involved");
        match &report.outcomes[0].record {
            PointRecord::Failed { attempts, error } => {
                assert_eq!(*attempts, 1, "deterministic errors must not retry");
                assert!(error.contains("notabench"), "{error}");
            }
            other => panic!("expected failure record, got {other:?}"),
        }
    }

    #[test]
    fn retry_reduces_scale_until_success() {
        // The fuse panics during the run; the builder swaps in a healthy
        // org once the harness has down-scaled the config, proving both the
        // retry loop and the scale reduction are applied.
        let opts = SweepOptions {
            max_attempts: 3,
            retry_scale_factor: 2,
            ..quick_opts()
        };
        let base_scale = opts.config.scale;
        let points = [SweepPoint::new("astar", OrgKind::Baseline)];
        let report = run_sweep_with(&points, &opts, None, &|_, config| {
            if config.scale > base_scale {
                Box::new(crate::org::BaselineOrg::new(config.off_chip(), config.seed))
            } else {
                Box::new(FuseOrg { remaining: 10 })
            }
        })
        .expect("no checkpoint I/O involved");
        match &report.outcomes[0].record {
            PointRecord::Done { attempts, .. } => assert_eq!(*attempts, 2),
            other => panic!("expected recovery on retry, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_resume_skips_done_points() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_sweep_resume_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let points = [
            SweepPoint::new("astar", OrgKind::Baseline),
            SweepPoint::new("astar", OrgKind::cameo_default()),
        ];
        let opts = quick_opts();
        let first = run_sweep(&points, &opts, Some(&path)).expect("checkpoint dir is writable");
        assert_eq!(first.completed(), 2);
        assert_eq!(first.resumed(), 0);

        // Second invocation: every point must come from the checkpoint.
        // The builder panics if called, proving nothing re-ran.
        let second = run_sweep_with(&points, &opts, Some(&path), &|point, _| {
            panic!("point {} should have been resumed", point.key)
        })
        .expect("checkpoint is readable");
        assert_eq!(second.completed(), 2);
        assert_eq!(second.resumed(), 2);
        assert_eq!(
            second.stats_of("astar::Baseline"),
            first.stats_of("astar::Baseline")
        );
        std::fs::remove_file(&path).expect("tmp cleanup");
    }

    #[test]
    fn failed_points_are_retried_on_resume() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cameo_sweep_refail_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let points = [SweepPoint::new("astar", OrgKind::Baseline)];
        let opts = quick_opts();
        let broken = run_sweep_with(&points, &opts, Some(&path), &|_, _| {
            Box::new(FuseOrg { remaining: 5 })
        })
        .expect("checkpoint dir is writable");
        assert_eq!(broken.failed(), 1);
        // Re-invoking with a working builder re-runs the failed point.
        let fixed = run_sweep(&points, &opts, Some(&path)).expect("checkpoint is readable");
        assert_eq!(fixed.completed(), 1);
        assert_eq!(fixed.resumed(), 0);
        std::fs::remove_file(&path).expect("tmp cleanup");
    }
}
